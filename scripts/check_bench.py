#!/usr/bin/env python3
"""Gate a fresh mining-bench run against the committed baseline.

Usage: check_bench.py BASELINE_JSON FRESH_JSON [--tolerance FRAC]

Both files are `irma-bench/mining/v1` documents written by
`cargo bench -p irma-bench --bench mining` (the committed baseline lives
at the repository root as BENCH_5.json).

Two kinds of check, with very different strictness:

* **Itemset counts are exact.** For every (scale, miner, threads) row
  present in both files, the fresh `itemsets` must equal the baseline's
  — the workload is seeded and miners are deterministic, so any drift is
  a correctness bug, not noise. This check ignores --tolerance.

* **Wall time is bounded.** `best_wall_s` may exceed the baseline by at
  most `--tolerance` (a fraction: 0.10 means +10%, the default for
  same-machine runs). CI machines differ from the baseline host, so CI
  passes a looser value; the default is meant for local, same-host
  comparisons before re-committing the baseline.

Rows present in only one file are reported but are not failures: scale
and thread sweeps are environment-tunable (IRMA_BENCH_SCALES, ...), and
smoke runs deliberately measure a subset.

Exit code 0 on pass, 1 on any failure, 2 on usage/parse errors.
"""

import json
import sys


def fail_usage(msg: str) -> None:
    print(f"error: {msg}", file=sys.stderr)
    print(__doc__, file=sys.stderr)
    sys.exit(2)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"reading {path}: {e}")
    if doc.get("schema") != "irma-bench/mining/v1":
        fail_usage(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def keyed(doc: dict) -> dict:
    rows = {}
    for row in doc.get("results", []):
        rows[(row["scale"], row["miner"], row["threads"])] = row
    return rows


def main(argv: list[str]) -> int:
    tolerance = 0.10
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--tolerance":
            if i + 1 >= len(argv):
                fail_usage("--tolerance needs a value")
            try:
                tolerance = float(argv[i + 1])
            except ValueError:
                fail_usage(f"bad --tolerance {argv[i + 1]!r}")
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        fail_usage("need exactly BASELINE_JSON and FRESH_JSON")

    baseline = keyed(load(paths[0]))
    fresh = keyed(load(paths[1]))
    if not fresh:
        fail_usage(f"{paths[1]} has no results")

    failures = []
    compared = 0
    for key in sorted(fresh):
        scale, miner, threads = key
        label = f"{miner} @ {scale} jobs, {threads} thread(s)"
        if key not in baseline:
            print(f"note: {label}: not in baseline, skipping")
            continue
        base, new = baseline[key], fresh[key]
        compared += 1
        if new["itemsets"] != base["itemsets"]:
            failures.append(
                f"{label}: itemset count changed "
                f"{base['itemsets']} -> {new['itemsets']} (correctness, not noise)"
            )
            continue
        limit = base["best_wall_s"] * (1.0 + tolerance)
        verdict = "ok" if new["best_wall_s"] <= limit else "REGRESSION"
        print(
            f"{verdict}: {label}: {new['best_wall_s']:.4f}s vs baseline "
            f"{base['best_wall_s']:.4f}s (limit {limit:.4f}s)"
        )
        if new["best_wall_s"] > limit:
            failures.append(
                f"{label}: {new['best_wall_s']:.4f}s exceeds baseline "
                f"{base['best_wall_s']:.4f}s by more than {tolerance:.0%}"
            )
    for key in sorted(set(baseline) - set(fresh)):
        scale, miner, threads = key
        print(f"note: {miner} @ {scale} jobs, {threads} thread(s): not re-measured")

    if compared == 0:
        failures.append("no overlapping rows between baseline and fresh run")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  FAIL: {f}", file=sys.stderr)
        return 1
    print(f"\nall {compared} overlapping row(s) within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
