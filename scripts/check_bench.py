#!/usr/bin/env python3
"""Gate a fresh bench run against the committed baseline.

Usage: check_bench.py BASELINE_JSON FRESH_JSON [--tolerance FRAC]

Three document schemas are understood, dispatched on the JSON `schema`
field (both files must carry the same one):

* `irma-bench/mining/v2` — written by
  `cargo bench -p irma-bench --bench mining`; committed baseline
  BENCH_6.json at the repository root.
* `irma-bench/serve/v1` — written by
  `cargo bench -p irma-bench --bench serve`; committed baseline
  BENCH_9.json at the repository root.
* `irma-bench/rules/v1` — written by
  `cargo bench -p irma-bench --bench rules`; committed baseline
  BENCH_10.json at the repository root.

Mining checks, in decreasing order of strictness:

* **Grid completeness.** Each document declares its own
  `scales` x `miners` x `threads` grid; every cell must carry either a
  measured row or an explicit `skipped` record with a reason. An
  undeclared missing cell is a FAILURE — silently dropping a miner from
  a scale is exactly the bug this caught once already.

* **Itemset counts are exact.** For every cell measured in both files,
  the fresh `itemsets` must equal the baseline's — the workload is
  seeded and miners are deterministic, so any drift is a correctness
  bug, not noise. This check ignores --tolerance and host differences.

* **Wall time is bounded, same-host only.** `best_wall_s` may exceed
  the baseline by at most `--tolerance` (a fraction: 0.10 means +10%),
  but ONLY when both documents report the same `host_cores` — comparing
  wall times across machines with different core counts is noise dressed
  as a gate, so mismatched hosts skip this check with a loud notice.

* **Speedup gate, >=4-core hosts only.** When the fresh host reports
  >= 4 cores and the fresh run measured widths 1 and 4, each miner must
  show a width response at the largest scale it was measured at:
  FP-Growth and Eclat >= 2.5x, Apriori >= 1.5x. On narrower hosts the
  gate is skipped with a loud notice (it cannot be demonstrated there).

Cells in the baseline's grid but outside the fresh run's declared grid
are merely noted: scale and thread sweeps are environment-tunable
(IRMA_BENCH_SCALES, ...), and smoke runs deliberately measure a subset.

Serve checks mirror the same philosophy:

* **Grid completeness.** Every `clients` x `modes` x `paths` cell must
  be measured or carry an explicit `skipped` record (1-core hosts
  declare-skip the multi-client cells rather than dropping them).

* **Every request succeeded.** A measured cell's `ok` must equal its
  `requests` — a lost or non-200 response under closed-loop load is a
  robustness bug, not noise, and is checked host-independently.

* **Throughput and p95 latency, same-host only.** Fresh `rps` may fall
  below baseline by at most `--tolerance`, and fresh `p95_ms` may exceed
  it by at most the same fraction — only when `host_cores` matches.

Rules checks:

* **Grid completeness.** Every `scales` x `impls` x `threads` cell must
  be measured or carry an explicit `skipped` record (the flat oracle
  declare-skips width > 1 and scales past IRMA_BENCH_RULES_FLAT_CAP).

* **Kept/pruned counts are exact.** The synthetic rule set is a
  deterministic function of scale and pruning is deterministic, so both
  counts must match the baseline exactly, host-independently.

* **Wall time is bounded, same-host only** (as for mining).

* **Flat-vs-trie speedup floor, within-document.** Any document — the
  baseline included — that measures both `flat` and `trie` at width 1
  for a scale >= 100000 must show trie at least 10x faster. Both cells
  come from one host, so this gate never depends on who runs it; the
  committed BENCH_10.json always carries the qualifying pair.

* **Width-4 trie speedup floor, >=4-core hosts only.** When the fresh
  host reports >= 4 cores and measured trie widths 1 and 4, the largest
  such scale must show >= 1.5x (independent prune groups parallelize).
  On narrower hosts the gate is skipped with a loud notice.

Exit code 0 on pass, 1 on any failure, 2 on usage/parse errors.
"""

import json
import sys

MINING_SCHEMA = "irma-bench/mining/v2"
SERVE_SCHEMA = "irma-bench/serve/v1"
RULES_SCHEMA = "irma-bench/rules/v1"

REQUIRED_FIELDS = {
    MINING_SCHEMA: ("host_cores", "scales", "miners", "threads"),
    SERVE_SCHEMA: ("host_cores", "clients", "modes", "paths", "requests_per_client"),
    RULES_SCHEMA: ("host_cores", "scales", "impls", "threads"),
}

# miner -> required width-4 speedup (vs the same run's width-1 best).
SPEEDUP_FLOORS = {"fpgrowth": 2.5, "eclat": 2.5, "apriori": 1.5}
SPEEDUP_MIN_CORES = 4
SPEEDUP_WIDTH = 4

# Trie prune must beat the flat oracle by this factor at qualifying
# scales (within one document, so host-independent).
RULES_FLAT_FLOOR = 10.0
RULES_FLAT_MIN_SCALE = 100_000
# Width-4 trie prune speedup floor (vs width 1), >=4-core hosts only.
RULES_WIDTH_FLOOR = 1.5


def fail_usage(msg: str) -> None:
    print(f"error: {msg}", file=sys.stderr)
    print(__doc__, file=sys.stderr)
    sys.exit(2)


# schema -> (per-row key fields, document-level grid axis fields).
KEYS = {
    MINING_SCHEMA: (("scale", "miner", "threads"), ("scales", "miners", "threads")),
    SERVE_SCHEMA: (("clients", "mode", "path"), ("clients", "modes", "paths")),
    RULES_SCHEMA: (("scale", "impl", "threads"), ("scales", "impls", "threads")),
}


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"reading {path}: {e}")
    schema = doc.get("schema")
    if schema not in REQUIRED_FIELDS:
        fail_usage(
            f"{path}: unexpected schema {schema!r} "
            f"(want one of {sorted(REQUIRED_FIELDS)})"
        )
    for field in REQUIRED_FIELDS[schema]:
        if field not in doc:
            fail_usage(f"{path}: missing required field {field!r}")
    return doc


def split_rows(doc: dict) -> tuple[dict, dict]:
    """Returns (measured, skipped), both keyed by the schema's key fields."""
    key_fields, _ = KEYS[doc["schema"]]
    measured, skipped = {}, {}
    for row in doc.get("results", []):
        key = tuple(row[f] for f in key_fields)
        if "skipped" in row:
            skipped[key] = row["skipped"]
        else:
            measured[key] = row
    return measured, skipped


def grid(doc: dict) -> set:
    _, axes = KEYS[doc["schema"]]
    cells = {()}
    for axis in axes:
        cells = {cell + (value,) for cell in cells for value in doc[axis]}
    return cells


def label(key: tuple, schema: str) -> str:
    if schema == MINING_SCHEMA:
        scale, miner, threads = key
        return f"{miner} @ {scale} jobs, {threads} thread(s)"
    if schema == RULES_SCHEMA:
        scale, impl, threads = key
        return f"{impl} prune @ {scale} rules, {threads} thread(s)"
    clients, mode, path = key
    return f"{mode}/{path} @ {clients} client(s)"


def check_grid(name: str, doc: dict, measured: dict, skipped: dict, failures: list) -> None:
    schema = doc["schema"]
    for key in sorted(grid(doc)):
        if key in measured and key in skipped:
            failures.append(f"{name}: {label(key, schema)}: both measured and skipped")
        elif key not in measured and key not in skipped:
            failures.append(
                f"{name}: {label(key, schema)}: undeclared missing cell "
                "(no measurement, no skipped record)"
            )
    for key in sorted(set(measured) | set(skipped)):
        if key not in grid(doc):
            failures.append(f"{name}: {label(key, schema)}: row outside the declared grid")


def check_speedup(doc: dict, measured: dict, failures: list) -> None:
    cores = doc["host_cores"]
    if cores < SPEEDUP_MIN_CORES:
        print(
            f"NOTICE: speedup gate SKIPPED — fresh host reports {cores} core(s), "
            f"needs >= {SPEEDUP_MIN_CORES}. Width response cannot be demonstrated here; "
            "rerun on a wider host to arm this gate."
        )
        return
    if SPEEDUP_WIDTH not in doc["threads"] or 1 not in doc["threads"]:
        print(
            f"NOTICE: speedup gate SKIPPED — fresh run lacks widths 1 and "
            f"{SPEEDUP_WIDTH} (threads = {doc['threads']})."
        )
        return
    for miner, floor in SPEEDUP_FLOORS.items():
        if miner not in doc["miners"]:
            continue
        # Largest scale where this miner has both width-1 and width-4 rows.
        scales = [
            s
            for s in doc["scales"]
            if (s, miner, 1) in measured and (s, miner, SPEEDUP_WIDTH) in measured
        ]
        if not scales:
            print(f"NOTICE: speedup gate: {miner} has no measured width-1/width-{SPEEDUP_WIDTH} pair")
            continue
        scale = max(scales)
        base = measured[(scale, miner, 1)]["best_wall_s"]
        wide = measured[(scale, miner, SPEEDUP_WIDTH)]["best_wall_s"]
        speedup = base / wide if wide > 0 else float("inf")
        verdict = "ok" if speedup >= floor else "FAIL"
        print(
            f"{verdict}: speedup gate: {miner} @ {scale} jobs: "
            f"{speedup:.2f}x at width {SPEEDUP_WIDTH} (floor {floor}x)"
        )
        if speedup < floor:
            failures.append(
                f"{miner} @ {scale} jobs: width-{SPEEDUP_WIDTH} speedup "
                f"{speedup:.2f}x below required {floor}x on a {cores}-core host"
            )


def compare_mining(
    key: tuple, base: dict, new: dict, same_host: bool, tolerance: float, failures: list
) -> None:
    name = label(key, MINING_SCHEMA)
    if new["itemsets"] != base["itemsets"]:
        failures.append(
            f"{name}: itemset count changed "
            f"{base['itemsets']} -> {new['itemsets']} (correctness, not noise)"
        )
        return
    if not same_host:
        print(f"ok: {name}: itemsets exact ({new['itemsets']}); wall skipped")
        return
    limit = base["best_wall_s"] * (1.0 + tolerance)
    verdict = "ok" if new["best_wall_s"] <= limit else "REGRESSION"
    print(
        f"{verdict}: {name}: {new['best_wall_s']:.4f}s vs baseline "
        f"{base['best_wall_s']:.4f}s (limit {limit:.4f}s)"
    )
    if new["best_wall_s"] > limit:
        failures.append(
            f"{name}: {new['best_wall_s']:.4f}s exceeds baseline "
            f"{base['best_wall_s']:.4f}s by more than {tolerance:.0%}"
        )


def compare_rules(
    key: tuple, base: dict, new: dict, same_host: bool, tolerance: float, failures: list
) -> None:
    name = label(key, RULES_SCHEMA)
    if (new["kept"], new["pruned"]) != (base["kept"], base["pruned"]):
        failures.append(
            f"{name}: kept/pruned changed "
            f"{base['kept']}/{base['pruned']} -> {new['kept']}/{new['pruned']} "
            "(correctness, not noise)"
        )
        return
    if not same_host:
        print(f"ok: {name}: kept/pruned exact ({new['kept']}/{new['pruned']}); wall skipped")
        return
    limit = base["best_wall_s"] * (1.0 + tolerance)
    verdict = "ok" if new["best_wall_s"] <= limit else "REGRESSION"
    print(
        f"{verdict}: {name}: {new['best_wall_s']:.4f}s vs baseline "
        f"{base['best_wall_s']:.4f}s (limit {limit:.4f}s)"
    )
    if new["best_wall_s"] > limit:
        failures.append(
            f"{name}: {new['best_wall_s']:.4f}s exceeds baseline "
            f"{base['best_wall_s']:.4f}s by more than {tolerance:.0%}"
        )


def check_rules_flat_speedup(name: str, doc: dict, measured: dict, failures: list) -> None:
    """Within-document flat-vs-trie floor: both cells share one host, so
    the gate is machine-independent and applies to the baseline too."""
    gated = False
    for scale in sorted(doc["scales"]):
        if scale < RULES_FLAT_MIN_SCALE:
            continue
        flat = measured.get((scale, "flat", 1))
        trie = measured.get((scale, "trie", 1))
        if flat is None or trie is None:
            continue
        gated = True
        speedup = (
            flat["best_wall_s"] / trie["best_wall_s"]
            if trie["best_wall_s"] > 0
            else float("inf")
        )
        verdict = "ok" if speedup >= RULES_FLAT_FLOOR else "FAIL"
        print(
            f"{verdict}: {name}: flat-vs-trie @ {scale} rules: "
            f"{speedup:.2f}x (floor {RULES_FLAT_FLOOR}x)"
        )
        if speedup < RULES_FLAT_FLOOR:
            failures.append(
                f"{name}: trie prune only {speedup:.2f}x faster than flat at "
                f"{scale} rules (floor {RULES_FLAT_FLOOR}x)"
            )
    if not gated:
        print(
            f"NOTICE: {name}: flat-vs-trie gate not armed — no scale >= "
            f"{RULES_FLAT_MIN_SCALE} with both width-1 impls measured."
        )


def check_rules_width_speedup(doc: dict, measured: dict, failures: list) -> None:
    cores = doc["host_cores"]
    if cores < SPEEDUP_MIN_CORES:
        print(
            f"NOTICE: width-{SPEEDUP_WIDTH} trie gate SKIPPED — fresh host reports "
            f"{cores} core(s), needs >= {SPEEDUP_MIN_CORES}. Width response cannot "
            "be demonstrated here; rerun on a wider host to arm this gate."
        )
        return
    if SPEEDUP_WIDTH not in doc["threads"] or 1 not in doc["threads"]:
        print(
            f"NOTICE: width-{SPEEDUP_WIDTH} trie gate SKIPPED — fresh run lacks "
            f"widths 1 and {SPEEDUP_WIDTH} (threads = {doc['threads']})."
        )
        return
    scales = [
        s
        for s in doc["scales"]
        if (s, "trie", 1) in measured and (s, "trie", SPEEDUP_WIDTH) in measured
    ]
    if not scales:
        print(
            f"NOTICE: width-{SPEEDUP_WIDTH} trie gate: no measured "
            f"width-1/width-{SPEEDUP_WIDTH} trie pair"
        )
        return
    scale = max(scales)
    base = measured[(scale, "trie", 1)]["best_wall_s"]
    wide = measured[(scale, "trie", SPEEDUP_WIDTH)]["best_wall_s"]
    speedup = base / wide if wide > 0 else float("inf")
    verdict = "ok" if speedup >= RULES_WIDTH_FLOOR else "FAIL"
    print(
        f"{verdict}: width gate: trie @ {scale} rules: "
        f"{speedup:.2f}x at width {SPEEDUP_WIDTH} (floor {RULES_WIDTH_FLOOR}x)"
    )
    if speedup < RULES_WIDTH_FLOOR:
        failures.append(
            f"trie @ {scale} rules: width-{SPEEDUP_WIDTH} speedup {speedup:.2f}x "
            f"below required {RULES_WIDTH_FLOOR}x on a {cores}-core host"
        )


def check_serve_success(key: tuple, row: dict, failures: list) -> None:
    """Host-independent: closed-loop load must not lose a single request."""
    name = label(key, SERVE_SCHEMA)
    if row["ok"] != row["requests"]:
        failures.append(
            f"{name}: only {row['ok']}/{row['requests']} requests returned 200 "
            "(robustness, not noise)"
        )


def compare_serve(
    key: tuple, base: dict, new: dict, same_host: bool, tolerance: float, failures: list
) -> None:
    name = label(key, SERVE_SCHEMA)
    if not same_host:
        print(f"ok: {name}: all {new['ok']} requests succeeded; timing skipped")
        return
    rps_floor = base["rps"] / (1.0 + tolerance)
    p95_limit = base["p95_ms"] * (1.0 + tolerance)
    rps_ok = new["rps"] >= rps_floor
    p95_ok = new["p95_ms"] <= p95_limit
    verdict = "ok" if rps_ok and p95_ok else "REGRESSION"
    print(
        f"{verdict}: {name}: {new['rps']:.1f} req/s (floor {rps_floor:.1f}), "
        f"p95 {new['p95_ms']:.3f} ms (limit {p95_limit:.3f})"
    )
    if not rps_ok:
        failures.append(
            f"{name}: throughput {new['rps']:.1f} req/s below baseline "
            f"{base['rps']:.1f} by more than {tolerance:.0%}"
        )
    if not p95_ok:
        failures.append(
            f"{name}: p95 {new['p95_ms']:.3f} ms exceeds baseline "
            f"{base['p95_ms']:.3f} ms by more than {tolerance:.0%}"
        )


def main(argv: list[str]) -> int:
    tolerance = 0.10
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--tolerance":
            if i + 1 >= len(argv):
                fail_usage("--tolerance needs a value")
            try:
                tolerance = float(argv[i + 1])
            except ValueError:
                fail_usage(f"bad --tolerance {argv[i + 1]!r}")
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        fail_usage("need exactly BASELINE_JSON and FRESH_JSON")

    base_doc = load(paths[0])
    fresh_doc = load(paths[1])
    schema = base_doc["schema"]
    if fresh_doc["schema"] != schema:
        fail_usage(
            f"schema mismatch: {paths[0]} is {schema!r}, "
            f"{paths[1]} is {fresh_doc['schema']!r}"
        )
    base_measured, base_skipped = split_rows(base_doc)
    fresh_measured, fresh_skipped = split_rows(fresh_doc)
    if not fresh_measured:
        fail_usage(f"{paths[1]} has no measured results")

    failures: list = []
    check_grid("baseline", base_doc, base_measured, base_skipped, failures)
    check_grid("fresh", fresh_doc, fresh_measured, fresh_skipped, failures)

    same_host = base_doc["host_cores"] == fresh_doc["host_cores"]
    if not same_host:
        what = "Itemset counts" if schema == MINING_SCHEMA else "Success counts"
        print(
            f"NOTICE: timing comparison SKIPPED — baseline host has "
            f"{base_doc['host_cores']} core(s), fresh host {fresh_doc['host_cores']}; "
            f"cross-host timings are not comparable. {what} are still exact."
        )

    compared = 0
    for key in sorted(fresh_measured):
        if key not in base_measured:
            if key in base_skipped:
                print(f"note: {label(key, schema)}: skipped in baseline ({base_skipped[key]})")
            else:
                print(f"note: {label(key, schema)}: not in baseline")
            continue
        base, new = base_measured[key], fresh_measured[key]
        compared += 1
        if schema == MINING_SCHEMA:
            compare_mining(key, base, new, same_host, tolerance, failures)
        elif schema == RULES_SCHEMA:
            compare_rules(key, base, new, same_host, tolerance, failures)
        else:
            compare_serve(key, base, new, same_host, tolerance, failures)
    for key in sorted(set(base_measured) - set(fresh_measured) - set(fresh_skipped)):
        print(f"note: {label(key, schema)}: not re-measured")
    for key in sorted(fresh_skipped):
        if key in base_measured:
            print(
                f"note: {label(key, schema)}: measured in baseline, "
                f"skipped fresh ({fresh_skipped[key]})"
            )

    if schema == MINING_SCHEMA:
        check_speedup(fresh_doc, fresh_measured, failures)
    elif schema == RULES_SCHEMA:
        check_rules_flat_speedup("baseline", base_doc, base_measured, failures)
        check_rules_flat_speedup("fresh", fresh_doc, fresh_measured, failures)
        check_rules_width_speedup(fresh_doc, fresh_measured, failures)
    else:
        for key in sorted(fresh_measured):
            check_serve_success(key, fresh_measured[key], failures)

    if compared == 0:
        failures.append("no overlapping measured rows between baseline and fresh run")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  FAIL: {f}", file=sys.stderr)
        return 1
    print(f"\nall checks passed ({compared} overlapping measured row(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
