#!/usr/bin/env python3
"""Validate the CLI's OpenMetrics exposition and JSONL trace log.

Usage: check_openmetrics.py METRICS_FILE [TRACE_JSONL]

Checks on the OpenMetrics file:

* every sample line belongs to a metric family announced by a prior
  `# TYPE` line (TYPE-before-samples);
* no metric family is announced twice (no duplicate names);
* summary suffixes (`_sum`, `_count`) and counter totals (`_total`)
  resolve to their family name (worker-labelled scheduler families like
  `irma_sched_steal_successes_total{worker="0"}` included);
* every sample value parses as a number;
* every histogram family is coherent: `_bucket` samples carry an `le`
  label, `le` bounds are strictly increasing with `+Inf` last, cumulative
  counts are non-decreasing, the `+Inf` bucket equals `_count`, and
  `_sum` is present;
* the exposition ends with exactly one `# EOF` line and nothing after it.

Checks on the trace log (when given): every line parses as a JSON object
carrying the envelope keys (`event`, `run`, `seq`, `offset_us`), `seq` is
dense from 0 within each run (trace logs append, so one file may hold
several concatenated runs), every `span_close` closes a previously opened
span, and each run closes all its spans before the next run starts.
"""

import json
import math
import re
import sys

LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def family_of(name: str) -> str:
    """Strips the OpenMetrics sample suffixes down to the family name."""
    for suffix in ("_total", "_sum", "_count", "_bucket", "_created"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_sample(line: str) -> tuple[str, dict[str, str], str]:
    """Splits a sample line into (name, labels, raw value)."""
    if "{" in line:
        name, rest = line.split("{", 1)
        labels_raw, _, value_raw = rest.partition("}")
        return name, dict(LABEL_RE.findall(labels_raw)), value_raw.strip()
    name, _, value_raw = line.partition(" ")
    return name, {}, value_raw.strip()


def check_histogram(path: str, family: str, hist: dict) -> None:
    """One histogram family's le-bucket coherence."""
    buckets = hist["buckets"]
    if not buckets:
        fail(f"{path}: histogram {family} has no _bucket samples")
    for (n_a, le_a, _), (n_b, le_b, _) in zip(buckets, buckets[1:]):
        if not le_a < le_b:
            fail(
                f"{path}:{n_b}: histogram {family} le bounds not strictly "
                f"increasing ({le_a} then {le_b})"
            )
    last_n, last_le, last_count = buckets[-1]
    if last_le != math.inf:
        fail(f"{path}:{last_n}: histogram {family} must end with an le=\"+Inf\" bucket")
    for (n_a, _, c_a), (n_b, _, c_b) in zip(buckets, buckets[1:]):
        if c_b < c_a:
            fail(
                f"{path}:{n_b}: histogram {family} cumulative counts "
                f"decrease ({c_a} then {c_b})"
            )
    if hist["count"] is None:
        fail(f"{path}: histogram {family} has no _count sample")
    if last_count != hist["count"]:
        fail(
            f"{path}: histogram {family} +Inf bucket {last_count} != "
            f"_count {hist['count']}"
        )
    if hist["sum"] is None:
        fail(f"{path}: histogram {family} has no _sum sample")


def check_openmetrics(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition")
    if lines[-1] != "# EOF":
        fail(f"{path}: last line must be '# EOF', got {lines[-1]!r}")
    if lines.count("# EOF") != 1:
        fail(f"{path}: '# EOF' must appear exactly once")

    declared: dict[str, str] = {}
    histograms: dict[str, dict] = {}
    samples = 0
    for n, line in enumerate(lines[:-1], start=1):
        if not line:
            fail(f"{path}:{n}: blank line inside exposition")
        if line.startswith("#"):
            parts = line.split()
            if len(parts) < 4 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                fail(f"{path}:{n}: malformed comment line {line!r}")
            if parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if name in declared:
                    fail(f"{path}:{n}: duplicate TYPE for {name}")
                declared[name] = kind
            continue
        # Sample line: <name>[{labels}] <value>
        name, labels, value_raw = parse_sample(line)
        family = family_of(name)
        if family not in declared:
            fail(
                f"{path}:{n}: sample {name!r} has no preceding "
                f"'# TYPE {family} ...' line"
            )
        try:
            value = float(value_raw)
        except ValueError:
            fail(f"{path}:{n}: sample value {value_raw!r} is not a number")
        if declared[family] == "histogram":
            hist = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    fail(f"{path}:{n}: histogram sample {name!r} has no le label")
                le_raw = labels["le"]
                le = math.inf if le_raw == "+Inf" else float(le_raw)
                hist["buckets"].append((n, le, value))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
            else:
                fail(f"{path}:{n}: unexpected histogram sample {name!r}")
        samples += 1
    if samples == 0:
        fail(f"{path}: no sample lines")
    for family, hist in histograms.items():
        check_histogram(path, family, hist)
    tail = f", {len(histograms)} histograms checked" if histograms else ""
    print(
        f"ok: {path}: {len(declared)} families, {samples} samples, "
        f"EOF terminated{tail}"
    )
    return samples


def check_trace(path: str) -> int:
    envelope = ("event", "run", "seq", "offset_us")
    open_spans: set[int] = set()
    events = 0
    runs = 0
    current_run = None
    expected_seq = 0
    with open(path, encoding="utf-8") as f:
        for n, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{n}: not valid JSON ({e}): {line!r}")
            if not isinstance(record, dict):
                fail(f"{path}:{n}: line is not a JSON object")
            for key in envelope:
                if key not in record:
                    fail(f"{path}:{n}: missing envelope key {key!r}")
            # Trace logs are opened in append mode, so one file may hold
            # several concatenated runs: seq is dense *per run* and every
            # run must close its spans before the next one starts.
            if record["run"] != current_run:
                if open_spans:
                    fail(
                        f"{path}:{n}: run {current_run} left spans open: "
                        f"{sorted(open_spans)}"
                    )
                if record["seq"] != 0:
                    fail(
                        f"{path}:{n}: run {record['run']} starts at seq "
                        f"{record['seq']}, not 0"
                    )
                current_run = record["run"]
                expected_seq = 0
                runs += 1
            if record["seq"] != expected_seq:
                fail(
                    f"{path}:{n}: seq {record['seq']} != {expected_seq} "
                    f"(not dense)"
                )
            expected_seq += 1
            kind = record["event"]
            if kind == "span_open":
                open_spans.add(record["span"])
                parent = record["parent"]
                if parent is not None and parent not in open_spans:
                    fail(f"{path}:{n}: parent span {parent} is not open")
            elif kind == "span_close":
                if record["span"] not in open_spans:
                    fail(f"{path}:{n}: closing span {record['span']} never opened")
                open_spans.remove(record["span"])
            elif kind != "counter":
                fail(f"{path}:{n}: unknown event kind {kind!r}")
            events += 1
    if events == 0:
        fail(f"{path}: empty trace")
    if open_spans:
        fail(f"{path}: spans never closed: {sorted(open_spans)}")
    tail = f" across {runs} appended runs" if runs > 1 else ""
    print(f"ok: {path}: {events} events, all spans closed{tail}")
    return events


def main() -> None:
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_openmetrics(sys.argv[1])
    if len(sys.argv) == 3:
        check_trace(sys.argv[2])


if __name__ == "__main__":
    main()
