#!/usr/bin/env python3
"""End-to-end smoke driver for `irma serve` (CI's serve-smoke job).

Usage: serve_smoke.py HOST:PORT

Drives a freshly booted server through the full API surface and asserts
the documented contract at every step:

1. `POST /v1/analyze` with a CSV body mines rules (200, `cached:false`,
   a fingerprint, at least one rule);
2. replaying the identical request answers from the LRU (`cached:true`);
3. a `fp:<fingerprint>` body replays the dataset without re-uploading;
4. `GET /v1/explain/{rule}?fp=` walks the cached provenance (200 with an
   `explanation`);
5. a malformed request (unknown algorithm) gets a typed 400, not a 5xx;
6. an over-budget request (`x-irma-timeout-ms: 0`) gets the documented
   504 deadline answer;
7. a concurrent burst of analyzes (cold + cache-hit mix) all succeed —
   the bounded queue and worker pool, not threads-per-request, absorb it;
8. `/healthz` is 200 and an unknown route is 404.

The caller owns the server's lifecycle (boot, SIGTERM, exit-code check);
this script only talks HTTP. Exit 0 on pass, 1 on any violation.
"""

import json
import sys
import threading
import urllib.error
import urllib.parse
import urllib.request

CSV = "gpu_util,state\n0,Failed\n0,Failed\n0,Failed\n95,Succeeded\n90,Succeeded\n92,Succeeded\n0,Failed\n91,Succeeded\n"


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request(base: str, method: str, path: str, body: bytes = b"", headers: dict | None = None):
    """Returns (status, body_text); HTTP errors are data, not exceptions."""
    req = urllib.request.Request(
        f"http://{base}{path}", data=body if method == "POST" else None, method=method
    )
    for k, v in (headers or {}).items():
        req.add_header(k, v)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()


def analyze(base: str, body: str, headers: dict | None = None, query: str = "?min_support=0.2"):
    return request(base, "POST", f"/v1/analyze{query}", body.encode(), headers)


def main() -> int:
    if len(sys.argv) != 2:
        fail("usage: serve_smoke.py HOST:PORT")
    base = sys.argv[1]

    # 1. Cold analyze mines rules.
    status, text = analyze(base, CSV)
    if status != 200:
        fail(f"cold analyze: want 200, got {status}: {text}")
    doc = json.loads(text)
    if doc["cached"] is not False or doc["degraded"] is not False:
        fail(f"cold analyze flags wrong: {text}")
    if not doc["rules"]:
        fail(f"cold analyze found no rules: {text}")
    fp = doc["fingerprint"]
    rule = doc["rules"][0]["spec"]
    print(f"ok: cold analyze: {doc['rules_total']} rule(s), fingerprint {fp}")

    # 2. Identical replay hits the cache.
    status, text = analyze(base, CSV)
    if status != 200 or not json.loads(text)["cached"]:
        fail(f"replay should hit the cache: {status}: {text}")
    print("ok: replay served from cache")

    # 3. fp:<fingerprint> body replays without re-uploading.
    status, text = analyze(base, f"fp:{fp}")
    if status != 200 or not json.loads(text)["cached"]:
        fail(f"fp replay: want cached 200, got {status}: {text}")
    print("ok: fingerprint replay")

    # 4. Explain over cached provenance.
    quoted = urllib.parse.quote(rule)
    status, text = request(base, "GET", f"/v1/explain/{quoted}?fp={fp}")
    if status != 200:
        fail(f"explain `{rule}`: want 200, got {status}: {text}")
    if not json.loads(text)["explanation"]:
        fail(f"explain returned an empty explanation: {text}")
    print(f"ok: explain `{rule}`")

    # 5. Malformed request: typed 400.
    status, text = analyze(base, CSV, query="?algorithm=bogus")
    if status != 400:
        fail(f"bad algorithm: want 400, got {status}: {text}")
    print("ok: malformed request is a typed 400")

    # 6. Over-budget request: the documented 504 deadline answer. The
    # config is unique to this step — the cache key ignores the budget,
    # so reusing step 1's config would serve a cached 200 before the
    # deadline could ever trip.
    status, text = analyze(
        base,
        CSV,
        headers={"x-irma-timeout-ms": "0", "x-irma-tenant": "over-budget"},
        query="?min_support=0.23",
    )
    if status != 504:
        fail(f"zero deadline: want 504, got {status}: {text}")
    print("ok: over-budget request is a 504")

    # 7. Concurrent burst: cold (unique bodies) + cache-hit mix, all 200.
    results: list = [None] * 8
    def worker(i: int) -> None:
        body = CSV + f"{50 + i},Succeeded\n" if i % 2 else CSV
        results[i] = analyze(base, body, headers={"x-irma-tenant": f"burst-{i}"})
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(results))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    bad = [(i, r) for i, r in enumerate(results) if r is None or r[0] != 200]
    if bad:
        fail(f"concurrent burst: non-200 responses: {bad}")
    print(f"ok: concurrent burst of {len(results)} all 200")

    # 8. Health and routing.
    status, text = request(base, "GET", "/healthz")
    if status != 200 or json.loads(text)["status"] != "ok":
        fail(f"healthz: {status}: {text}")
    status, _ = request(base, "GET", "/nope")
    if status != 404:
        fail(f"unknown route: want 404, got {status}")
    print("ok: healthz 200, unknown route 404")

    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
