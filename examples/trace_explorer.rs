//! Trace explorer: generate a trace to CSV files, re-load them, and mine
//! an ad-hoc keyword — the workflow a system operator would run on their
//! own logs.
//!
//! ```text
//! cargo run --release --example trace_explorer -- <pai|supercloud|philly> \
//!     [keyword] [n_jobs] [out_dir]
//! ```
//!
//! Example:
//! ```text
//! cargo run --release --example trace_explorer -- supercloud "Job Killed" 20000 /tmp/sc
//! ```

use std::path::PathBuf;

use irma::core::{analyze, pai_spec, philly_spec, supercloud_spec, AnalysisConfig};
use irma::data::{inner_join, read_csv_path, write_csv_path};
use irma::synth::{pai, philly, supercloud, TraceConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let trace = args.next().unwrap_or_else(|| "supercloud".to_string());
    let keyword = args.next().unwrap_or_else(|| "SM Util = 0%".to_string());
    let n_jobs: usize = args
        .next()
        .map(|a| a.parse().expect("numeric job count"))
        .unwrap_or(20_000);
    let out_dir: PathBuf = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    let config = TraceConfig::with_jobs(n_jobs);
    let (bundle, spec) = match trace.as_str() {
        "pai" => (pai(&config), pai_spec()),
        "supercloud" => (supercloud(&config), supercloud_spec()),
        "philly" => (philly(&config), philly_spec()),
        other => {
            eprintln!("unknown trace `{other}` (expected pai|supercloud|philly)");
            std::process::exit(2);
        }
    };

    // Persist the two collection-level files, exactly how production
    // monitoring hands them to an operator...
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let sched_path = out_dir.join(format!("{trace}_scheduler.csv"));
    let mon_path = out_dir.join(format!("{trace}_monitoring.csv"));
    write_csv_path(&bundle.scheduler, &sched_path).expect("write scheduler csv");
    write_csv_path(&bundle.monitoring, &mon_path).expect("write monitoring csv");
    eprintln!("wrote {} and {}", sched_path.display(), mon_path.display());

    // ...then run the paper's workflow from the files on disk.
    let scheduler = read_csv_path(&sched_path).expect("read scheduler csv");
    let monitoring = read_csv_path(&mon_path).expect("read monitoring csv");
    let merged = inner_join(&scheduler, &monitoring, "job_id").expect("join on job_id");
    let analysis = analyze(&merged, &spec, &AnalysisConfig::default());

    eprintln!(
        "{} jobs, {} items, {} frequent itemsets, {} rules",
        analysis.n_jobs(),
        analysis.encoded.catalog.len(),
        analysis.frequent.len(),
        analysis.rules.len()
    );
    println!("{}", analysis.render_keyword(&keyword, 8));

    // Rank other keywords by the strongest rule involving them, so the
    // next question starts from evidence.
    println!("strongest keywords to explore next (max lift / conf of any rule):");
    for (label, lift, conf) in analysis.suggest_keywords(10) {
        println!("  {label:<28} lift {lift:>5.2}  conf {conf:>4.2}");
    }
    let mut labels: Vec<&String> = analysis.encoded.catalog.labels().iter().collect();
    labels.sort();
    println!("all items ({}):", labels.len());
    for chunk in labels.chunks(4) {
        let row: Vec<String> = chunk.iter().map(|l| format!("{l:<28}")).collect();
        println!("  {}", row.join(""));
    }
}
