//! Case study §IV-C: why do jobs fail?
//!
//! ```text
//! cargo run --release --example job_failure [-- <jobs_per_trace>]
//! ```
//!
//! Reproduces Fig. 5 (exit status distribution) and Tables V–VII (the
//! job-failure rules of PAI, SuperCloud, and Philly).

use irma::core::experiments::{failure_tables, fig5};
use irma::core::{prepare_all, AnalysisConfig, ExperimentScale};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("numeric job count"))
        .unwrap_or(20_000);
    let scale = ExperimentScale {
        pai_jobs: n,
        supercloud_jobs: n / 2,
        philly_jobs: n / 2,
        seed: 0xdcc0,
    };
    eprintln!("preparing traces ({n} PAI jobs)...");
    let traces = prepare_all(&scale, &AnalysisConfig::default());

    println!("{}", fig5(&traces).render());
    for table in failure_tables(&traces) {
        println!("{}", table.render());
    }

    println!("Takeaway (paper §IV-C): PAI failures are predictable from");
    println!("submission-time features (simple rule/tree classifiers suffice);");
    println!("SuperCloud/Philly failures correlate with users and multi-GPU");
    println!("gang scheduling — screen distributed jobs on a few nodes first.");
}
