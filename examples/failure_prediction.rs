//! Rule-based failure prediction (§IV-C takeaways, made executable).
//!
//! ```text
//! cargo run --release --example failure_prediction [-- <jobs_per_trace> [threshold]]
//! ```
//!
//! Trains an ordered-rule-list classifier from each trace's pruned
//! failure rules, evaluates it on a *fresh* trace (different seed,
//! encoder frozen at training time), and prints both the scores and the
//! rules that do the predicting — every positive prediction is
//! explainable by one table row.

use irma::core::{failure_prediction, prepare_all, AnalysisConfig, ExperimentScale, KW_FAILED};
use irma::rules::RuleClassifier;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("numeric job count"))
        .unwrap_or(20_000);
    let threshold: f64 = args
        .next()
        .map(|a| a.parse().expect("numeric threshold"))
        .unwrap_or(0.8);
    let scale = ExperimentScale {
        pai_jobs: n,
        supercloud_jobs: n / 2,
        philly_jobs: n / 2,
        seed: 0xdcc0,
    };
    eprintln!("preparing traces ({n} PAI jobs)...");
    let traces = prepare_all(&scale, &AnalysisConfig::default());

    for t in &traces {
        // Two operating points: the requested high-precision threshold and
        // a permissive one, to show where each trace's rules run out.
        for th in [threshold, 0.3] {
            let result = failure_prediction(t, t.analysis.n_jobs() / 2, 0xfeed, th);
            let e = &result.eval;
            println!(
                "{:<11} thresh={th:.1} rules={:<3} precision={:.2} recall={:.2} f1={:.2} (base failure rate {:.2})",
                t.name,
                result.n_rules,
                e.precision(),
                e.recall(),
                e.f1(),
                e.base_rate()
            );
        }

        // Show the classifier's actual rule list — the interpretability
        // story: this *is* the model.
        let keyword = t.analysis.item(KW_FAILED).expect("failure item");
        let kept = t
            .analysis
            .keyword(KW_FAILED)
            .expect("failure item")
            .outcome
            .kept;
        let classifier = RuleClassifier::train(&kept, keyword, threshold);
        for rule in classifier.rules().iter().take(4) {
            println!("    if {}", rule.render(&t.analysis.encoded.catalog));
        }
        println!();
    }

    println!("Expected shape (paper §IV-C): PAI precision far above its base");
    println!("rate with solid recall — a rule list suffices; SuperCloud and");
    println!("Philly rules are weaker, so recall collapses at high precision.");
}
