//! Case study §IV-D: trace-specific rules (Table VIII).
//!
//! ```text
//! cargo run --release --example misc_rules [-- <jobs_per_trace>]
//! ```
//!
//! Queue waits by GPU type (PAI1/PAI2), workload-specific placement
//! (PAI3/PAI4), new users killing jobs on SuperCloud (CIR1), and
//! long-running multi-GPU jobs on Philly (PHI1).

use irma::core::experiments::misc_tables;
use irma::core::{prepare_all, AnalysisConfig, ExperimentScale};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("numeric job count"))
        .unwrap_or(20_000);
    let scale = ExperimentScale {
        pai_jobs: n,
        supercloud_jobs: n / 2,
        philly_jobs: n / 2,
        seed: 0xdcc0,
    };
    eprintln!("preparing traces ({n} PAI jobs)...");
    let traces = prepare_all(&scale, &AnalysisConfig::default());

    for table in misc_tables(&traces) {
        println!("{}", table.render());
    }

    println!("Takeaways (paper §IV-D): T4s queue far less than P100/V100");
    println!("despite a 1:3.5 inventory ratio — rebalance heterogeneous");
    println!("clusters; RecSys favours T4 with parallel tasks, NLP pairs");
    println!("high SM with idle CPUs; schedulers should expect multi-GPU");
    println!("jobs to run long (bad fit for shortest-job-first).");
}
