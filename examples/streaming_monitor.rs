//! Streaming rule monitoring over an arriving job feed.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```
//!
//! The paper's workflow is batch, but its §VI discussion points out that
//! the pruning stage composes with streaming miners. This example runs
//! that setup: jobs from the SuperCloud profile arrive one at a time into
//! a sliding window; when the item-frequency *drift* since the last mine
//! exceeds a threshold, the window is re-mined and the failure rules are
//! re-derived. Halfway through, the feed switches to a failure-wave
//! regime (a bad node draining jobs) and the monitor picks up the new
//! rules within a window's worth of arrivals.
//!
//! Both the drift signal and the window's prefix tree are maintained
//! incrementally (O(|txn|) per arrival, no full-window rescans), and the
//! re-mine goes through the budgeted `try_mine` path so a pathological
//! window degrades an emission instead of killing the monitor. The
//! productionized version of this loop — bounded ring ingest, adaptive
//! sampling, OpenMetrics deltas — is `irma watch` (see DESIGN.md §10).

use irma::core::{supercloud_spec, KW_FAILED};
use irma::mine::{BudgetGuard, ExecBudget, MinerConfig, SlidingWindowMiner};
use irma::prep::fit;
use irma::rules::{generate_rules, KeywordAnalysis, PruneParams, RuleConfig};
use irma::synth::{supercloud, TraceConfig};

const WINDOW: usize = 2_000;
const DRIFT_THRESHOLD: f64 = 0.35;

fn main() {
    // Two regimes: normal operation, then a failure wave. Both encoded
    // with the preparation frozen on the normal regime (an operator's
    // dashboards don't re-bin on every arrival either).
    let normal = supercloud(&TraceConfig {
        n_jobs: 6_000,
        seed: 0x57,
        max_monitor_samples: 64,
    });
    // The "wave": a different seed re-weighted towards failures by
    // dropping most healthy training jobs.
    let wave_src = supercloud(&TraceConfig {
        n_jobs: 12_000,
        seed: 0x58,
        max_monitor_samples: 64,
    });
    let normal_frame = normal.merged();
    let fitted = fit(&normal_frame, &supercloud_spec());
    let normal_db = fitted.transform(&normal_frame);

    let wave_frame = wave_src.merged();
    let wave_all = fitted.transform(&wave_frame);
    let failed_item = fitted.catalog().id(KW_FAILED).expect("Failed item");
    // Keep failures and every 4th healthy job -> a failure-heavy stream.
    let wave: Vec<Vec<u32>> = (0..wave_all.len())
        .filter(|&i| wave_all.transaction(i).binary_search(&failed_item).is_ok() || i % 4 == 0)
        .map(|i| wave_all.transaction(i).to_vec())
        .collect();

    let mut miner = SlidingWindowMiner::new(WINDOW, MinerConfig::with_min_support(0.05));
    let budget = ExecBudget {
        deadline: Some(std::time::Duration::from_secs(5)),
        ..ExecBudget::default()
    };
    let mut arrivals = 0usize;
    let mut remines = 0usize;

    let mut feed: Vec<Vec<u32>> = (0..normal_db.len())
        .map(|i| normal_db.transaction(i).to_vec())
        .collect();
    feed.extend(wave);

    for (i, txn) in feed.iter().enumerate() {
        miner.push(txn.iter().copied());
        arrivals += 1;
        if miner.len() < WINDOW / 2 || miner.drift() < DRIFT_THRESHOLD {
            continue;
        }
        // Budgeted mining: a breach skips this emission (the daemon's
        // degradation ladder would relax knobs and retry) but the monitor
        // itself keeps running either way.
        let frequent = match miner.try_mine(&BudgetGuard::new(&budget)) {
            Ok(frequent) => frequent,
            Err(e) => {
                println!("arrival {i:>5}: re-mine skipped ({e})");
                continue;
            }
        };
        remines += 1;
        let rules = generate_rules(&frequent, &RuleConfig::with_min_lift(1.5));
        let analysis = KeywordAnalysis::run(&rules, failed_item, &PruneParams::default());
        let failure_share = miner.item_count(failed_item) as f64 / miner.len() as f64;
        println!(
            "arrival {i:>5}: re-mined (drift trigger) | window failure rate {:.0}% | {} failure rules",
            failure_share * 100.0,
            analysis.n_kept()
        );
        if let Some(top) = analysis.causes.first() {
            println!("    top cause: {}", top.render(fitted.catalog()));
        }
        if remines > 12 {
            println!("    ... (suppressing further re-mine logs)");
            break;
        }
    }
    println!(
        "\n{arrivals} arrivals processed, {remines} drift-triggered re-mines \
         (threshold {DRIFT_THRESHOLD})"
    );
    println!("The failure-wave regime shows up as a jump in the window failure");
    println!("rate and a larger failure-rule set; between regime shifts the");
    println!("drift signal stays quiet and no mining work happens at all.");
}
