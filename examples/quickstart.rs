//! Quickstart: mine interpretable rules from a tiny job log in ~40 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the whole workflow on an inline CSV: parse -> encode -> mine ->
//! generate rules -> keyword analysis, printing the cause/characteristic
//! tables for job failures, then re-runs with an observability sink (the
//! library form of the CLI's `--metrics` / `--verbose-stages` flags).

use irma::core::{analyze, analyze_with, AnalysisConfig, Metrics};
use irma::data::read_csv_str;
use irma::prep::{EncoderSpec, FeatureSpec, ZeroBin};

fn main() {
    // A miniature scheduler log: short-runtime idle jobs from `eve` fail.
    let mut csv = String::from("job_id,user,runtime_s,sm_util,status\n");
    for i in 0..400 {
        let row = match i % 8 {
            // eve's debug jobs: idle GPU, short runtime, mostly failing.
            0 | 1 => format!(
                "{i},eve,{},0.0,{}",
                30 + i % 60,
                if i % 8 == 0 { "Failed" } else { "Pass" }
            ),
            // healthy training jobs from everyone else.
            2..=4 => format!("{i},ada,{},{}.5,Pass", 4000 + i, 60 + (i % 30)),
            5 | 6 => format!("{i},bob,{},{}.0,Pass", 2000 + i, 40 + (i % 40)),
            // occasional long-running failures.
            _ => format!("{i},ada,{},55.0,Failed", 90_000 + i),
        };
        csv.push_str(&row);
        csv.push('\n');
    }
    let frame = read_csv_str(&csv).expect("inline CSV is well-formed");

    // Describe how columns become items (§III-E of the paper).
    let spec = EncoderSpec::new(vec![
        FeatureSpec::numeric("runtime_s", "Runtime"),
        FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent()),
        FeatureSpec::frequency("user", "Freq User", "New User"),
        FeatureSpec::categorical_remap("status", "", [("Failed", "Failed"), ("Pass", "Pass")]),
    ]);

    // Paper defaults: 5% support, itemsets up to length 5, lift >= 1.5,
    // pruning margins C_lift = C_supp = 1.5.
    let analysis = analyze(&frame, &spec, &AnalysisConfig::default());

    println!(
        "{} jobs -> {} items -> {} frequent itemsets -> {} rules\n",
        analysis.n_jobs(),
        analysis.encoded.catalog.len(),
        analysis.frequent.len(),
        analysis.rules.len()
    );

    // Why do jobs fail, and what else do failed jobs look like?
    println!("{}", analysis.render_keyword("Failed", 5));
    // Same question for idle GPUs.
    println!("{}", analysis.render_keyword("SM Util = 0%", 5));

    // The same run with per-stage observability: every pipeline stage
    // records wall time and cardinalities into a `Metrics` sink. This is
    // what `irma analyze --metrics out.json --verbose-stages true` uses;
    // `Metrics::disabled()` (the default everywhere) makes it all a no-op.
    let metrics = Metrics::enabled();
    let _ = analyze_with(&frame, &spec, &AnalysisConfig::default(), &metrics);
    let snapshot = metrics.snapshot();
    println!("per-stage trace:\n{}", snapshot.render_table());
    // `snapshot.to_json()` yields the same data as a machine-readable
    // snapshot — write it wherever `--metrics <path>` would.
    println!("JSON snapshot is {} bytes", snapshot.to_json().len());
}
