//! Case study §IV-B: why do jobs underutilize the GPU?
//!
//! ```text
//! cargo run --release --example gpu_underutilization [-- <jobs_per_trace>]
//! ```
//!
//! Reproduces Fig. 4 (CDF of SM utilization) and Tables II–IV (the
//! GPU-underutilization rules of PAI, SuperCloud, and Philly).

use irma::core::experiments::{fig4, underutilization_tables};
use irma::core::{prepare_all, AnalysisConfig, ExperimentScale};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("numeric job count"))
        .unwrap_or(20_000);
    let scale = ExperimentScale {
        pai_jobs: n,
        supercloud_jobs: n / 2,
        philly_jobs: n / 2,
        seed: 0xdcc0,
    };
    eprintln!("preparing traces ({n} PAI jobs)...");
    let traces = prepare_all(&scale, &AnalysisConfig::default());

    println!("{}", fig4(&traces).render());
    for table in underutilization_tables(&traces) {
        println!("{}", table.render());
    }

    println!("Takeaway (paper §IV-B): low CPU utilization and short runtime");
    println!("flag debug/exploratory runs in every trace; route them to a");
    println!("lower-tier pool or GPU-sharing (MPS / MIG) instead of full GPUs.");
}
