//! Umbrella crate re-exporting the whole IRMA workspace.
pub use irma_core as core;
pub use irma_data as data;
pub use irma_mine as mine;
pub use irma_obs as obs;
pub use irma_prep as prep;
pub use irma_rules as rules;
pub use irma_serve as serve;
pub use irma_synth as synth;
