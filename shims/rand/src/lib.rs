//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without network access, so instead of the real
//! `rand` this shim provides exactly what the IRMA crates use:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm `rand` 0.8 uses
//!   for `SmallRng` on 64-bit targets), seeded via SplitMix64 like
//!   `SeedableRng::seed_from_u64`;
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and the integer types;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`].
//!
//! Sampling is deterministic per seed, which the synthetic-trace substrate
//! relies on (`irma generate --seed`).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval (mirrors rand's
/// `SampleUniform`, which [`SampleRange`] blanket-impls over — that shape
/// matters: a single blanket impl lets integer-literal ranges infer their
/// type from the call site, e.g. when the result indexes a slice).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_interval(rng, start, end, true)
    }
}

/// Multiply-shift bounded sampling: uniform in `[0, span)`.
///
/// Bias is below 2^-64 per draw — irrelevant for the synthetic traces.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = high.wrapping_sub(low) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low.wrapping_add(bounded(rng, span + 1) as $t)
                } else {
                    low.wrapping_add(bounded(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                _inclusive: bool,
            ) -> $t {
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 state expansion, as rand_core does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_infers_usize_from_indexing() {
        // Regression: with per-type `SampleRange` impls the untyped
        // literal range fell back to i32 and `arr[rng.gen_range(0..4)]`
        // failed to compile; the `SampleUniform` blanket impl lets the
        // indexing context drive inference, matching the real crate.
        let mut rng = SmallRng::seed_from_u64(9);
        let arr = [8.0, 16.0, 64.0, 128.0];
        for _ in 0..100 {
            let x = arr[rng.gen_range(0..4)];
            assert!(arr.contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
