//! Offline stand-in for `criterion` (API subset used by `crates/bench`).
//!
//! Measures wall-clock time per iteration with a warm-up pass and a
//! fixed number of timed samples, then prints `group/label  median ±
//! spread`. No plots, no statistical regression — just honest,
//! comparable numbers suitable for "is this faster than before".

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark label with a parameter, e.g. `fpgrowth/20000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    result: Option<Duration>,
}

impl Bencher {
    /// Times `f`, recording the median over the sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + iteration-count calibration: target ~25ms per sample.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 1000);

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            times.push(start.elapsed() / per_sample as u32);
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Currently a no-op (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let rendered = match bencher.result {
            Some(median) => format_duration(median),
            None => "no measurement".to_string(),
        };
        println!("{:<56} {}", format!("{}/{}", self.name, label), rendered);
    }

    /// Benchmarks a closure.
    pub fn bench_function<L, F>(&mut self, id: L, f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_label(), f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<L, I, F>(&mut self, id: L, input: &I, mut f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<L, F>(&mut self, id: L, f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
