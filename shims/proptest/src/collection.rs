//! Collection strategies (`prop::collection`).

use crate::{Strategy, TestRng};

/// Acceptable size arguments for [`vec`]: an exact size or a range.
pub trait SizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty vec size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
