//! Offline stand-in for `proptest` (API subset used by the IRMA tests).
//!
//! Implements deterministic random property testing: the [`proptest!`]
//! macro runs each property over `ProptestConfig::cases` generated
//! inputs, seeded per (test name, case index) so failures reproduce
//! exactly across runs.
//!
//! **Shrinking** works at the choice-sequence level (the Hypothesis
//! approach): every `u64` the generator draws from [`TestRng`] is
//! recorded, and when a case fails the driver greedily minimizes that
//! sequence — deleting chunks, zeroing draws, and decreasing individual
//! values — re-running the property against a *replayed* stream after
//! each mutation and keeping any candidate that still fails. Because
//! shrinking happens below the [`Strategy`] layer it composes through
//! `prop_map` / `prop_flat_map` / `prop_filter` for free: smaller draws
//! mean shorter vectors, smaller integers, and floats closer to the
//! range start.
//!
//! **Corpus persistence**: with [`ProptestConfig::with_corpus`], each
//! minimized failing sequence is written to
//! `<corpus_dir>/<test_name>/<hash>.seed` and every later run replays
//! all stored sequences for the test *before* generating fresh cases,
//! so once-found bugs are locked in as deterministic regressions.
//!
//! Supported strategy surface:
//!
//! * numeric ranges (`0u32..8`, `0.05f64..=1.0`, …) and [`any`] for the
//!   primitive types;
//! * tuples of strategies (arity 2–6);
//! * [`collection::vec`], [`option::of`], [`string::string_regex`] (and
//!   `&str` literals as regex strategies);
//! * [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] /
//!   [`Strategy::prop_filter`];
//! * `#![proptest_config(ProptestConfig::with_cases(n))]`,
//!   [`prop_assert!`], [`prop_assert_eq!`].

use std::ops::{Range, RangeInclusive};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

pub mod collection;
pub mod option;
pub mod string;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property. The `PROPTEST_CASES`
    /// environment variable overrides the default of 256.
    pub cases: u32,
    /// Directory persisting minimized failures as replayable seeds
    /// (`<dir>/<test_name>/<hash>.seed`). `None` disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// Budget of candidate executions during shrinking.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            corpus_dir: None,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// Enables corpus persistence + replay under `dir`.
    pub fn with_corpus(mut self, dir: impl Into<PathBuf>) -> ProptestConfig {
        self.corpus_dir = Some(dir.into());
        self
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic generator state (SplitMix64) with a recorded choice log.
///
/// Every raw draw is appended to an internal log; a failing case's log is
/// the *choice sequence* the shrinker minimizes. A rng can also be built
/// in replay mode from a stored sequence: draws come from the sequence
/// (padded with zeros once exhausted) instead of the PRNG, so generation
/// is a pure function of the sequence and mutations of it explore
/// "nearby, simpler" inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    replay: Option<Vec<u64>>,
    pos: usize,
    log: Vec<u64>,
}

impl TestRng {
    /// Seeds from test identity + case index.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
            replay: None,
            pos: 0,
            log: Vec::new(),
        }
    }

    /// A rng replaying `sequence`; draws past its end yield 0.
    pub fn replay(sequence: Vec<u64>) -> TestRng {
        TestRng {
            state: 0,
            replay: Some(sequence),
            pos: 0,
            log: Vec::new(),
        }
    }

    /// The draws made so far (the case's choice sequence).
    pub fn choices(&self) -> &[u64] {
        &self.log
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let value = match &self.replay {
            Some(seq) => seq.get(self.pos).copied().unwrap_or(0),
            None => {
                self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            }
        };
        self.pos += 1;
        self.log.push(value);
        value
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMapStrategy { base: self, f }
    }

    /// Rejects values failing `pred` (regenerating, up to a retry cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            base: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct FilterStrategy<S, F> {
    base: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.base.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        // Typed payload so the driver can tell "generator starved" (an
        // invalid shrink candidate / misconfigured strategy) apart from a
        // genuine property failure.
        std::panic::panic_any(FilterExhausted(format!(
            "prop_filter `{}` rejected 1000 consecutive values",
            self.reason
        )));
    }
}

/// Panic payload raised when a [`Strategy::prop_filter`] starves.
#[doc(hidden)]
#[derive(Debug)]
pub struct FilterExhausted(pub String);

// ---- ranges ----

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// ---- tuples ----

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

// ---- any ----

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * (2f64).powi(exp)
    }
}

// `&str` literals act as regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"))
            .generate(rng)
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of the `prop` module re-export in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

/// How one execution of a property against one choice sequence ended.
#[derive(Debug)]
enum Outcome {
    /// The property held.
    Pass,
    /// The property failed (assertion or panic in the body).
    Fail(String),
    /// Generation could not produce a value (filter starvation).
    Invalid(String),
}

/// Runs the property once, classifying panics. Output from the panic hook
/// is suppressed for the duration (the driver re-reports failures itself,
/// and shrinking would otherwise spam one backtrace per candidate).
fn run_one(
    case: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    rng: &mut TestRng,
) -> Outcome {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| case(rng)));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(err)) => Outcome::Fail(err.message),
        Err(payload) => {
            if let Some(starved) = payload.downcast_ref::<FilterExhausted>() {
                Outcome::Invalid(starved.0.clone())
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Outcome::Fail(format!("panic: {s}"))
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Outcome::Fail(format!("panic: {s}"))
            } else {
                Outcome::Fail("panic: <non-string payload>".to_string())
            }
        }
    }
}

thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Chains a panic hook that stays silent while this thread is inside a
/// driver-supervised property execution. Installed once per process.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Greedily minimizes a failing choice sequence: per pass, try deleting
/// chunks (large to small), zeroing draws, then shrinking individual
/// values toward zero; adopt any candidate that still fails and repeat
/// until a full pass makes no progress (or the budget runs out).
fn shrink_sequence(
    mut best: Vec<u64>,
    mut best_message: String,
    case: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    budget: u32,
) -> (Vec<u64>, String) {
    fn attempt(
        candidate: Vec<u64>,
        case: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) -> Option<(Vec<u64>, String)> {
        let mut rng = TestRng::replay(candidate.clone());
        match run_one(case, &mut rng) {
            Outcome::Fail(message) => Some((candidate, message)),
            _ => None,
        }
    }
    let mut spent = 0u32;
    'outer: loop {
        // Pass 1: delete chunks, biggest first (shortens the sequence).
        let mut chunk = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.len() {
                if spent >= budget {
                    break 'outer;
                }
                let mut candidate = best.clone();
                candidate.drain(start..(start + chunk).min(candidate.len()));
                spent += 1;
                if let Some((seq, message)) = attempt(candidate, case) {
                    best = seq;
                    best_message = message;
                    continue 'outer;
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Pass 2: zero out draws (simplest value for every strategy).
        for i in 0..best.len() {
            if spent >= budget {
                break 'outer;
            }
            if best[i] == 0 {
                continue;
            }
            let mut candidate = best.clone();
            candidate[i] = 0;
            spent += 1;
            if let Some((seq, message)) = attempt(candidate, case) {
                best = seq;
                best_message = message;
                continue 'outer;
            }
        }
        // Pass 3: binary-search each draw down to its smallest failing
        // value (raw draws map monotonically to range positions, so this
        // converges on threshold boundaries instead of crawling by ulps).
        let mut lowered_any = false;
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            let mut lo = 0u64;
            while lo < best[i] {
                if spent >= budget {
                    break 'outer;
                }
                let mid = lo + (best[i] - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                spent += 1;
                match attempt(candidate, case) {
                    Some((seq, message)) => {
                        best = seq;
                        best_message = message;
                        lowered_any = true;
                    }
                    None => lo = mid + 1,
                }
            }
        }
        if !lowered_any {
            break;
        }
    }
    // Replay pads with zeros, so trailing zeros carry no information.
    while best.last() == Some(&0) {
        best.pop();
    }
    (best, best_message)
}

/// FNV-1a over the sequence bytes — stable corpus file names.
fn sequence_hash(seq: &[u64]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &word in seq {
        for byte in word.to_le_bytes() {
            hash = (hash ^ byte as u64).wrapping_mul(0x100000001b3);
        }
    }
    hash
}

/// Writes a minimized sequence as `<dir>/<test_name>/<hash>.seed`.
fn persist_seed(dir: &Path, test_name: &str, seq: &[u64]) -> std::io::Result<PathBuf> {
    let test_dir = dir.join(test_name);
    std::fs::create_dir_all(&test_dir)?;
    let path = test_dir.join(format!("{:016x}.seed", sequence_hash(seq)));
    let mut contents = format!(
        "# minimized failing choice sequence for `{test_name}` ({} draws)\n",
        seq.len()
    );
    for word in seq {
        contents.push_str(&word.to_string());
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Parses a `.seed` file (one decimal u64 per line, `#` comments).
fn parse_seed_file(path: &Path) -> std::io::Result<Vec<u64>> {
    let text = std::fs::read_to_string(path)?;
    let mut seq = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        seq.push(line.parse::<u64>().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}:{}: bad draw: {e}", path.display(), i + 1),
            )
        })?);
    }
    Ok(seq)
}

/// Replays every stored corpus sequence for `test_name`; panics on the
/// first one whose failure reproduces.
fn replay_corpus(
    dir: &Path,
    test_name: &str,
    case: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let test_dir = dir.join(test_name);
    let Ok(entries) = std::fs::read_dir(&test_dir) else {
        return; // no corpus for this test yet
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "seed"))
        .collect();
    paths.sort();
    for path in paths {
        let seq = parse_seed_file(&path)
            .unwrap_or_else(|e| panic!("unreadable corpus seed {}: {e}", path.display()));
        let mut rng = TestRng::replay(seq);
        if let Outcome::Fail(message) = run_one(case, &mut rng) {
            panic!(
                "corpus regression: `{}` fails on stored seed {}: {}",
                test_name,
                path.display(),
                message
            );
        }
    }
}

/// Test-loop driver used by the [`proptest!`] expansion. Not public API.
///
/// Order of operations: (1) replay the persisted corpus for this test, so
/// previously-minimized failures act as regressions; (2) run fresh
/// generated cases; (3) on the first failure, shrink its choice sequence,
/// persist the minimized seed (when a corpus dir is configured), and
/// panic with both the original and minimized failure messages.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Stable per-test seed: failures reproduce without a saved corpus.
    let mut seed = 0xcbf29ce484222325u64;
    for byte in test_name.bytes() {
        seed = (seed ^ byte as u64).wrapping_mul(0x100000001b3);
    }
    if let Ok(env_seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(parsed) = env_seed.parse::<u64>() {
            seed ^= parsed;
        }
    }
    if let Some(dir) = &config.corpus_dir {
        replay_corpus(dir, test_name, &mut case);
    }
    for case_index in 0..config.cases {
        let mut rng = TestRng::new(
            seed.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(case_index as u64 + 1)),
        );
        match run_one(&mut case, &mut rng) {
            Outcome::Pass => {}
            Outcome::Invalid(message) => panic!("proptest `{test_name}`: {message}"),
            Outcome::Fail(message) => {
                let sequence = rng.choices().to_vec();
                let (min_seq, min_message) = shrink_sequence(
                    sequence,
                    message.clone(),
                    &mut case,
                    config.max_shrink_iters,
                );
                let persisted = match &config.corpus_dir {
                    Some(dir) => match persist_seed(dir, test_name, &min_seq) {
                        Ok(path) => format!("; seed persisted to {}", path.display()),
                        Err(e) => format!("; seed persistence failed: {e}"),
                    },
                    None => String::new(),
                };
                panic!(
                    "proptest case {}/{} failed for `{}`: {}\n\
                     minimized to {} draws: {}{}",
                    case_index + 1,
                    config.cases,
                    test_name,
                    message,
                    min_seq.len(),
                    min_message,
                    persisted
                );
            }
        }
    }
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the driver can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __left, __right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}
