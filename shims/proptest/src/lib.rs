//! Offline stand-in for `proptest` (API subset used by the IRMA tests).
//!
//! Implements deterministic random property testing: the [`proptest!`]
//! macro runs each property over `ProptestConfig::cases` generated
//! inputs, seeded per (test name, case index) so failures reproduce
//! exactly across runs. Shrinking is **not** implemented — on failure the
//! offending generated inputs are printed verbatim instead.
//!
//! Supported strategy surface:
//!
//! * numeric ranges (`0u32..8`, `0.05f64..=1.0`, …) and [`any`] for the
//!   primitive types;
//! * tuples of strategies (arity 2–6);
//! * [`collection::vec`], [`option::of`], [`string::string_regex`] (and
//!   `&str` literals as regex strategies);
//! * [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] /
//!   [`Strategy::prop_filter`];
//! * `#![proptest_config(ProptestConfig::with_cases(n))]`,
//!   [`prop_assert!`], [`prop_assert_eq!`].

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;
pub mod string;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from test identity + case index.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMapStrategy { base: self, f }
    }

    /// Rejects values failing `pred` (regenerating, up to a retry cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            base: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct FilterStrategy<S, F> {
    base: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.base.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive values",
            self.reason
        );
    }
}

// ---- ranges ----

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// ---- tuples ----

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

// ---- any ----

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * (2f64).powi(exp)
    }
}

// `&str` literals act as regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"))
            .generate(rng)
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of the `prop` module re-export in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

/// Test-loop driver used by the [`proptest!`] expansion. Not public API.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Stable per-test seed: failures reproduce without a saved corpus.
    let mut seed = 0xcbf29ce484222325u64;
    for byte in test_name.bytes() {
        seed = (seed ^ byte as u64).wrapping_mul(0x100000001b3);
    }
    if let Ok(env_seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(parsed) = env_seed.parse::<u64>() {
            seed ^= parsed;
        }
    }
    for case_index in 0..config.cases {
        let mut rng = TestRng::new(
            seed.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(case_index as u64 + 1)),
        );
        if let Err(err) = case(&mut rng) {
            panic!(
                "proptest case {}/{} failed for `{}`: {}",
                case_index + 1,
                config.cases,
                test_name,
                err.message
            );
        }
    }
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the driver can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __left, __right
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}
