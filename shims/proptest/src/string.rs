//! String strategies from a regex subset (`proptest::string`).
//!
//! Supports the patterns the IRMA tests actually use: a sequence of
//! atoms, where an atom is a character class `[...]` (with literal
//! characters, `\`-escapes, and `a-z` ranges) or a literal character,
//! each optionally followed by a `{min,max}` repetition.

use crate::{Strategy, TestRng};

/// Regex parse failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex strategy error: {}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters (a class with one entry = a literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching a (subset) regex.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<Vec<char>, Error> {
    let mut members: Vec<char> = Vec::new();
    loop {
        let Some(c) = chars.next() else {
            return Err(Error("unterminated character class".to_string()));
        };
        match c {
            ']' => break,
            '\\' => {
                let Some(escaped) = chars.next() else {
                    return Err(Error("dangling escape in class".to_string()));
                };
                members.push(match escaped {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                });
            }
            '-' if !members.is_empty() && chars.peek().is_some_and(|&next| next != ']') => {
                // Range: previous member .. next char.
                let low = *members.last().expect("checked non-empty");
                let high = chars.next().expect("peeked");
                if (low as u32) > (high as u32) {
                    return Err(Error(format!("inverted range {low}-{high}")));
                }
                for code in (low as u32 + 1)..=(high as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        members.push(ch);
                    }
                }
            }
            other => members.push(other),
        }
    }
    if members.is_empty() {
        return Err(Error("empty character class".to_string()));
    }
    Ok(members)
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars>,
) -> Result<(usize, usize), Error> {
    if chars.peek() != Some(&'{') {
        return Ok((1, 1));
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (min_raw, max_raw) = match spec.split_once(',') {
                Some((a, b)) => (a.trim().to_string(), b.trim().to_string()),
                None => (spec.trim().to_string(), spec.trim().to_string()),
            };
            let min: usize = min_raw
                .parse()
                .map_err(|_| Error(format!("bad repetition `{spec}`")))?;
            let max: usize = if max_raw.is_empty() {
                min + 16
            } else {
                max_raw
                    .parse()
                    .map_err(|_| Error(format!("bad repetition `{spec}`")))?
            };
            if max < min {
                return Err(Error(format!("inverted repetition `{spec}`")));
            }
            return Ok((min, max));
        }
        spec.push(c);
    }
    Err(Error("unterminated repetition".to_string()))
}

/// `proptest::string::string_regex(pattern)` — a strategy for strings
/// matching `pattern` (see module docs for the supported subset).
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let members = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => {
                let Some(escaped) = chars.next() else {
                    return Err(Error("dangling escape".to_string()));
                };
                vec![match escaped {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                }]
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '|' | '(' | ')' => {
                return Err(Error(format!("unsupported regex construct `{c}`")));
            }
            literal => vec![literal],
        };
        let (min, max) = parse_repetition(&mut chars)?;
        atoms.push(Atom {
            chars: members,
            min,
            max,
        });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_literals() {
        let strat = string_regex("[ -~\n\r\"]{0,300}").unwrap();
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\r'));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let strat = string_regex("[xyz ,\"\n#|;-]{1,12}").unwrap();
        let allowed: Vec<char> = "xyz ,\"\n#|;-".chars().collect();
        let mut rng = TestRng::new(7);
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = strat.generate(&mut rng);
            let n = s.chars().count();
            assert!((1..=12).contains(&n));
            for c in s.chars() {
                assert!(allowed.contains(&c), "unexpected char {c:?}");
                saw_dash |= c == '-';
            }
        }
        assert!(saw_dash, "literal dash never generated");
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(string_regex("(ab)+").is_err());
        assert!(string_regex("[unclosed").is_err());
    }
}
