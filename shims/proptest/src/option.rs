//! Option strategies (`prop::option`).

use crate::{Strategy, TestRng};

/// Strategy producing `Option<T>` (3:1 `Some` bias, like real proptest's
/// default weight).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
