//! The work-stealing scheduler behind the rayon shim.
//!
//! Each [`Registry`] owns `width - 1 >= 1` worker OS threads (a width-1
//! registry runs everything inline and spawns nothing). Every worker has
//! its own lock-free [`ChaseLev`] deque of pending jobs; a worker pushes
//! and pops at the *bottom* of its own deque (LIFO, so the hottest, most
//! cache-local work runs first) and steals from the *top* of a victim's
//! deque or from the shared injector (FIFO, so thieves take the oldest —
//! largest — pending subtree). This is the classic Blumofe–Leiserson
//! discipline rayon itself uses, with the same deque rayon uses: the
//! owner's push/pop are plain loads and stores (one CAS only when racing
//! a thief for the last element), so the `join` fast path — push, run
//! left, pop right back — never takes a lock.
//!
//! The sole fork primitive is [`join`]: it pushes the right-hand closure
//! as a stealable job, runs the left-hand closure inline, and then
//! either pops the right job back (nobody stole it — the common, fast
//! path) or *works while waiting*: executing other pending jobs until
//! the thief finishes. Panics in either closure are captured and
//! re-thrown on the joining thread, so a panic anywhere in a steal tree
//! surfaces exactly where sequential code would have raised it — which
//! is what lets the miners keep their per-rank `catch_unwind`
//! attribution no matter which worker actually ran the subtree.
//!
//! Idle workers sleep on an [`EventCounter`] (eventcount protocol):
//! every producer bumps an epoch before checking for sleepers, and a
//! worker re-validates its pre-scan epoch snapshot after registering as
//! a sleeper, so wakeups cannot be lost and there is no polling timeout
//! — sleepers neither spin nor add wake latency.
//!
//! For deterministic steal-order fuzzing, a registry can be built with a
//! jitter seed ([`crate::ThreadPoolBuilder::steal_jitter`]): workers
//! then derive a per-thread SplitMix64 stream that perturbs victim
//! order and injects yields, exploring different interleavings while
//! the seed pins each run's decisions.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use crate::deque::{ChaseLev, FlatWords, Steal};

/// A type-erased pointer to a [`StackJob`] pinned on some stack frame.
///
/// Safety contract: the frame that created the job blocks (working or
/// parked) until the job's `done` flag is set, so the pointee outlives
/// every access through this reference.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// Safety: see the contract on the struct — JobRefs only travel between
// threads while the owning frame keeps the pointee alive.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Must be called at most once per underlying job.
    unsafe fn run(self) {
        (self.execute)(self.data)
    }
}

impl FlatWords for JobRef {
    fn to_words(self) -> [usize; 2] {
        [self.data as usize, self.execute as usize]
    }

    fn from_words(words: [usize; 2]) -> JobRef {
        JobRef {
            data: words[0] as *const (),
            // Safety: `words[1]` was produced by `to_words` from a live
            // fn pointer of exactly this type.
            execute: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(words[1]) },
        }
    }
}

/// A job whose closure and result slot live in the spawning stack frame.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    done: AtomicBool,
    /// Parked external waiter to unpark on completion (worker waiters
    /// spin-steal instead of parking).
    waiter: Mutex<Option<thread::Thread>>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> StackJob<F, R> {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            waiter: Mutex::new(None),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const StackJob<F, R> as *const (),
            execute: Self::execute_erased,
        }
    }

    /// # Safety
    /// `data` must point at a live `StackJob<F, R>` not yet executed.
    unsafe fn execute_erased(data: *const ()) {
        let job = &*(data as *const StackJob<F, R>);
        let f = (*job.f.get()).take().expect("job executed twice");
        let result = std::panic::catch_unwind(AssertUnwindSafe(f));
        *job.result.get() = Some(result);
        job.done.store(true, Ordering::Release);
        if let Some(thread) = job.waiter.lock().expect("waiter lock").take() {
            thread.unpark();
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks a non-worker thread until the job completes.
    fn wait_parked(&self) {
        let mut slot = self.waiter.lock().expect("waiter lock");
        loop {
            if self.is_done() {
                return;
            }
            *slot = Some(thread::current());
            drop(slot);
            thread::park();
            slot = self.waiter.lock().expect("waiter lock");
        }
    }

    /// Takes the closure's result. Only valid after `is_done()`.
    fn take_result(&self) -> thread::Result<R> {
        unsafe { (*self.result.get()).take().expect("result taken twice") }
    }
}

/// Eventcount: the lost-wakeup-free sleep protocol for idle workers.
///
/// Producers *publish* work in two steps: bump the epoch, then notify if
/// anyone is registered as sleeping. Workers snapshot the epoch *before*
/// scanning for work and go to sleep only if the epoch is still at the
/// snapshot *after* registering as a sleeper (registration before the
/// re-check is what closes the race — see [`EventCounter::sleep`]).
/// The result: no 50 ms poll timeout, no spinning, and a push-to-wake
/// latency of one `notify_one`.
struct EventCounter {
    /// Bumped on every publish; compared against pre-scan snapshots.
    epoch: AtomicU64,
    /// Registered sleepers; read lock-free by producers to skip the
    /// mutex on the (common) nobody-asleep path.
    sleepers: AtomicUsize,
    /// Guards the condvar; holds no data.
    mutex: Mutex<()>,
    condvar: Condvar,
}

impl EventCounter {
    fn new() -> EventCounter {
        EventCounter {
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Epoch snapshot; take one *before* scanning for work.
    fn snapshot(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Publishes new work: any worker that scanned before this call and
    /// found nothing will either see the bumped epoch when it tries to
    /// sleep, or is already registered and gets notified.
    fn publish(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Lock so the notify cannot slide between a sleeper's epoch
            // re-check and its wait.
            let _guard = self.mutex.lock().expect("eventcount lock");
            self.condvar.notify_one();
        }
    }

    /// Like [`EventCounter::publish`] but wakes everyone (shutdown).
    fn publish_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let _guard = self.mutex.lock().expect("eventcount lock");
        self.condvar.notify_all();
    }

    /// Sleeps until the next publish, unless one happened since
    /// `snapshot` was taken — then returns immediately so the caller
    /// rescans. Returns whether it actually blocked on the condvar
    /// (telemetry: parks that waited vs parks aborted by the re-check).
    ///
    /// Registration order matters: `sleepers` is incremented *before*
    /// the epoch re-check. A producer that bumps the epoch after our
    /// re-check therefore observes `sleepers > 0` and notifies; a
    /// producer that bumped before is caught by the re-check. Either
    /// way the wakeup cannot be lost.
    fn sleep(&self, snapshot: u64) -> bool {
        let guard = self.mutex.lock().expect("eventcount lock");
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let waited = if self.epoch.load(Ordering::SeqCst) == snapshot {
            // Spurious wakeups are fine: the caller loops and rescans.
            let _guard = self.condvar.wait(guard).expect("eventcount wait");
            true
        } else {
            false
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        waited
    }
}

/// Per-worker scheduler counters, one cache line each so a worker's
/// relaxed increments never contend with its neighbours' (no false
/// sharing on the hot fork path). All fields are monotone counters
/// except `deque_high_water`, a monotone running maximum written only by
/// the owning worker.
#[repr(align(128))]
struct WorkerStats {
    jobs_executed: AtomicU64,
    local_pushes: AtomicU64,
    steal_successes: AtomicU64,
    steal_empty: AtomicU64,
    steal_retries: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
    deque_high_water: AtomicU64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            jobs_executed: AtomicU64::new(0),
            local_pushes: AtomicU64::new(0),
            steal_successes: AtomicU64::new(0),
            steal_empty: AtomicU64::new(0),
            steal_retries: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            deque_high_water: AtomicU64::new(0),
        }
    }
}

/// Point-in-time copy of one worker's scheduler counters.
///
/// Counter semantics:
/// * `jobs_executed` — jobs this worker ran (counted immediately before
///   execution, so by the time a parallel operation completes every one
///   of its jobs has been counted);
/// * `local_pushes` — jobs pushed onto this worker's own deque (`join`
///   right-hand sides);
/// * `steal_successes` / `steal_empty` / `steal_retries` — per-victim
///   probe outcomes (one of the three per probe; attempts are their sum);
/// * `injector_pops` — jobs taken from the shared injector;
/// * `parks` — idle episodes that reached the eventcount sleep call;
/// * `wakes` — the subset of parks that actually blocked on the condvar
///   and were woken (`parks - wakes` = sleeps aborted by the epoch
///   re-check, i.e. lost-wakeup near-misses);
/// * `deque_high_water` — deepest this worker's own deque has been.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSchedStats {
    /// Jobs this worker executed.
    pub jobs_executed: u64,
    /// Jobs pushed onto this worker's own deque.
    pub local_pushes: u64,
    /// Steal probes that took an element.
    pub steal_successes: u64,
    /// Steal probes that found the victim empty.
    pub steal_empty: u64,
    /// Steal probes that lost a race and re-probed.
    pub steal_retries: u64,
    /// Jobs taken from the shared injector.
    pub injector_pops: u64,
    /// Idle episodes that reached the sleep call.
    pub parks: u64,
    /// Parks that actually blocked and were woken.
    pub wakes: u64,
    /// Maximum depth of this worker's own deque.
    pub deque_high_water: u64,
}

impl WorkerSchedStats {
    /// Total steal probes: successes + empty + retries.
    pub fn steal_attempts(&self) -> u64 {
        self.steal_successes + self.steal_empty + self.steal_retries
    }
}

/// Point-in-time snapshot of a pool's scheduler counters
/// ([`crate::ThreadPool::sched_stats`] / [`crate::sched_stats`]).
///
/// A sequential (width ≤ 1) or telemetry-disabled pool reports an empty
/// `workers` list. Between parallel operations the counters conserve
/// work: [`SchedSnapshot::jobs_executed`] equals
/// [`SchedSnapshot::jobs_submitted`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedSnapshot {
    /// Jobs pushed onto the shared injector (external submissions).
    pub injector_pushes: u64,
    /// Per-worker counters; index = worker id.
    pub workers: Vec<WorkerSchedStats>,
}

impl SchedSnapshot {
    /// Jobs executed across all workers.
    pub fn jobs_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs_executed).sum()
    }

    /// Jobs submitted: injector pushes plus every worker's local pushes.
    pub fn jobs_submitted(&self) -> u64 {
        self.injector_pushes + self.workers.iter().map(|w| w.local_pushes).sum::<u64>()
    }
}

struct Shared {
    /// One lock-free deque per worker; index = worker id. Only worker
    /// `i` may `push`/`pop` deque `i` (the Chase–Lev owner contract);
    /// everyone may `steal`.
    deques: Vec<ChaseLev<JobRef>>,
    /// Jobs injected from outside the pool (FIFO). External submissions
    /// are rare (one per `in_worker` migration), so a mutex-guarded
    /// queue is fine here; the hot fork path never touches it.
    injector: Mutex<VecDeque<JobRef>>,
    sleep: EventCounter,
    terminate: AtomicBool,
    /// Steal-order fuzzing seed; 0 disables jitter.
    jitter: u64,
    /// Per-worker telemetry; empty when telemetry is disabled (so the
    /// hot-path gate is a slice bounds check, not a branch on a flag).
    stats: Box<[WorkerStats]>,
    /// External submissions; counted here (not per worker) because the
    /// pushing thread is outside the pool.
    injector_pushes: AtomicU64,
}

impl Shared {
    /// Worker `index`'s telemetry counters; `None` when telemetry is
    /// disabled (the `stats` slice is then empty).
    #[inline]
    fn stat(&self, index: usize) -> Option<&WorkerStats> {
        self.stats.get(index)
    }

    /// Records `index` running a job. Counted *before* execution so that
    /// when a parallel operation completes (every job's `done` flag set,
    /// inside execution) all of its jobs are already counted — that is
    /// what makes executed == submitted hold between operations.
    #[inline]
    fn count_executed(&self, index: usize) {
        if let Some(s) = self.stat(index) {
            s.jobs_executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pops the bottom of worker `index`'s own deque (LIFO). Must only
    /// be called from worker `index` itself.
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].pop()
    }

    /// Pushes onto worker `index`'s own deque (stealable) and publishes.
    /// Must only be called from worker `index` itself.
    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].push(job);
        if let Some(s) = self.stat(index) {
            s.local_pushes.fetch_add(1, Ordering::Relaxed);
            // Owner-only writer, so a load + plain store is a race-free
            // running maximum (no RMW on the fork hot path).
            let depth = self.deques[index].len() as u64;
            if depth > s.deque_high_water.load(Ordering::Relaxed) {
                s.deque_high_water.store(depth, Ordering::Relaxed);
            }
        }
        self.sleep.publish();
    }

    /// Steals the front of any queue: the injector first, then victim
    /// deques starting at `start` (FIFO — thieves take the oldest job,
    /// which by the splitting discipline is the largest pending chunk).
    /// A lost steal race (`Steal::Retry`) re-probes the same victim:
    /// contention means the deque is non-empty, so it is the best victim
    /// we know of.
    fn steal(&self, thief: usize, start: usize) -> Option<JobRef> {
        if let Some(job) = self.injector.lock().expect("injector lock").pop_front() {
            if let Some(s) = self.stat(thief) {
                s.injector_pops.fetch_add(1, Ordering::Relaxed);
            }
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 0..n {
            let victim = (start + offset) % n;
            if victim == thief {
                continue;
            }
            loop {
                match self.deques[victim].steal() {
                    Steal::Success(job) => {
                        if let Some(s) = self.stat(thief) {
                            s.steal_successes.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(job);
                    }
                    Steal::Retry => {
                        if let Some(s) = self.stat(thief) {
                            s.steal_retries.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    Steal::Empty => {
                        if let Some(s) = self.stat(thief) {
                            s.steal_empty.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                }
            }
        }
        None
    }

    fn push_injected(&self, job: JobRef) {
        if !self.stats.is_empty() {
            self.injector_pushes.fetch_add(1, Ordering::Relaxed);
        }
        self.injector.lock().expect("injector lock").push_back(job);
        self.sleep.publish();
    }
}

/// Thread-local identity of a pool worker.
struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
    /// Per-worker SplitMix64 state for steal-order jitter (0 = off).
    rng: Cell<u64>,
}

impl WorkerCtx {
    /// Next jitter draw; advances a SplitMix64 stream.
    fn jitter_draw(&self) -> u64 {
        let mut state = self.rng.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.rng.set(state);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^ (state >> 31)
    }

    /// Victim scan start: round-robin normally, randomized under jitter.
    fn steal_start(&self) -> usize {
        let n = self.shared.deques.len();
        if self.shared.jitter != 0 {
            // Occasionally yield first so another thread's steal can win
            // the race — this is what actually permutes steal order on a
            // machine with fewer cores than workers.
            if self.jitter_draw().is_multiple_of(4) {
                thread::yield_now();
            }
            (self.jitter_draw() as usize) % n.max(1)
        } else {
            (self.index + 1) % n.max(1)
        }
    }
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// Runs `f` with the current thread's worker context, if it is a pool
/// worker thread.
fn with_worker<R>(f: impl FnOnce(Option<&WorkerCtx>) -> R) -> R {
    WORKER.with(|cell| f(cell.borrow().as_ref()))
}

fn worker_main(shared: Arc<Shared>, index: usize, registry: Arc<Registry>) {
    WORKER.with(|cell| {
        *cell.borrow_mut() = Some(WorkerCtx {
            shared: Arc::clone(&shared),
            index,
            rng: Cell::new(shared.jitter ^ (index as u64).wrapping_mul(0x9e37_79b9)),
        });
    });
    // Parallel operations started *from* this worker (nested collects)
    // should split to this pool's width.
    crate::set_current_registry(Some(registry));
    loop {
        // The epoch snapshot must precede the work scan: a publish that
        // lands between scan and sleep then moves the epoch past the
        // snapshot and `sleep` returns immediately.
        let snapshot = shared.sleep.snapshot();
        let found = with_worker(|ctx| {
            let ctx = ctx.expect("worker context set above");
            let start = ctx.steal_start();
            shared
                .pop_local(index)
                .or_else(|| shared.steal(index, start))
        });
        if let Some(job) = found {
            shared.count_executed(index);
            unsafe { job.run() };
            continue;
        }
        if shared.terminate.load(Ordering::Acquire) {
            break;
        }
        if let Some(s) = shared.stat(index) {
            s.parks.fetch_add(1, Ordering::Relaxed);
        }
        if shared.sleep.sleep(snapshot) {
            if let Some(s) = shared.stat(index) {
                s.wakes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A work-stealing thread pool. `width` is the number of threads that
/// cooperate on parallel operations (the pool spawns `width` workers;
/// callers from outside park while workers run).
pub(crate) struct Registry {
    shared: Arc<Shared>,
    width: usize,
    /// Joined on drop so `ThreadPool` teardown is deterministic.
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("width", &self.width)
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// Builds a registry of `width` cooperating threads. Width 0/1 is a
    /// sequential registry: no threads are spawned and every operation
    /// runs inline on the caller. `telemetry` controls whether the
    /// per-worker scheduler counters are maintained.
    pub(crate) fn new(width: usize, jitter: u64, telemetry: bool) -> Arc<Registry> {
        let width = width.max(1);
        let spawn = if width > 1 { width } else { 0 };
        let tracked = if telemetry { spawn } else { 0 };
        let shared = Arc::new(Shared {
            deques: (0..spawn).map(|_| ChaseLev::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: EventCounter::new(),
            terminate: AtomicBool::new(false),
            jitter,
            stats: (0..tracked).map(|_| WorkerStats::new()).collect(),
            injector_pushes: AtomicU64::new(0),
        });
        let registry = Arc::new(Registry {
            shared: Arc::clone(&shared),
            width,
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(spawn);
        for index in 0..spawn {
            let shared = Arc::clone(&shared);
            let registry_ref = Arc::clone(&registry);
            handles.push(
                thread::Builder::new()
                    .name(format!("irma-steal-{index}"))
                    .spawn(move || worker_main(shared, index, registry_ref))
                    .expect("spawn pool worker"),
            );
        }
        *registry.workers.lock().expect("workers lock") = handles;
        registry
    }

    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Snapshots the scheduler counters (relaxed loads; each worker's
    /// counters are individually coherent, cross-worker totals are exact
    /// whenever the pool is quiescent between parallel operations).
    pub(crate) fn sched_stats(&self) -> SchedSnapshot {
        SchedSnapshot {
            injector_pushes: self.shared.injector_pushes.load(Ordering::Relaxed),
            workers: self
                .shared
                .stats
                .iter()
                .map(|s| WorkerSchedStats {
                    jobs_executed: s.jobs_executed.load(Ordering::Relaxed),
                    local_pushes: s.local_pushes.load(Ordering::Relaxed),
                    steal_successes: s.steal_successes.load(Ordering::Relaxed),
                    steal_empty: s.steal_empty.load(Ordering::Relaxed),
                    steal_retries: s.steal_retries.load(Ordering::Relaxed),
                    injector_pops: s.injector_pops.load(Ordering::Relaxed),
                    parks: s.parks.load(Ordering::Relaxed),
                    wakes: s.wakes.load(Ordering::Relaxed),
                    deque_high_water: s.deque_high_water.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Runs `op` on a pool worker and blocks until it completes. If the
    /// current thread already is a worker of this pool — or the pool is
    /// sequential — `op` runs inline.
    pub(crate) fn in_worker<Op, R>(&self, op: Op) -> R
    where
        Op: FnOnce() -> R + Send,
        R: Send,
    {
        if self.width <= 1 {
            return op();
        }
        let inline =
            with_worker(|ctx| ctx.is_some_and(|ctx| Arc::ptr_eq(&ctx.shared, &self.shared)));
        if inline {
            return op();
        }
        let job = StackJob::new(op);
        self.shared.push_injected(job.as_job_ref());
        job.wait_parked();
        match job.take_result() {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Terminates and joins all workers. Idempotent. Called explicitly
    /// from `ThreadPool::drop` because workers hold an `Arc<Registry>`
    /// in their thread-locals — the registry's own `Drop` can therefore
    /// only run after the workers have already exited.
    pub(crate) fn shutdown(&self) {
        self.shared.terminate.store(true, Ordering::Release);
        self.shared.sleep.publish_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The process-global registry used outside any [`crate::ThreadPool`].
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let width = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Registry::new(width, 0, true)
    })
}

/// Index of the current pool worker thread (`None` off-pool). Mirrors
/// `rayon::current_thread_index`; the miners use it to attribute spans
/// and scratch arenas to workers.
pub fn current_thread_index() -> Option<usize> {
    with_worker(|ctx| ctx.map(|ctx| ctx.index))
}

/// Potentially-parallel fork-join: runs both closures, `a` inline and
/// `b` either popped back LIFO (not stolen) or on whichever worker stole
/// it. Outside a pool worker this runs `a` then `b` sequentially.
///
/// Panic semantics match rayon: if either closure panics, the panic is
/// re-raised here on the joining thread *after* both closures have
/// stopped running, preferring `a`'s panic when both fail.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let on_worker = with_worker(|ctx| ctx.map(|ctx| (Arc::clone(&ctx.shared), ctx.index)));
    match on_worker {
        Some((shared, index)) => join_on_worker(&shared, index, a, b),
        None => {
            let registry = crate::current_registry();
            if registry.width() <= 1 {
                // Sequential degenerate case: plain calls, natural panic
                // propagation.
                let ra = a();
                let rb = b();
                (ra, rb)
            } else {
                // Migrate into the pool so the fork actually forks.
                let registry = Arc::clone(&registry);
                registry.in_worker(move || join(a, b))
            }
        }
    }
}

fn join_on_worker<A, B, RA, RB>(shared: &Arc<Shared>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    shared.push_local(index, job_b.as_job_ref());

    let ra = std::panic::catch_unwind(AssertUnwindSafe(a));

    // Work while waiting: until our b is done (inline pop or a thief's
    // completion), keep executing whatever is pending. Executing jobs
    // from enclosing frames here is safe — they are independent by
    // construction and their owners wait on `done` flags exactly like
    // we do.
    while !job_b.is_done() {
        let next = with_worker(|ctx| {
            let ctx = ctx.expect("join_on_worker runs on a worker");
            let start = ctx.steal_start();
            shared
                .pop_local(index)
                .or_else(|| shared.steal(index, start))
        });
        match next {
            Some(job) => {
                shared.count_executed(index);
                unsafe { job.run() }
            }
            None => thread::yield_now(),
        }
    }
    let rb = job_b.take_result();

    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => std::panic::resume_unwind(payload),
        (_, Err(payload)) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use crate::ThreadPoolBuilder;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn counters_conserve_work_between_operations() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool builds");
        for round in 0..3 {
            assert_eq!(pool.install(|| fib(16)), 987);
            let stats = pool.sched_stats();
            assert_eq!(stats.workers.len(), 4);
            assert_eq!(
                stats.jobs_executed(),
                stats.jobs_submitted(),
                "round {round}: executed != submitted"
            );
        }
        let stats = pool.sched_stats();
        assert!(stats.jobs_executed() > 0, "fib(16) forks at least once");
        assert!(
            stats.injector_pushes > 0,
            "install migrates via the injector"
        );
        assert!(
            stats.workers.iter().any(|w| w.deque_high_water > 0),
            "some worker's deque held pending work"
        );
        for w in &stats.workers {
            assert!(w.wakes <= w.parks, "a wake implies a park");
            assert_eq!(
                w.steal_attempts(),
                w.steal_successes + w.steal_empty + w.steal_retries
            );
        }
    }

    #[test]
    fn telemetry_off_reports_no_workers() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .telemetry(false)
            .build()
            .expect("pool builds");
        assert_eq!(pool.install(|| fib(12)), 144);
        let stats = pool.sched_stats();
        assert!(stats.workers.is_empty());
        assert_eq!(stats.injector_pushes, 0);
        assert_eq!(stats.jobs_executed(), 0);
    }

    #[test]
    fn sequential_pool_snapshot_is_empty() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds");
        assert_eq!(pool.install(|| fib(10)), 55);
        assert!(pool.sched_stats().workers.is_empty());
    }
}
