//! A lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005),
//! with the memory orderings of Lê, Pop, Cohen & Zappa Nardelli's C11
//! formulation ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP 2013).
//!
//! One thread — the *owner* — pushes and pops at the bottom (LIFO);
//! any number of thieves take from the top (FIFO) via [`ChaseLev::steal`].
//! The owner never blocks and never issues an atomic RMW except when
//! racing a thief for the last element; thieves use a single CAS per
//! steal attempt.
//!
//! # Element storage and torn reads
//!
//! Elements are two machine words ([`FlatWords`]) stored in a pair of
//! relaxed atomics per slot. A thief's read of a slot can race with the
//! owner recycling that slot's storage (pop down + push back up within
//! the same circular buffer), so the read value may be torn — but only
//! in executions where the element was already taken by someone else,
//! in which case the thief's subsequent CAS on `top` fails and the torn
//! value is discarded. A *successful* CAS on `top` certifies that the
//! element was live for the whole read: live slots are never overwritten
//! in place (growth allocates a fresh buffer; the old one is retired,
//! not mutated), and the `Release` store of `bottom` in `push` makes the
//! slot contents visible before any thief can observe the new `bottom`.
//!
//! # Growth
//!
//! `push` doubles the circular buffer when full, copying the live window
//! into a fresh allocation and *retiring* the old buffer instead of
//! freeing it: a stalled thief may still be reading the old slots, and
//! keeping retired buffers alive until the deque itself drops makes that
//! read safe without hazard pointers or epochs. Total retired memory is
//! a geometric series bounded by the final buffer's size.

use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Initial circular-buffer capacity (slots); must be a power of two.
const INITIAL_CAPACITY: usize = 64;

/// Types storable in the deque: `Copy` payloads that round-trip through
/// two machine words (read and written as relaxed atomics per slot).
///
/// Exposed (doc-hidden) so the differential stress property in
/// `crates/check` can drive the deque with identifiable tokens.
#[doc(hidden)]
pub trait FlatWords: Copy {
    /// Encodes the value as two words.
    fn to_words(self) -> [usize; 2];
    /// Decodes a value previously produced by [`FlatWords::to_words`].
    fn from_words(words: [usize; 2]) -> Self;
}

impl FlatWords for usize {
    fn to_words(self) -> [usize; 2] {
        [self, 0]
    }

    fn from_words(words: [usize; 2]) -> usize {
        words[0]
    }
}

/// One circular-buffer slot: an element's two words, each a relaxed
/// atomic so racy (validated-by-CAS) reads are defined behaviour.
struct Slot {
    lo: AtomicUsize,
    hi: AtomicUsize,
}

/// A fixed-capacity circular buffer indexed by the deque's unbounded
/// `top`/`bottom` counters masked to the capacity.
struct Buffer {
    mask: usize,
    slots: Box<[Slot]>,
}

impl Buffer {
    fn new(capacity: usize) -> Buffer {
        debug_assert!(capacity.is_power_of_two());
        Buffer {
            mask: capacity - 1,
            slots: (0..capacity)
                .map(|_| Slot {
                    lo: AtomicUsize::new(0),
                    hi: AtomicUsize::new(0),
                })
                .collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    fn read(&self, index: isize) -> [usize; 2] {
        let slot = &self.slots[index as usize & self.mask];
        [
            slot.lo.load(Ordering::Relaxed),
            slot.hi.load(Ordering::Relaxed),
        ]
    }

    fn write(&self, index: isize, words: [usize; 2]) {
        let slot = &self.slots[index as usize & self.mask];
        slot.lo.store(words[0], Ordering::Relaxed);
        slot.hi.store(words[1], Ordering::Relaxed);
    }
}

/// Outcome of a [`ChaseLev::steal`] attempt.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque appeared empty.
    Empty,
    /// Lost a race with the owner or another thief; the deque may still
    /// hold work — retry if it matters.
    Retry,
    /// Took the oldest element.
    Success(T),
}

/// The deque. Owner calls [`push`](ChaseLev::push) / [`pop`](ChaseLev::pop)
/// from one designated thread; [`steal`](ChaseLev::steal) is free-threaded.
#[doc(hidden)]
pub struct ChaseLev<T> {
    /// Steal end; monotonically non-decreasing.
    top: AtomicIsize,
    /// Owner end; decremented transiently during `pop`.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth, kept alive until `Drop` so stalled
    /// thieves can finish their (doomed, CAS-rejected) slot reads.
    retired: Mutex<Vec<*mut Buffer>>,
    _marker: PhantomData<T>,
}

// Safety: elements are `Copy + Send` two-word payloads moved between
// threads by value; the retired pointer list is mutex-guarded.
unsafe impl<T: FlatWords + Send> Send for ChaseLev<T> {}
unsafe impl<T: FlatWords + Send> Sync for ChaseLev<T> {}

impl<T: FlatWords + Send> Default for ChaseLev<T> {
    fn default() -> ChaseLev<T> {
        ChaseLev::new()
    }
}

impl<T: FlatWords + Send> ChaseLev<T> {
    /// An empty deque.
    pub fn new() -> ChaseLev<T> {
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAPACITY)))),
            retired: Mutex::new(Vec::new()),
            _marker: PhantomData,
        }
    }

    /// Whether the deque is (momentarily) empty. Advisory only.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Momentary element count. Advisory only (concurrent thieves may
    /// move `top` between the two loads); exact when called by the owner
    /// with no thieves active.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Owner-only: pushes `value` at the bottom (LIFO end).
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // Safety: the buffer pointer is only replaced by the owner (us),
        // and retired buffers outlive the deque.
        let mut buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buffer.capacity() as isize {
            buffer = self.grow(t, b, buffer);
        }
        buffer.write(b, value.to_words());
        // Publish the slot contents before the new bottom: a thief that
        // acquires `bottom > b` must see the element.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed element (LIFO end).
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Safety: owner-only buffer replacement, as in `push`.
        let buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // The store of `bottom` must be globally visible before we read
        // `top`: this is the owner's half of the pop/steal handshake
        // (the thief's half is its own SeqCst fence between reading
        // `top` and `bottom`). Without it, a pop and a steal could both
        // take the same last element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let words = buffer.read(b);
            if t == b {
                // Last element: race thieves for it with the same CAS
                // they use, so exactly one side wins.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then(|| T::from_words(words))
            } else {
                Some(T::from_words(words))
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Free-threaded: takes the oldest element (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` read before the `bottom` read (thief's half of
        // the pop/steal handshake; see `pop`).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // Safety: buffers are never freed before the deque drops, so
            // this dereference is valid even if the owner grows
            // concurrently; a read from a stale buffer is certified (or
            // rejected) by the CAS below.
            let buffer = unsafe { &*self.buffer.load(Ordering::Acquire) };
            let words = buffer.read(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(T::from_words(words))
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Owner-only: doubles the buffer, copying the live window `[t, b)`.
    #[cold]
    fn grow(&self, t: isize, b: isize, old: &Buffer) -> &Buffer {
        let new = Buffer::new(old.capacity() * 2);
        for i in t..b {
            new.write(i, old.read(i));
        }
        let new_ptr = Box::into_raw(Box::new(new));
        // Release: thieves that acquire the new pointer see the copies.
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        self.retired.lock().expect("retired lock").push(old_ptr);
        // Safety: we just stored this pointer; only the owner swaps it.
        unsafe { &*new_ptr }
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Elements are `Copy` (no destructors to run); free the buffers.
        // Safety: exclusive access (`&mut self`), and every pointer here
        // came from `Box::into_raw` and is freed exactly once.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for ptr in self.retired.get_mut().expect("retired lock").drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let deque: ChaseLev<usize> = ChaseLev::new();
        for i in 1..=3 {
            deque.push(i);
        }
        assert_eq!(deque.steal(), Steal::Success(1));
        assert_eq!(deque.pop(), Some(3));
        assert_eq!(deque.pop(), Some(2));
        assert_eq!(deque.pop(), None);
        assert_eq!(deque.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_order_and_count() {
        let deque: ChaseLev<usize> = ChaseLev::new();
        let n = INITIAL_CAPACITY * 5;
        for i in 0..n {
            deque.push(i);
        }
        // Steals see FIFO order across several growths.
        for expected in 0..n / 2 {
            assert_eq!(deque.steal(), Steal::Success(expected));
        }
        // Pops see LIFO order for the rest.
        for expected in (n / 2..n).rev() {
            assert_eq!(deque.pop(), Some(expected));
        }
        assert!(deque.is_empty());
    }

    #[test]
    fn interleaved_push_pop_around_empty() {
        let deque: ChaseLev<usize> = ChaseLev::new();
        for round in 0..1000 {
            deque.push(round);
            assert_eq!(deque.pop(), Some(round));
            assert_eq!(deque.pop(), None);
        }
    }

    #[test]
    fn concurrent_thieves_observe_each_element_once() {
        use std::sync::atomic::AtomicBool;

        let deque: ChaseLev<usize> = ChaseLev::new();
        let done = AtomicBool::new(false);
        let n = 100_000usize;
        std::thread::scope(|scope| {
            let mut stealers = Vec::new();
            for _ in 0..3 {
                stealers.push(scope.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        match deque.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                }));
            }
            let mut popped = Vec::new();
            for i in 0..n {
                deque.push(i);
                if i % 3 == 0 {
                    if let Some(v) = deque.pop() {
                        popped.push(v);
                    }
                }
            }
            while let Some(v) = deque.pop() {
                popped.push(v);
            }
            done.store(true, Ordering::Release);
            let mut seen = popped;
            for handle in stealers {
                seen.extend(handle.join().expect("stealer joins"));
            }
            seen.sort_unstable();
            let expected: Vec<usize> = (0..n).collect();
            assert_eq!(seen, expected, "every element observed exactly once");
        });
    }
}
