//! Offline stand-in for `rayon` (API subset used by the IRMA workspace).
//!
//! Unlike the earlier shim — which split work *statically* into
//! `num_threads` eager chunks on scoped OS threads — this version runs a
//! real work-stealing scheduler (see [`pool`]): per-worker deques plus a
//! global injector, LIFO local pop / FIFO steal, and a [`join`]
//! primitive that parallel iterators use to subdivide *adaptively*, so
//! skewed workloads (one huge conditional tree among many small ones)
//! keep every thread busy instead of idling behind the largest static
//! chunk.
//!
//! Terminal operations still concatenate results in part order, so
//! output ordering matches `rayon`'s deterministic collect semantics
//! regardless of which worker ran which part — and with one thread the
//! cost model degrades to a plain iterator chain.
//!
//! Supported: `into_par_iter()` on integer ranges and `Vec`, `par_iter()`
//! on slices, `map` / `filter` / `flat_map_iter` / `flatten` / `fold`,
//! `collect`, [`join`], [`current_thread_index`], plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] (which routes
//! parallel operations to that pool's workers for the duration of a
//! closure). Shim-only extension: [`ThreadPoolBuilder::steal_jitter`]
//! seeds deterministic steal-order fuzzing for scheduler tests.

use std::cell::RefCell;
use std::sync::Arc;

pub mod deque;
pub mod iter;
pub mod pool;

pub use iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
pub use pool::{current_thread_index, join, SchedSnapshot, WorkerSchedStats};

use pool::Registry;

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// The registry parallel operations on this thread schedule into
    /// (set by [`ThreadPool::install`] and on pool worker threads).
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|cell| cell.borrow().clone())
        .unwrap_or_else(|| Arc::clone(pool::global_registry()))
}

pub(crate) fn set_current_registry(registry: Option<Arc<Registry>>) {
    CURRENT.with(|cell| *cell.borrow_mut() = registry);
}

/// Number of threads cooperating on parallel operations started from
/// this thread.
pub fn current_num_threads() -> usize {
    current_registry().width()
}

/// Shim-only extension: snapshots the scheduler counters of the pool
/// that parallel operations started from this thread schedule into (the
/// installed pool on a [`ThreadPool::install`] thread, this worker's own
/// pool on a pool thread, the global pool otherwise).
pub fn sched_stats() -> SchedSnapshot {
    current_registry().sched_stats()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    jitter: u64,
    telemetry: bool,
}

impl Default for ThreadPoolBuilder {
    fn default() -> ThreadPoolBuilder {
        ThreadPoolBuilder {
            num_threads: None,
            jitter: 0,
            telemetry: true,
        }
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot
/// actually fail here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; 0 means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Shim-only extension: seeds deterministic steal-order fuzzing.
    /// Workers derive per-thread SplitMix64 streams from `seed` that
    /// permute victim order and inject yields, so scheduler tests can
    /// explore different steal interleavings reproducibly. A seed of 0
    /// disables jitter (the default).
    pub fn steal_jitter(mut self, seed: u64) -> ThreadPoolBuilder {
        self.jitter = seed;
        self
    }

    /// Shim-only extension: enables or disables the per-worker scheduler
    /// counters (enabled by default). Disabling exists so the telemetry
    /// overhead itself can be benchmarked; production pools leave it on.
    pub fn telemetry(mut self, enabled: bool) -> ThreadPoolBuilder {
        self.telemetry = enabled;
        self
    }

    /// Builds the pool, spawning its worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Ok(ThreadPool {
            registry: Registry::new(width, self.jitter, self.telemetry),
        })
    }
}

/// A work-stealing thread pool. Dropping the pool terminates and joins
/// its workers.
#[derive(Debug)]
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Runs `f` with parallel operations scheduled onto this pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT.with(|cell| cell.borrow_mut().replace(Arc::clone(&self.registry)));
        struct Restore(Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                CURRENT.with(|cell| *cell.borrow_mut() = previous);
            }
        }
        let _restore = Restore(previous);
        f()
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.registry.width()
    }

    /// Shim-only extension: snapshots this pool's scheduler counters.
    pub fn sched_stats(&self) -> SchedSnapshot {
        self.registry.sched_stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers hold an `Arc<Registry>` in their thread-locals, so the
        // registry's strong count cannot reach zero until they exit —
        // shut them down explicitly here.
        self.registry.shutdown();
    }
}
