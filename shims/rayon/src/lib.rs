//! Offline stand-in for `rayon` (API subset used by the IRMA workspace).
//!
//! Instead of a work-stealing deque, a parallel iterator here is a value
//! that knows how to **split itself into independent parts** and how to
//! run each part as a plain sequential [`Iterator`]. Terminal operations
//! ([`ParallelIterator::collect`]) split into one part per available
//! thread, run the parts on scoped OS threads, and concatenate results in
//! part order — so output ordering matches `rayon`'s deterministic
//! collect semantics and, with one thread, the cost model degrades to a
//! plain iterator chain.
//!
//! Supported: `into_par_iter()` on integer ranges and `Vec`, `par_iter()`
//! on slices, `map` / `filter` / `flat_map_iter` / `flatten` / `fold`,
//! `collect`, plus [`ThreadPoolBuilder`] / [`ThreadPool::install`] (which
//! pins the number of parts for the duration of a closure).

use std::cell::Cell;

pub mod iter;

pub use iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads terminal operations will split into.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE.with(|cell| cell.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot
/// actually fail here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; 0 means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A "pool": a pinned split width applied while [`install`]ed.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with parallel operations split into this pool's width.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_OVERRIDE.with(|cell| cell.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|cell| cell.set(self.0));
            }
        }
        let _restore = Restore(previous);
        f()
    }

    /// The pinned width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}
