//! Splittable parallel iterators (see the crate docs for the model).

/// A splittable, sequentially-drainable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// The sequential iterator a single part drains into.
    type Seq: Iterator<Item = Self::Item>;

    /// Splits into at most `n` independent parts (in element order).
    fn split_parts(self, n: usize) -> Vec<Self>;

    /// Drains this part sequentially.
    fn seq(self) -> Self::Seq;

    /// Number of *base* elements this part will drain, if cheaply known.
    ///
    /// This is a splitting hint, not an output-size promise: adapters
    /// like `filter`/`flat_map_iter` report their input's length because
    /// that is what `split_parts` divides. `None` disables adaptive
    /// splitting (the part runs sequentially as one leaf).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Maps each element through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync + Clone,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps elements satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync + Clone,
    {
        Filter { base: self, p }
    }

    /// Maps each element to a sequential iterator and flattens.
    fn flat_map_iter<II, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> II + Send + Sync + Clone,
        II: IntoIterator,
        II::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Flattens nested iterables.
    fn flatten(self) -> Flatten<Self>
    where
        Self::Item: IntoIterator,
        <Self::Item as IntoIterator>::Item: Send,
    {
        Flatten { base: self }
    }

    /// Per-part sequential fold; yields one accumulator per part
    /// (mirroring `rayon`'s fold-then-reduce shape).
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync + Clone,
        F: Fn(T, Self::Item) -> T + Send + Sync + Clone,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Materializes the iterator on the current work-stealing pool.
    ///
    /// The iterator is subdivided *adaptively*: starting from a grain of
    /// `len / (width * 8)` base elements, each half of a [`crate::join`]
    /// becomes a stealable task, so skewed parts keep splitting while
    /// idle workers steal the halves. Leaf buffers are concatenated in
    /// split order into one reserved output, so the result equals the
    /// sequential result regardless of thread count or steal order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let registry = crate::current_registry();
        if registry.width() <= 1 || self.len_hint().is_some_and(|len| len <= 1) {
            return self.seq().collect();
        }
        let grain = self
            .len_hint()
            .map_or(1, |len| (len / (registry.width() * 8)).max(1));
        let pieces = registry.in_worker(|| split_run(self, grain));
        let total: usize = pieces.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for piece in pieces {
            out.extend(piece);
        }
        // For `C = Vec<_>` the std specialization reuses `out`'s
        // allocation, so the parallel path writes each element once.
        C::from_iter(out)
    }
}

/// Recursive splitting driver behind [`ParallelIterator::collect`]:
/// parts above `grain` base elements split in two, the right half is
/// pushed as a stealable job via [`crate::join`], and leaf results come
/// back as per-leaf buffers in left-to-right split order.
fn split_run<I: ParallelIterator>(iter: I, grain: usize) -> Vec<Vec<I::Item>> {
    if iter.len_hint().is_none_or(|len| len <= grain.max(1)) {
        return vec![iter.seq().collect()];
    }
    let mut parts = iter.split_parts(2);
    if parts.len() <= 1 {
        return parts.into_iter().map(|p| p.seq().collect()).collect();
    }
    let right = parts.pop().expect("split_parts(2) yielded two parts");
    let left = parts.pop().expect("split_parts(2) yielded two parts");
    let (mut left_pieces, right_pieces) = crate::join(
        move || split_run(left, grain),
        move || split_run(right, grain),
    );
    left_pieces.extend(right_pieces);
    left_pieces
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a reference).
    type Item: Send + 'a;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

// ---- sources ----

/// Parallel iterator over an integer range.
#[derive(Debug, Clone)]
pub struct ParRange<T> {
    start: T,
    end: T,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;

            fn split_parts(self, n: usize) -> Vec<Self> {
                let len = (self.end.saturating_sub(self.start)) as usize;
                let n = n.clamp(1, len.max(1));
                let chunk = len.div_ceil(n);
                let mut parts = Vec::with_capacity(n);
                let mut lo = self.start;
                while lo < self.end {
                    let hi = self.end.min(lo + chunk as $t);
                    parts.push(ParRange { start: lo, end: hi });
                    lo = hi;
                }
                if parts.is_empty() {
                    parts.push(self);
                }
                parts
            }

            fn seq(self) -> Self::Seq {
                self.start..self.end
            }

            fn len_hint(&self) -> Option<usize> {
                Some((self.end.saturating_sub(self.start)) as usize)
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { start: self.start, end: self.end }
            }
        }
    )*};
}
impl_par_range!(u32, u64, usize, i32, i64);

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let len = self.slice.len();
        let n = n.clamp(1, len.max(1));
        let chunk = len.div_ceil(n).max(1);
        self.slice
            .chunks(chunk)
            .map(|slice| ParSlice { slice })
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.slice.iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.slice.len())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over an owned vector.
#[derive(Debug)]
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn split_parts(mut self, n: usize) -> Vec<Self> {
        let len = self.items.len();
        let n = n.clamp(1, len.max(1));
        let chunk = len.div_ceil(n).max(1);
        let mut parts = Vec::with_capacity(n);
        while self.items.len() > chunk {
            let rest = self.items.split_off(chunk);
            parts.push(ParVec {
                items: std::mem::replace(&mut self.items, rest),
            });
        }
        parts.push(self);
        parts
    }

    fn seq(self) -> Self::Seq {
        self.items.into_iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

// ---- adapters ----

/// See [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Map { base, f: f.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().map(self.f)
    }

    fn len_hint(&self) -> Option<usize> {
        self.base.len_hint()
    }
}

/// See [`ParallelIterator::filter`].
#[derive(Debug)]
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync + Clone,
{
    type Item = I::Item;
    type Seq = std::iter::Filter<I::Seq, P>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let p = self.p;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Filter { base, p: p.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().filter(self.p)
    }

    fn len_hint(&self) -> Option<usize> {
        self.base.len_hint()
    }
}

/// See [`ParallelIterator::flat_map_iter`].
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, II> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> II + Send + Sync + Clone,
    II: IntoIterator,
    II::Item: Send,
{
    type Item = II::Item;
    type Seq = std::iter::FlatMap<I::Seq, II, F>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| FlatMapIter { base, f: f.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().flat_map(self.f)
    }

    fn len_hint(&self) -> Option<usize> {
        self.base.len_hint()
    }
}

/// See [`ParallelIterator::flatten`].
#[derive(Debug)]
pub struct Flatten<I> {
    base: I,
}

impl<I> ParallelIterator for Flatten<I>
where
    I: ParallelIterator,
    I::Item: IntoIterator,
    <I::Item as IntoIterator>::Item: Send,
{
    type Item = <I::Item as IntoIterator>::Item;
    type Seq = std::iter::Flatten<I::Seq>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Flatten { base })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().flatten()
    }

    fn len_hint(&self) -> Option<usize> {
        self.base.len_hint()
    }
}

/// See [`ParallelIterator::fold`].
#[derive(Debug)]
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, ID, F, T> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Send + Sync + Clone,
    F: Fn(T, I::Item) -> T + Send + Sync + Clone,
{
    type Item = T;
    type Seq = std::iter::Once<T>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let (identity, fold_op) = (self.identity, self.fold_op);
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Fold {
                base,
                identity: identity.clone(),
                fold_op: fold_op.clone(),
            })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        let acc = self.base.seq().fold((self.identity)(), self.fold_op);
        std::iter::once(acc)
    }

    fn len_hint(&self) -> Option<usize> {
        self.base.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<u32> = (0u32..100).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<u32> = (0u32..100).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn slice_filter_flat_map() {
        let data: Vec<i64> = (0..50).collect();
        let par: Vec<i64> = data
            .par_iter()
            .filter(|&&x| x % 2 == 0)
            .flat_map_iter(|&x| vec![x, x + 1])
            .collect();
        let seq: Vec<i64> = data
            .iter()
            .filter(|&&x| x % 2 == 0)
            .flat_map(|&x| vec![x, x + 1])
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn fold_partials_sum_to_total() {
        let partials: Vec<u64> = (0u64..1000)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .collect();
        assert_eq!(partials.iter().sum::<u64>(), (0u64..1000).sum::<u64>());
    }

    #[test]
    fn vec_into_par_flatten() {
        let nested: Vec<Vec<u32>> = (0..20).map(|i| vec![i; 3]).collect();
        let flat: Vec<u32> = nested.clone().into_par_iter().flatten().collect();
        let expected: Vec<u32> = nested.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u32> = (5u32..5).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (a, b) = pool.install(|| {
            crate::join(
                || (0u64..1000).sum::<u64>(),
                || (0u64..1000).product::<u64>(),
            )
        });
        assert_eq!(a, (0u64..1000).sum::<u64>());
        assert_eq!(b, 0);
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        for side in 0..2 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.install(|| {
                    crate::join(
                        || {
                            if side == 0 {
                                panic!("left boom")
                            }
                        },
                        || {
                            if side == 1 {
                                panic!("right boom")
                            }
                        },
                    )
                })
            }));
            let payload = caught.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
        }
    }

    #[test]
    fn nested_joins_subdivide() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        fn sum_range(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = crate::join(|| sum_range(lo, mid), || sum_range(mid, hi));
                a + b
            }
        }
        let total = pool.install(|| sum_range(0, 100_000));
        assert_eq!(total, (0u64..100_000).sum::<u64>());
    }

    #[test]
    fn skewed_flat_map_is_order_stable_across_widths_and_jitter() {
        // Element i expands to i % 17 outputs — a skewed workload where
        // static chunking would leave threads idle. The collected output
        // must be byte-identical across widths and steal orders.
        let expected: Vec<u64> = (0u64..2000)
            .flat_map(|i| (0..(i % 17)).map(move |j| i * 100 + j))
            .collect();
        for width in [1usize, 2, 8] {
            for seed in [0u64, 0x5eed, 0xdead_beef] {
                let pool = crate::ThreadPoolBuilder::new()
                    .num_threads(width)
                    .steal_jitter(seed)
                    .build()
                    .unwrap();
                let out: Vec<u64> = pool.install(|| {
                    (0u64..2000)
                        .into_par_iter()
                        .flat_map_iter(|i| (0..(i % 17)).map(move |j| i * 100 + j))
                        .collect()
                });
                assert_eq!(out, expected, "width={width} seed={seed:#x}");
            }
        }
    }

    #[test]
    fn current_thread_index_is_none_off_pool_and_some_on_pool() {
        assert_eq!(crate::current_thread_index(), None);
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let indices: Vec<Option<usize>> = pool.install(|| {
            (0u32..64)
                .into_par_iter()
                .map(|_| crate::current_thread_index())
                .collect()
        });
        assert!(indices.iter().all(|idx| matches!(idx, Some(i) if *i < 2)));
    }

    #[test]
    fn install_pins_width_and_restores() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let before = crate::current_num_threads();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), before);
        let out: Vec<u32> = pool.install(|| (0u32..10).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, (1u32..11).collect::<Vec<_>>());
    }
}
