//! Splittable parallel iterators (see the crate docs for the model).

/// A splittable, sequentially-drainable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// The sequential iterator a single part drains into.
    type Seq: Iterator<Item = Self::Item>;

    /// Splits into at most `n` independent parts (in element order).
    fn split_parts(self, n: usize) -> Vec<Self>;

    /// Drains this part sequentially.
    fn seq(self) -> Self::Seq;

    /// Maps each element through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync + Clone,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps elements satisfying `p`.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync + Clone,
    {
        Filter { base: self, p }
    }

    /// Maps each element to a sequential iterator and flattens.
    fn flat_map_iter<II, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> II + Send + Sync + Clone,
        II: IntoIterator,
        II::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Flattens nested iterables.
    fn flatten(self) -> Flatten<Self>
    where
        Self::Item: IntoIterator,
        <Self::Item as IntoIterator>::Item: Send,
    {
        Flatten { base: self }
    }

    /// Per-part sequential fold; yields one accumulator per part
    /// (mirroring `rayon`'s fold-then-reduce shape).
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync + Clone,
        F: Fn(T, Self::Item) -> T + Send + Sync + Clone,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Materializes the iterator, running parts on scoped threads.
    ///
    /// Results are concatenated in part order, so the output equals the
    /// sequential result regardless of thread count.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let threads = crate::current_num_threads();
        if threads <= 1 {
            return self.seq().collect();
        }
        let parts = self.split_parts(threads);
        if parts.len() <= 1 {
            return parts.into_iter().flat_map(|p| p.seq()).collect();
        }
        let buckets: Vec<Vec<Self::Item>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| scope.spawn(move || part.seq().collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        buckets.into_iter().flatten().collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a reference).
    type Item: Send + 'a;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

// ---- sources ----

/// Parallel iterator over an integer range.
#[derive(Debug, Clone)]
pub struct ParRange<T> {
    start: T,
    end: T,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;

            fn split_parts(self, n: usize) -> Vec<Self> {
                let len = (self.end.saturating_sub(self.start)) as usize;
                let n = n.clamp(1, len.max(1));
                let chunk = len.div_ceil(n);
                let mut parts = Vec::with_capacity(n);
                let mut lo = self.start;
                while lo < self.end {
                    let hi = self.end.min(lo + chunk as $t);
                    parts.push(ParRange { start: lo, end: hi });
                    lo = hi;
                }
                if parts.is_empty() {
                    parts.push(self);
                }
                parts
            }

            fn seq(self) -> Self::Seq {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { start: self.start, end: self.end }
            }
        }
    )*};
}
impl_par_range!(u32, u64, usize, i32, i64);

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let len = self.slice.len();
        let n = n.clamp(1, len.max(1));
        let chunk = len.div_ceil(n).max(1);
        self.slice
            .chunks(chunk)
            .map(|slice| ParSlice { slice })
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over an owned vector.
#[derive(Debug)]
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn split_parts(mut self, n: usize) -> Vec<Self> {
        let len = self.items.len();
        let n = n.clamp(1, len.max(1));
        let chunk = len.div_ceil(n).max(1);
        let mut parts = Vec::with_capacity(n);
        while self.items.len() > chunk {
            let rest = self.items.split_off(chunk);
            parts.push(ParVec {
                items: std::mem::replace(&mut self.items, rest),
            });
        }
        parts.push(self);
        parts
    }

    fn seq(self) -> Self::Seq {
        self.items.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

// ---- adapters ----

/// See [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Map { base, f: f.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().map(self.f)
    }
}

/// See [`ParallelIterator::filter`].
#[derive(Debug)]
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync + Clone,
{
    type Item = I::Item;
    type Seq = std::iter::Filter<I::Seq, P>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let p = self.p;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Filter { base, p: p.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().filter(self.p)
    }
}

/// See [`ParallelIterator::flat_map_iter`].
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, II> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> II + Send + Sync + Clone,
    II: IntoIterator,
    II::Item: Send,
{
    type Item = II::Item;
    type Seq = std::iter::FlatMap<I::Seq, II, F>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| FlatMapIter { base, f: f.clone() })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().flat_map(self.f)
    }
}

/// See [`ParallelIterator::flatten`].
#[derive(Debug)]
pub struct Flatten<I> {
    base: I,
}

impl<I> ParallelIterator for Flatten<I>
where
    I: ParallelIterator,
    I::Item: IntoIterator,
    <I::Item as IntoIterator>::Item: Send,
{
    type Item = <I::Item as IntoIterator>::Item;
    type Seq = std::iter::Flatten<I::Seq>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Flatten { base })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        self.base.seq().flatten()
    }
}

/// See [`ParallelIterator::fold`].
#[derive(Debug)]
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, ID, F, T> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Send + Sync + Clone,
    F: Fn(T, I::Item) -> T + Send + Sync + Clone,
{
    type Item = T;
    type Seq = std::iter::Once<T>;

    fn split_parts(self, n: usize) -> Vec<Self> {
        let (identity, fold_op) = (self.identity, self.fold_op);
        self.base
            .split_parts(n)
            .into_iter()
            .map(|base| Fold {
                base,
                identity: identity.clone(),
                fold_op: fold_op.clone(),
            })
            .collect()
    }

    fn seq(self) -> Self::Seq {
        let acc = self.base.seq().fold((self.identity)(), self.fold_op);
        std::iter::once(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<u32> = (0u32..100).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<u32> = (0u32..100).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn slice_filter_flat_map() {
        let data: Vec<i64> = (0..50).collect();
        let par: Vec<i64> = data
            .par_iter()
            .filter(|&&x| x % 2 == 0)
            .flat_map_iter(|&x| vec![x, x + 1])
            .collect();
        let seq: Vec<i64> = data
            .iter()
            .filter(|&&x| x % 2 == 0)
            .flat_map(|&x| vec![x, x + 1])
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn fold_partials_sum_to_total() {
        let partials: Vec<u64> = (0u64..1000)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .collect();
        assert_eq!(partials.iter().sum::<u64>(), (0u64..1000).sum::<u64>());
    }

    #[test]
    fn vec_into_par_flatten() {
        let nested: Vec<Vec<u32>> = (0..20).map(|i| vec![i; 3]).collect();
        let flat: Vec<u32> = nested.clone().into_par_iter().flatten().collect();
        let expected: Vec<u32> = nested.into_iter().flatten().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u32> = (5u32..5).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn install_pins_width_and_restores() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let before = crate::current_num_threads();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), before);
        let out: Vec<u32> = pool.install(|| (0u32..10).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, (1u32..11).collect::<Vec<_>>());
    }
}
