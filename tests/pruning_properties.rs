//! Property tests on the rule-generation + pruning invariants, using
//! randomly generated transaction databases so the rules carry real,
//! internally consistent metrics.

use proptest::prelude::*;

use irma::mine::{fpgrowth, ItemId, Itemset, MinerConfig, TransactionDb};
use irma::rules::{
    generate_rules, prune_rules, KeywordAnalysis, PruneParams, RuleConfig, RuleRole,
};

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..8, 0..8), 20..120)
        .prop_map(|txns| TransactionDb::from_transactions(txns).with_universe(8))
}

fn rules_of(db: &TransactionDb, min_lift: f64) -> Vec<irma::rules::Rule> {
    let frequent = fpgrowth(db, &MinerConfig::with_min_support(0.05));
    generate_rules(&frequent, &RuleConfig::with_min_lift(min_lift))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rule_metrics_consistent_with_db(db in arb_db()) {
        let rules = rules_of(&db, 1.0);
        let n = db.len() as f64;
        for rule in &rules {
            let xy = db.support_count(&rule.itemset()) as f64;
            let x = db.support_count(&rule.antecedent) as f64;
            let y = db.support_count(&rule.consequent) as f64;
            prop_assert!((rule.support - xy / n).abs() < 1e-9);
            prop_assert!((rule.confidence - xy / x).abs() < 1e-9);
            prop_assert!((rule.lift - (xy / x) / (y / n)).abs() < 1e-9);
        }
    }

    #[test]
    fn kept_plus_pruned_equals_relevant(db in arb_db(), keyword in 0u32..8) {
        let rules = rules_of(&db, 1.0);
        let out = prune_rules(&rules, keyword as ItemId, &PruneParams::default());
        let relevant = rules
            .iter()
            .filter(|r| r.contains(keyword))
            .count();
        prop_assert_eq!(out.kept.len() + out.pruned.len(), relevant);
        // No rule appears in both lists.
        for kept in &out.kept {
            prop_assert!(!out.pruned.iter().any(|p| p.rule == *kept));
        }
        // Every kept rule contains the keyword.
        for kept in &out.kept {
            prop_assert!(kept.contains(keyword));
        }
    }

    #[test]
    fn pruning_is_idempotent(db in arb_db(), keyword in 0u32..8) {
        let rules = rules_of(&db, 1.0);
        let params = PruneParams::default();
        let once = prune_rules(&rules, keyword as ItemId, &params);
        let twice = prune_rules(&once.kept, keyword as ItemId, &params);
        prop_assert_eq!(&once.kept, &twice.kept, "second pass pruned more");
        prop_assert!(twice.pruned.is_empty());
    }

    #[test]
    fn pruning_is_deterministic(db in arb_db(), keyword in 0u32..8) {
        let rules = rules_of(&db, 1.0);
        let a = prune_rules(&rules, keyword as ItemId, &PruneParams::default());
        let mut shuffled = rules.clone();
        shuffled.reverse();
        let b = prune_rules(&shuffled, keyword as ItemId, &PruneParams::default());
        prop_assert_eq!(a.kept, b.kept, "input order changed the outcome");
    }

    #[test]
    fn higher_lift_floor_never_adds_rules(db in arb_db()) {
        let low = rules_of(&db, 1.0);
        let high = rules_of(&db, 2.0);
        prop_assert!(high.len() <= low.len());
        for rule in &high {
            prop_assert!(low.contains(rule));
        }
    }

    #[test]
    fn keyword_analysis_partitions_by_role(db in arb_db(), keyword in 0u32..8) {
        let rules = rules_of(&db, 1.0);
        let analysis = KeywordAnalysis::run(&rules, keyword as ItemId, &PruneParams::default());
        for rule in &analysis.causes {
            prop_assert_eq!(rule.role(keyword as ItemId), RuleRole::Cause);
        }
        for rule in &analysis.characteristics {
            prop_assert_eq!(rule.role(keyword as ItemId), RuleRole::Characteristic);
        }
        prop_assert_eq!(
            analysis.n_kept(),
            analysis.causes.len() + analysis.characteristics.len()
        );
    }

    #[test]
    fn rule_sides_partition_their_itemset(db in arb_db()) {
        let rules = rules_of(&db, 1.0);
        for rule in &rules {
            let union = rule.antecedent.union(&rule.consequent);
            prop_assert_eq!(union.len(), rule.len());
            prop_assert!(rule.antecedent.is_disjoint_from(&rule.consequent));
            prop_assert!(rule.itemset() == union);
            prop_assert!(rule.itemset().len() <= 5, "max itemset length");
            let _ = Itemset::from_items(rule.itemset().items().iter().copied());
        }
    }
}
