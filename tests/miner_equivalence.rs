//! Cross-miner equivalence on *real* encoded traces (not just synthetic
//! micro-databases): FP-Growth, Apriori, and Eclat must produce the same
//! frequent-itemset family — and therefore the same rules — on the actual
//! workload the paper mines.

use irma::core::{philly_spec, supercloud_spec};
use irma::mine::{apriori, eclat, fpgrowth, MinerConfig};
use irma::prep::encode;
use irma::synth::{philly, supercloud, TraceConfig};

#[test]
fn miners_agree_on_supercloud_trace() {
    let bundle = supercloud(&TraceConfig {
        n_jobs: 3_000,
        seed: 99,
        max_monitor_samples: 32,
    });
    let encoded = encode(&bundle.merged(), &supercloud_spec());
    for min_support in [0.05, 0.1, 0.25] {
        let config = MinerConfig {
            min_support,
            max_len: 5,
            parallel: true,
        };
        let f = fpgrowth(&encoded.db, &config);
        let a = apriori(&encoded.db, &config);
        let e = eclat(&encoded.db, &config);
        assert_eq!(f.as_slice(), a.as_slice(), "support {min_support}");
        assert_eq!(f.as_slice(), e.as_slice(), "support {min_support}");
        assert!(!f.is_empty());
    }
}

#[test]
fn miners_agree_on_philly_trace_with_length_caps() {
    let bundle = philly(&TraceConfig {
        n_jobs: 3_000,
        seed: 98,
        max_monitor_samples: 32,
    });
    let encoded = encode(&bundle.merged(), &philly_spec());
    for max_len in [1, 2, 3, 5] {
        let config = MinerConfig {
            min_support: 0.05,
            max_len,
            parallel: false,
        };
        let f = fpgrowth(&encoded.db, &config);
        let a = apriori(&encoded.db, &config);
        let e = eclat(&encoded.db, &config);
        assert_eq!(f.as_slice(), a.as_slice(), "max_len {max_len}");
        assert_eq!(f.as_slice(), e.as_slice(), "max_len {max_len}");
        assert!(f.iter().all(|(s, _)| s.len() <= max_len));
    }
}

#[test]
fn spot_check_supports_against_brute_force() {
    let bundle = supercloud(&TraceConfig {
        n_jobs: 2_000,
        seed: 97,
        max_monitor_samples: 32,
    });
    let encoded = encode(&bundle.merged(), &supercloud_spec());
    let frequent = fpgrowth(&encoded.db, &MinerConfig::with_min_support(0.1));
    // Verify every 10th itemset by full scan (all would be slow in debug).
    for (set, count) in frequent.iter().step_by(10) {
        assert_eq!(*count, encoded.db.support_count(set), "itemset {set}");
    }
}
