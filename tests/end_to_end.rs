//! End-to-end integration: generate a trace, round-trip it through CSV
//! files on disk, re-join, and mine — the full operator workflow across
//! every crate boundary.

use irma::core::{analyze, supercloud_spec, AnalysisConfig, KW_SM_ZERO};
use irma::data::{inner_join, read_csv_path, write_csv_path};
use irma::synth::{supercloud, TraceConfig};

#[test]
fn csv_round_trip_preserves_analysis() {
    let config = TraceConfig {
        n_jobs: 3_000,
        seed: 77,
        max_monitor_samples: 32,
    };
    let bundle = supercloud(&config);

    // Analysis directly from the in-memory merge.
    let direct = analyze(
        &bundle.merged(),
        &supercloud_spec(),
        &AnalysisConfig::default(),
    );

    // Analysis after writing both collection-level files to disk and
    // reading them back.
    let dir = std::env::temp_dir().join(format!("irma_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sched_path = dir.join("scheduler.csv");
    let mon_path = dir.join("monitoring.csv");
    write_csv_path(&bundle.scheduler, &sched_path).unwrap();
    write_csv_path(&bundle.monitoring, &mon_path).unwrap();
    let sched = read_csv_path(&sched_path).unwrap();
    let mon = read_csv_path(&mon_path).unwrap();
    let merged = inner_join(&sched, &mon, "job_id").unwrap();
    let from_disk = analyze(&merged, &supercloud_spec(), &AnalysisConfig::default());
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(direct.n_jobs(), from_disk.n_jobs());
    assert_eq!(
        direct.encoded.catalog.len(),
        from_disk.encoded.catalog.len()
    );
    assert_eq!(direct.frequent.len(), from_disk.frequent.len());
    assert_eq!(direct.rules.len(), from_disk.rules.len());

    // The flagship keyword analysis is identical rule-for-rule.
    let a = direct.keyword(KW_SM_ZERO).unwrap();
    let b = from_disk.keyword(KW_SM_ZERO).unwrap();
    assert_eq!(a.causes.len(), b.causes.len());
    assert_eq!(a.characteristics.len(), b.characteristics.len());
    for (x, y) in a.causes.iter().zip(&b.causes) {
        assert_eq!(x.antecedent, y.antecedent);
        assert_eq!(x.consequent, y.consequent);
        assert!((x.lift - y.lift).abs() < 1e-9);
    }
}

#[test]
fn same_seed_same_rules_different_seed_different_trace() {
    let mk = |seed| {
        let bundle = supercloud(&TraceConfig {
            n_jobs: 1_500,
            seed,
            max_monitor_samples: 32,
        });
        analyze(
            &bundle.merged(),
            &supercloud_spec(),
            &AnalysisConfig::default(),
        )
    };
    let a = mk(1);
    let b = mk(1);
    let c = mk(2);
    assert_eq!(a.rules.len(), b.rules.len());
    assert_eq!(a.frequent.len(), b.frequent.len());
    // Different seeds shuffle supports; identical rule sets would signal a
    // seeding bug.
    assert!(
        a.frequent.len() != c.frequent.len() || a.rules.len() != c.rules.len() || {
            let ra = &a.rules[0];
            let rc = &c.rules[0];
            (ra.support - rc.support).abs() > 1e-12
        },
        "seeds 1 and 2 produced identical analyses"
    );
}
