//! Acceptance tests for the paper-shape criteria in DESIGN.md §5: the
//! reproduced tables and figures must match the paper's qualitative
//! results (who wins, orderings, factor-level magnitudes), not its exact
//! numbers.

use irma::core::experiments::{
    failed_share, fig1, fig3, fig4, fig5, misc_tables, rule_table, zero_sm_share,
};
use irma::core::{
    prepare_all, AnalysisConfig, ExperimentScale, TraceAnalysis, KW_FAILED, KW_SM_ZERO,
};
use irma::rules::RuleRole;

fn traces() -> [TraceAnalysis; 3] {
    let scale = ExperimentScale {
        pai_jobs: 8_000,
        supercloud_jobs: 4_000,
        philly_jobs: 4_000,
        seed: 0xdcc0,
    };
    prepare_all(&scale, &AnalysisConfig::default())
}

fn by_name<'a>(traces: &'a [TraceAnalysis], name: &str) -> &'a TraceAnalysis {
    traces.iter().find(|t| t.name == name).expect("trace")
}

#[test]
fn fig4_zero_sm_shares_match_paper_bands() {
    let traces = traces();
    // Paper: 46% / 10% / 35%.
    let pai = zero_sm_share(by_name(&traces, "pai"));
    let sc = zero_sm_share(by_name(&traces, "supercloud"));
    let ph = zero_sm_share(by_name(&traces, "philly"));
    assert!((0.36..=0.56).contains(&pai), "pai {pai}");
    assert!((0.05..=0.18).contains(&sc), "supercloud {sc}");
    assert!((0.25..=0.45).contains(&ph), "philly {ph}");
    assert!(pai > ph && ph > sc, "ordering must be PAI > Philly > SC");
    // And fig4 itself reports the same shares.
    let f = fig4(&traces);
    for (name, zero, cdf) in &f.rows {
        assert!(*zero > 0.0 && !cdf.is_empty(), "{name} empty");
    }
}

#[test]
fn fig5_failure_exceeds_13pct_everywhere_pai_highest() {
    let traces = traces();
    let shares: Vec<(String, f64)> = traces
        .iter()
        .map(|t| (t.name.to_string(), failed_share(t)))
        .collect();
    for (name, share) in &shares {
        assert!(*share > 0.13, "{name} failed share {share}");
    }
    let pai = shares.iter().find(|(n, _)| n == "pai").unwrap().1;
    assert!(
        shares.iter().all(|(n, s)| n == "pai" || *s < pai),
        "PAI must have the highest failure rate: {shares:?}"
    );
    // Killed label exists only in SuperCloud and Philly.
    let f = fig5(&traces);
    let has_killed = |name: &str| {
        f.rows
            .iter()
            .find(|(n, _)| n == name)
            .unwrap()
            .1
            .iter()
            .any(|(s, _)| s.to_lowercase().contains("kill"))
    };
    assert!(!has_killed("pai"));
    assert!(has_killed("supercloud"));
    assert!(has_killed("philly"));
}

#[test]
fn fig1_itemset_counts_ordered_and_monotone() {
    let traces = traces();
    let f = fig1(&traces, &[0.05, 0.1, 0.3]);
    let at_5pct = |name: &str| {
        f.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c[0])
            .unwrap()
    };
    // Paper Fig. 1: PAI has by far the most itemsets; all > 0 at 5%.
    assert!(at_5pct("pai") > 2 * at_5pct("philly"));
    assert!(at_5pct("supercloud") > at_5pct("philly"));
    for (_, counts) in &f.series {
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }
}

#[test]
fn fig3_pruning_reduces_by_large_factor() {
    let traces = traces();
    let f = fig3(&traces);
    assert!(
        f.before as f64 / f.after.max(1) as f64 >= 4.0,
        "pruning reduced {} -> {} (< 4x)",
        f.before,
        f.after
    );
}

#[test]
fn table2_pai_underutilization_rule_families() {
    let traces = traces();
    let pai = by_name(&traces, "pai");
    let kw = pai.analysis.keyword(KW_SM_ZERO).expect("keyword");
    let catalog = &pai.analysis.encoded.catalog;
    let cause_antecedents: Vec<String> = kw
        .causes
        .iter()
        .map(|r| catalog.render(&r.antecedent))
        .collect();
    // Paper Table II cause families: low GPU request / low memory used /
    // low CPU + short runtime style antecedents.
    for needle in ["GMem Used", "Memory Used = Bin1"] {
        assert!(
            cause_antecedents.iter().any(|a| a.contains(needle)),
            "no cause rule mentioning {needle}: {cause_antecedents:?}"
        );
    }
    // Characteristic rules bind idle jobs to the low-customization
    // submission profile (std requests / unspecified GPU / Tensorflow /
    // frequent user).
    let characteristic_text: String = kw
        .characteristics
        .iter()
        .map(|r| {
            format!(
                "{} => {}\n",
                catalog.render(&r.antecedent),
                catalog.render(&r.consequent)
            )
        })
        .collect();
    for needle in ["Freq User", "GPU Type = None"] {
        assert!(
            characteristic_text.contains(needle),
            "characteristics never mention {needle}:\n{characteristic_text}"
        );
    }
}

#[test]
fn table5_pai_failure_rules_have_high_confidence() {
    let traces = traces();
    let pai = by_name(&traces, "pai");
    let kw = pai.analysis.keyword(KW_FAILED).expect("keyword");
    // Paper: multiple strong (conf ~0.9) submission-time failure
    // predictors exist in PAI — "a simple rule-based classifier suffices".
    let strong = kw.causes.iter().filter(|r| r.confidence >= 0.85).count();
    assert!(strong >= 3, "only {strong} high-confidence failure causes");
    // Freq Group–based rules are among them (Table V C1-C3).
    let catalog = &pai.analysis.encoded.catalog;
    assert!(kw
        .causes
        .iter()
        .any(|r| catalog.render(&r.antecedent).contains("Freq Group") && r.confidence > 0.8));
}

#[test]
fn table7_philly_multi_gpu_and_new_users_fail_more() {
    let traces = traces();
    let ph = by_name(&traces, "philly");
    let kw = ph.analysis.keyword(KW_FAILED).expect("keyword");
    let catalog = &ph.analysis.encoded.catalog;
    // Paper Table VII: lift ~2.5 for both Multi-GPU and New User causes.
    // Depending on pruning those antecedents may appear in cause or
    // characteristic direction; check the full kept set.
    let all: Vec<_> = kw.causes.iter().chain(kw.characteristics.iter()).collect();
    let mentions = |needle: &str| {
        all.iter().any(|r| {
            (catalog.render(&r.antecedent).contains(needle)
                || catalog.render(&r.consequent).contains(needle))
                && r.lift >= 1.5
        })
    };
    assert!(mentions("Multi-GPU"), "no multi-GPU failure rule");
    assert!(mentions("New User"), "no new-user failure rule");
    // Long-running failures exist (Table VII A2: Failed => Runtime Bin4).
    assert!(
        kw.characteristics.iter().any(|r| {
            r.role(ph.analysis.item(KW_FAILED).unwrap()) == RuleRole::Characteristic
                && catalog.render(&r.consequent).contains("Runtime = Bin4")
        }),
        "no long-runtime failure characteristic"
    );
}

#[test]
fn table8_queue_rules_opposite_for_t4_and_non_t4() {
    let traces = traces();
    let pai = by_name(&traces, "pai");
    let catalog = &pai.analysis.encoded.catalog;
    let consequent_text = |keyword: &str| -> String {
        pai.analysis
            .keyword(keyword)
            .map(|kw| {
                kw.characteristics
                    .iter()
                    .map(|r| catalog.render(&r.consequent))
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .unwrap_or_default()
    };
    let t4 = consequent_text("GPU Type = T4");
    let non_t4 = consequent_text("GPU Type = NonT4");
    // Paper PAI1/PAI2: T4 jobs wait the least, non-T4 the most.
    assert!(t4.contains("Queue = Bin1"), "T4 characteristics:\n{t4}");
    assert!(
        non_t4.contains("Queue = Bin4"),
        "NonT4 characteristics:\n{non_t4}"
    );
    assert!(!t4.contains("Queue = Bin4"));
}

#[test]
fn table8_misc_rule_sections_present() {
    let traces = traces();
    let tables = misc_tables(&traces);
    assert!(tables.len() >= 5, "expected all Table VIII sections");
    for table in &tables {
        assert!(!table.rows.is_empty(), "{} produced no rules", table.title);
    }
}

#[test]
fn rule_table_top_parameter_caps_rows() {
    let traces = traces();
    let pai = by_name(&traces, "pai");
    let t = rule_table(pai, "t", KW_SM_ZERO, 2);
    let causes = t
        .rows
        .iter()
        .filter(|(tag, ..)| tag.starts_with('C'))
        .count();
    let chars = t
        .rows
        .iter()
        .filter(|(tag, ..)| tag.starts_with('A'))
        .count();
    assert!(causes <= 2 && chars <= 2);
}
