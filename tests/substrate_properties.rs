//! Property tests for the substrates: scheduler simulator invariants,
//! sliding-window/batch mining agreement, and closed-itemset losslessness
//! on random databases.

use proptest::prelude::*;

use irma::mine::{
    closed_itemsets, fpgrowth, maximal_itemsets, support_from_closed, MinerConfig,
    SlidingWindowMiner, TransactionDb,
};
use irma::synth::sched::{simulate_queue, GpuPool, SchedRequest};

fn arb_requests(max_pool: usize) -> impl Strategy<Value = Vec<SchedRequest>> {
    prop::collection::vec(
        (0..max_pool, 0.0f64..10_000.0, 1.0f64..5_000.0, 1u64..6).prop_map(
            |(pool, arrival_s, service_s, gpus)| SchedRequest {
                pool,
                arrival_s,
                service_s,
                gpus,
            },
        ),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn queue_waits_nonnegative_and_finite(reqs in arb_requests(2)) {
        let pools = vec![
            GpuPool { name: "a".into(), capacity: 4 },
            GpuPool { name: "b".into(), capacity: 2 },
        ];
        let waits = simulate_queue(&pools, &reqs);
        prop_assert_eq!(waits.len(), reqs.len());
        for &w in &waits {
            prop_assert!(w.is_finite() && w >= 0.0);
        }
    }

    #[test]
    fn infinite_capacity_means_no_waiting(reqs in arb_requests(1)) {
        let pools = vec![GpuPool { name: "big".into(), capacity: 1_000_000 }];
        let waits = simulate_queue(&pools, &reqs);
        prop_assert!(waits.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn fcfs_starts_in_arrival_order_per_pool(reqs in arb_requests(1)) {
        // Strict FCFS with head-of-line blocking: start times within a
        // pool are non-decreasing in arrival order.
        let pools = vec![GpuPool { name: "p".into(), capacity: 3 }];
        let waits = simulate_queue(&pools, &reqs);
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_by(|&a, &b| reqs[a].arrival_s.total_cmp(&reqs[b].arrival_s));
        let starts: Vec<f64> = order
            .iter()
            .map(|&i| reqs[i].arrival_s + waits[i])
            .collect();
        for w in starts.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9, "starts out of order: {starts:?}");
        }
    }

    #[test]
    fn more_capacity_never_increases_total_wait(reqs in arb_requests(1)) {
        let wait_sum = |capacity: u64| -> f64 {
            let pools = vec![GpuPool { name: "p".into(), capacity }];
            simulate_queue(&pools, &reqs).iter().sum()
        };
        // Strict FCFS is not work-conserving pairwise, but doubling
        // capacity several times must eventually reach zero waiting.
        prop_assert!(wait_sum(1_000_000) <= wait_sum(2) + 1e-9);
        prop_assert_eq!(wait_sum(1_000_000), 0.0);
    }

    #[test]
    fn sliding_window_matches_batch(
        txns in prop::collection::vec(prop::collection::vec(0u32..6, 0..5), 1..50),
        capacity in 1usize..20,
    ) {
        let mut miner = SlidingWindowMiner::new(capacity, MinerConfig::with_min_support(0.3));
        for txn in &txns {
            miner.push(txn.iter().copied());
        }
        let streamed = miner.mine();
        let window: Vec<Vec<u32>> = txns
            .iter()
            .rev()
            .take(capacity)
            .rev()
            .cloned()
            .collect();
        let batch_db = TransactionDb::from_transactions(window)
            .with_universe(miner.snapshot().n_items());
        let batch = fpgrowth(&batch_db, &MinerConfig::with_min_support(0.3));
        prop_assert_eq!(streamed.as_slice(), batch.as_slice());
    }

    #[test]
    fn closure_is_lossless_on_random_dbs(
        txns in prop::collection::vec(prop::collection::vec(0u32..7, 0..6), 1..40),
        min_support in 0.1f64..0.9,
    ) {
        let db = TransactionDb::from_transactions(txns);
        let frequent = fpgrowth(&db, &MinerConfig::with_min_support(min_support));
        let closed = closed_itemsets(&frequent);
        let maximal = maximal_itemsets(&frequent);
        prop_assert!(maximal.len() <= closed.len());
        prop_assert!(closed.len() <= frequent.len());
        for m in &maximal {
            prop_assert!(closed.contains(m));
        }
        for (set, count) in frequent.iter() {
            prop_assert_eq!(support_from_closed(&closed, set), Some(*count));
        }
    }
}
