//! Rule generation from the frequent-itemset lattice.
//!
//! Every frequent itemset Z of length >= 2 yields candidate rules X => Z\X
//! for each non-empty proper subset X of Z. Because every subset of a
//! frequent itemset is itself frequent (downward closure), all three counts
//! a rule needs — σ(Z), σ(X), σ(Z\X) — resolve with O(1) lookups into the
//! mined family; no database rescans. Itemsets are processed in parallel
//! with rayon (each is independent).

use irma_obs::{GenFilter, Metrics, Provenance};
use rayon::prelude::*;

use irma_mine::FrequentItemsets;

use crate::rule::Rule;

/// Thresholds applied at rule-generation time.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfig {
    /// Minimum lift for a rule to be kept. The paper uses 1.5 — "50% more
    /// likely to appear together than expected under independence" (§III-D).
    pub min_lift: f64,
    /// Optional minimum confidence (the paper relies on lift alone; case
    /// studies report confidence but do not threshold it).
    pub min_confidence: f64,
    /// Optional minimum support for the whole rule.
    pub min_support: f64,
}

impl Default for RuleConfig {
    fn default() -> RuleConfig {
        RuleConfig {
            min_lift: 1.5,
            min_confidence: 0.0,
            min_support: 0.0,
        }
    }
}

impl RuleConfig {
    /// Config with only a lift floor.
    pub fn with_min_lift(min_lift: f64) -> RuleConfig {
        RuleConfig {
            min_lift,
            ..RuleConfig::default()
        }
    }
}

/// Generates all rules meeting `config` from a mined itemset family.
///
/// Output is deterministic: sorted by antecedent, then consequent.
pub fn generate_rules(frequent: &FrequentItemsets, config: &RuleConfig) -> Vec<Rule> {
    generate_rules_with(frequent, config, &Metrics::disabled())
}

/// [`generate_rules`] with observability: emits a `rules.generate` stage
/// event (itemsets in, rule-bearing itemsets, rules out) into `metrics`.
pub fn generate_rules_with(
    frequent: &FrequentItemsets,
    config: &RuleConfig,
    metrics: &Metrics,
) -> Vec<Rule> {
    generate_rules_traced(frequent, config, metrics, &Provenance::disabled())
}

/// [`generate_rules_with`] plus per-candidate lineage: every candidate
/// rule lands in `provenance` — either as a survivor or tagged with the
/// first threshold (`lift`, `confidence`, `support`) that dropped it.
pub fn generate_rules_traced(
    frequent: &FrequentItemsets,
    config: &RuleConfig,
    metrics: &Metrics,
    provenance: &Provenance,
) -> Vec<Rule> {
    let mut span = metrics.span("rules.generate");
    let rules = generate_rules_inner(frequent, config, provenance);
    span.field("itemsets_in", frequent.len() as u64);
    span.field(
        "candidate_itemsets",
        frequent.iter().filter(|(s, _)| s.len() >= 2).count() as u64,
    );
    span.field("rules_out", rules.len() as u64);
    rules
}

/// Which generation threshold (if any) rejects `rule`, checked in the
/// order the filter short-circuits.
fn gen_filter(rule: &Rule, config: &RuleConfig) -> Option<GenFilter> {
    if rule.lift < config.min_lift {
        Some(GenFilter {
            metric: "lift",
            value: rule.lift,
            threshold: config.min_lift,
        })
    } else if rule.confidence < config.min_confidence {
        Some(GenFilter {
            metric: "confidence",
            value: rule.confidence,
            threshold: config.min_confidence,
        })
    } else if rule.support < config.min_support {
        Some(GenFilter {
            metric: "support",
            value: rule.support,
            threshold: config.min_support,
        })
    } else {
        None
    }
}

fn generate_rules_inner(
    frequent: &FrequentItemsets,
    config: &RuleConfig,
    provenance: &Provenance,
) -> Vec<Rule> {
    let n = frequent.n_transactions();
    let mut rules: Vec<Rule> = frequent
        .as_slice()
        .par_iter()
        .filter(|(set, _)| set.len() >= 2)
        .flat_map_iter(|(set, xy_count)| {
            let mut local = Vec::new();
            for antecedent in set.proper_subsets() {
                let consequent = set.difference(&antecedent);
                let x_count = frequent
                    .count(&antecedent)
                    .expect("downward closure: antecedent must be frequent");
                let y_count = frequent
                    .count(&consequent)
                    .expect("downward closure: consequent must be frequent");
                let rule =
                    Rule::from_counts(antecedent, consequent, *xy_count, x_count, y_count, n);
                let filtered = gen_filter(&rule, config);
                if provenance.is_enabled() {
                    provenance.record_candidate(rule.provenance_info(), filtered);
                }
                if filtered.is_none() {
                    local.push(rule);
                }
            }
            local
        })
        .collect();
    rules.sort_unstable_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::{fpgrowth, MinerConfig, TransactionDb};

    /// 0 and 1 co-occur strongly; 2 is independent noise.
    fn db() -> TransactionDb {
        let mut txns = Vec::new();
        for i in 0..40 {
            if i < 16 {
                txns.push(vec![0, 1]); // joint
            } else if i < 24 {
                txns.push(vec![0]);
            } else if i < 28 {
                txns.push(vec![1]);
            } else {
                txns.push(vec![2]);
            }
        }
        TransactionDb::from_transactions(txns)
    }

    fn mined() -> FrequentItemsets {
        fpgrowth(&db(), &MinerConfig::with_min_support(0.05))
    }

    #[test]
    fn generates_both_directions() {
        let rules = generate_rules(&mined(), &RuleConfig::with_min_lift(1.0));
        // {0}=>{1} and {1}=>{0} both pass lift >= 1.
        assert!(rules.iter().any(|r| r.antecedent.items() == [0]));
        assert!(rules.iter().any(|r| r.antecedent.items() == [1]));
    }

    #[test]
    fn metrics_are_exact() {
        let rules = generate_rules(&mined(), &RuleConfig::with_min_lift(0.0));
        let r = rules
            .iter()
            .find(|r| r.antecedent.items() == [0] && r.consequent.items() == [1])
            .expect("rule {0}=>{1}");
        // sigma(01)=16, sigma(0)=24, sigma(1)=20, N=40.
        assert!((r.support - 0.4).abs() < 1e-12);
        assert!((r.confidence - 16.0 / 24.0).abs() < 1e-12);
        assert!((r.lift - (16.0 / 24.0) / 0.5).abs() < 1e-12);
    }

    #[test]
    fn lift_threshold_filters() {
        // Both {0}=>{1} and {1}=>{0} have lift 4/3; a threshold between
        // passes them, a higher one removes them.
        let all = generate_rules(&mined(), &RuleConfig::with_min_lift(1.3));
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|r| r.lift >= 1.3));
        let strict = generate_rules(&mined(), &RuleConfig::with_min_lift(1.34));
        assert!(strict.is_empty());
    }

    #[test]
    fn confidence_threshold_filters() {
        let config = RuleConfig {
            min_lift: 0.0,
            min_confidence: 0.7,
            min_support: 0.0,
        };
        let rules = generate_rules(&mined(), &config);
        assert!(rules.iter().all(|r| r.confidence >= 0.7));
        assert!(!rules.is_empty());
    }

    #[test]
    fn sides_always_disjoint_and_nonempty() {
        let rules = generate_rules(&mined(), &RuleConfig::with_min_lift(0.0));
        for r in &rules {
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            assert!(r.antecedent.is_disjoint_from(&r.consequent));
        }
    }

    #[test]
    fn deterministic_order() {
        let a = generate_rules(&mined(), &RuleConfig::with_min_lift(0.0));
        let b = generate_rules(&mined(), &RuleConfig::with_min_lift(0.0));
        assert_eq!(a, b);
    }
}
