//! Cross-analysis rule comparison.
//!
//! §IV-A argues that rule *metrics* are not quantitatively comparable
//! across traces, but operators still ask which rule families show up in
//! which cluster (e.g. "low CPU + short runtime ⇒ idle GPU appears in all
//! three"). Item ids are catalog-local, so comparison happens on label
//! strings: two rules match when their antecedent and consequent label
//! sets are equal.

use std::collections::HashMap;

use irma_mine::ItemCatalog;

use crate::rule::Rule;

/// A rule projected onto label strings (catalog-independent).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledRule {
    /// Sorted antecedent labels.
    pub antecedent: Vec<String>,
    /// Sorted consequent labels.
    pub consequent: Vec<String>,
    /// supp(X ⇒ Y).
    pub support: f64,
    /// conf(X ⇒ Y).
    pub confidence: f64,
    /// lift(X ⇒ Y).
    pub lift: f64,
}

impl LabeledRule {
    /// The match key (both label sets).
    fn key(&self) -> (Vec<String>, Vec<String>) {
        (self.antecedent.clone(), self.consequent.clone())
    }

    /// Renders as `{a, b} => {c}`.
    pub fn render(&self) -> String {
        format!(
            "{{{}}} => {{{}}}",
            self.antecedent.join(", "),
            self.consequent.join(", ")
        )
    }
}

/// Projects rules onto their labels.
pub fn label_rules(rules: &[Rule], catalog: &ItemCatalog) -> Vec<LabeledRule> {
    rules
        .iter()
        .map(|r| {
            let labels = |items: &irma_mine::Itemset| {
                let mut v: Vec<String> = items
                    .items()
                    .iter()
                    .map(|&i| catalog.label(i).to_string())
                    .collect();
                v.sort();
                v
            };
            LabeledRule {
                antecedent: labels(&r.antecedent),
                consequent: labels(&r.consequent),
                support: r.support,
                confidence: r.confidence,
                lift: r.lift,
            }
        })
        .collect()
}

/// Outcome of comparing two rule sets.
#[derive(Debug, Clone, Default)]
pub struct RuleComparison {
    /// Rules present in both sets (left metrics, right metrics).
    pub common: Vec<(LabeledRule, LabeledRule)>,
    /// Rules only in the left set.
    pub only_left: Vec<LabeledRule>,
    /// Rules only in the right set.
    pub only_right: Vec<LabeledRule>,
}

impl RuleComparison {
    /// Jaccard similarity of the two rule-family sets.
    pub fn jaccard(&self) -> f64 {
        let union = self.common.len() + self.only_left.len() + self.only_right.len();
        if union == 0 {
            1.0
        } else {
            self.common.len() as f64 / union as f64
        }
    }
}

/// Compares two analyses' rules by label identity.
pub fn compare_rules(
    left: &[Rule],
    left_catalog: &ItemCatalog,
    right: &[Rule],
    right_catalog: &ItemCatalog,
) -> RuleComparison {
    let left_labeled = label_rules(left, left_catalog);
    let right_labeled = label_rules(right, right_catalog);
    let mut right_index: HashMap<(Vec<String>, Vec<String>), LabeledRule> =
        right_labeled.iter().map(|r| (r.key(), r.clone())).collect();
    let mut comparison = RuleComparison::default();
    for l in left_labeled {
        match right_index.remove(&l.key()) {
            Some(r) => comparison.common.push((l, r)),
            None => comparison.only_left.push(l),
        }
    }
    let mut leftovers: Vec<LabeledRule> = right_index.into_values().collect();
    leftovers.sort_by_key(|a| a.key());
    comparison.only_right = leftovers;
    comparison
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::Itemset;

    fn catalog(labels: &[&str]) -> ItemCatalog {
        let mut c = ItemCatalog::new();
        for l in labels {
            c.intern(l);
        }
        c
    }

    fn rule(ante: &[u32], cons: &[u32], lift: f64) -> Rule {
        Rule {
            antecedent: Itemset::from_items(ante.iter().copied()),
            consequent: Itemset::from_items(cons.iter().copied()),
            support_count: 10,
            support: 0.1,
            confidence: 0.5,
            lift,
        }
    }

    #[test]
    fn matches_across_different_catalogs() {
        // Same labels, different interning order / ids.
        let left_cat = catalog(&["CPU Util = Bin1", "SM Util = 0%", "Failed"]);
        let right_cat = catalog(&["Failed", "SM Util = 0%", "CPU Util = Bin1"]);
        let left = vec![
            rule(&[0], &[1], 2.0), // {CPU Bin1} => {SM 0%}
            rule(&[2], &[1], 3.0), // {Failed} => {SM 0%}: left-only
        ];
        let right = vec![
            rule(&[2], &[1], 2.5), // {CPU Bin1} => {SM 0%} (right ids!)
            rule(&[0], &[2], 4.0), // {Failed} => {CPU Bin1}: right-only
        ];
        let cmp = compare_rules(&left, &left_cat, &right, &right_cat);
        assert_eq!(cmp.common.len(), 1);
        assert_eq!(
            cmp.common[0].0.render(),
            "{CPU Util = Bin1} => {SM Util = 0%}"
        );
        assert!((cmp.common[0].0.lift - 2.0).abs() < 1e-12);
        assert!((cmp.common[0].1.lift - 2.5).abs() < 1e-12);
        assert_eq!(cmp.only_left.len(), 1);
        assert_eq!(cmp.only_right.len(), 1);
        assert!((cmp.jaccard() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let cat = catalog(&["a", "b"]);
        let rules = vec![rule(&[0], &[1], 2.0)];
        let cmp = compare_rules(&rules, &cat, &rules, &cat);
        assert_eq!(cmp.common.len(), 1);
        assert!(cmp.only_left.is_empty() && cmp.only_right.is_empty());
        assert_eq!(cmp.jaccard(), 1.0);
    }

    #[test]
    fn empty_sets() {
        let cat = catalog(&["a"]);
        let cmp = compare_rules(&[], &cat, &[], &cat);
        assert_eq!(cmp.jaccard(), 1.0);
        let one = vec![rule(&[0], &[0], 1.0)];
        // NB: antecedent/consequent share the item only because this is a
        // hand-built test rule; real rules are disjoint.
        let cmp = compare_rules(&one, &cat, &[], &cat);
        assert_eq!(cmp.jaccard(), 0.0);
        assert_eq!(cmp.only_left.len(), 1);
    }
}
