//! Association rules and their quality metrics.

use std::fmt;

use irma_mine::{ItemCatalog, ItemId, Itemset};

/// An association rule `antecedent => consequent` with its metrics.
///
/// Metrics follow §III-B of the paper:
/// * `support`    — P(X, Y), fraction of transactions containing both sides;
/// * `confidence` — P(Y | X);
/// * `lift`       — P(X, Y) / (P(X) · P(Y)); 1.0 means independence.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side X (never empty, disjoint from `consequent`).
    pub antecedent: Itemset,
    /// Right-hand side Y (never empty).
    pub consequent: Itemset,
    /// Absolute transaction count of X ∪ Y.
    pub support_count: u64,
    /// supp(X ⇒ Y) ∈ [0, 1].
    pub support: f64,
    /// conf(X ⇒ Y) ∈ [0, 1].
    pub confidence: f64,
    /// lift(X ⇒ Y) ∈ [0, ∞).
    pub lift: f64,
}

impl Rule {
    /// Computes a rule's metrics from raw counts.
    ///
    /// `xy_count`, `x_count`, `y_count` are the support counts of X ∪ Y,
    /// X, and Y respectively over `n_transactions` transactions.
    pub fn from_counts(
        antecedent: Itemset,
        consequent: Itemset,
        xy_count: u64,
        x_count: u64,
        y_count: u64,
        n_transactions: usize,
    ) -> Rule {
        debug_assert!(!antecedent.is_empty() && !consequent.is_empty());
        debug_assert!(antecedent.is_disjoint_from(&consequent));
        debug_assert!(xy_count <= x_count && xy_count <= y_count);
        let n = n_transactions.max(1) as f64;
        let support = xy_count as f64 / n;
        let confidence = if x_count == 0 {
            0.0
        } else {
            xy_count as f64 / x_count as f64
        };
        let supp_y = y_count as f64 / n;
        let lift = if supp_y == 0.0 {
            0.0
        } else {
            confidence / supp_y
        };
        Rule {
            antecedent,
            consequent,
            support_count: xy_count,
            support,
            confidence,
            lift,
        }
    }

    /// The full itemset X ∪ Y this rule was generated from.
    pub fn itemset(&self) -> Itemset {
        self.antecedent.union(&self.consequent)
    }

    /// Support of the antecedent alone, `P(X)`, recovered from the stored
    /// metrics (`supp / conf`).
    pub fn antecedent_support(&self) -> f64 {
        if self.confidence == 0.0 {
            0.0
        } else {
            self.support / self.confidence
        }
    }

    /// Support of the consequent alone, `P(Y)`, recovered from the stored
    /// metrics (`conf / lift`).
    pub fn consequent_support(&self) -> f64 {
        if self.lift == 0.0 {
            0.0
        } else {
            self.confidence / self.lift
        }
    }

    /// Leverage (a.k.a. Piatetsky-Shapiro): `P(X,Y) - P(X)·P(Y)`, the
    /// absolute co-occurrence excess over independence, in `[-0.25, 0.25]`.
    ///
    /// Complements lift: lift is a *ratio* and explodes on rare itemsets;
    /// leverage weights the same dependence by how much traffic it covers.
    pub fn leverage(&self) -> f64 {
        if self.lift == 0.0 {
            0.0
        } else {
            self.support * (1.0 - 1.0 / self.lift)
        }
    }

    /// Conviction: `(1 - P(Y)) / (1 - conf)`, in `[0, ∞]`.
    ///
    /// Measures how much more often X would occur without Y if they were
    /// independent; 1.0 means independence, `inf` means the rule never
    /// misfires (confidence 1).
    pub fn conviction(&self) -> f64 {
        let supp_y = self.consequent_support();
        if self.confidence >= 1.0 {
            f64::INFINITY
        } else {
            (1.0 - supp_y) / (1.0 - self.confidence)
        }
    }

    /// Total number of items across both sides.
    pub fn len(&self) -> usize {
        self.antecedent.len() + self.consequent.len()
    }

    /// Rules are never empty; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when `item` appears on either side.
    pub fn contains(&self, item: ItemId) -> bool {
        self.antecedent.contains(item) || self.consequent.contains(item)
    }

    /// Renders the rule with human-readable labels.
    pub fn render(&self, catalog: &ItemCatalog) -> String {
        format!(
            "{} => {}  (supp={:.2}, conf={:.2}, lift={:.2})",
            catalog.render(&self.antecedent),
            catalog.render(&self.consequent),
            self.support,
            self.confidence,
            self.lift
        )
    }

    /// Canonical ordering key: by antecedent, then consequent.
    pub fn key(&self) -> (Itemset, Itemset) {
        (self.antecedent.clone(), self.consequent.clone())
    }

    /// The rule's identity and metrics in the shape the provenance
    /// recorder consumes (raw item ids; labels are applied at render
    /// time by whoever holds the catalog).
    pub fn provenance_info(&self) -> irma_obs::RuleInfo {
        irma_obs::RuleInfo {
            antecedent: self.antecedent.items().to_vec(),
            consequent: self.consequent.items().to_vec(),
            support_count: self.support_count,
            support: self.support,
            confidence: self.confidence,
            lift: self.lift,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} (supp={:.3}, conf={:.3}, lift={:.3})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// Which side of a rule a keyword occupies (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleRole {
    /// Keyword in the consequent: the rule explains *causes* of the keyword.
    Cause,
    /// Keyword in the antecedent: the rule lists *characteristics* of jobs
    /// showing the keyword.
    Characteristic,
    /// Keyword on both sides cannot happen (sides are disjoint); keyword on
    /// neither side means the rule is irrelevant to the analysis.
    Unrelated,
}

impl Rule {
    /// Classifies the rule relative to an analysis keyword.
    pub fn role(&self, keyword: ItemId) -> RuleRole {
        if self.consequent.contains(keyword) {
            RuleRole::Cause
        } else if self.antecedent.contains(keyword) {
            RuleRole::Characteristic
        } else {
            RuleRole::Unrelated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> Rule {
        Rule::from_counts(
            Itemset::from_items([0]),
            Itemset::from_items([1]),
            20,
            25,
            40,
            100,
        )
    }

    #[test]
    fn metrics_from_counts() {
        let r = rule();
        assert!((r.support - 0.20).abs() < 1e-12);
        assert!((r.confidence - 0.80).abs() < 1e-12);
        assert!((r.lift - 2.0).abs() < 1e-12);
        assert_eq!(r.support_count, 20);
    }

    #[test]
    fn lift_one_means_independence() {
        // P(X)=0.5, P(Y)=0.4, P(XY)=0.2 => independent.
        let r = Rule::from_counts(
            Itemset::from_items([0]),
            Itemset::from_items([1]),
            20,
            50,
            40,
            100,
        );
        assert!((r.lift - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derived_supports_recovered() {
        let r = rule(); // sigma: XY=20, X=25, Y=40, N=100
        assert!((r.antecedent_support() - 0.25).abs() < 1e-12);
        assert!((r.consequent_support() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn leverage_matches_definition() {
        let r = rule();
        // P(XY) - P(X)P(Y) = 0.20 - 0.25*0.40 = 0.10.
        assert!((r.leverage() - 0.10).abs() < 1e-12);
        // Independent rule has zero leverage.
        let indep = Rule::from_counts(
            Itemset::from_items([0]),
            Itemset::from_items([1]),
            20,
            50,
            40,
            100,
        );
        assert!(indep.leverage().abs() < 1e-12);
    }

    #[test]
    fn conviction_matches_definition() {
        let r = rule();
        // (1 - 0.4) / (1 - 0.8) = 3.0.
        assert!((r.conviction() - 3.0).abs() < 1e-12);
        // Perfect confidence -> infinite conviction.
        let perfect = Rule::from_counts(
            Itemset::from_items([0]),
            Itemset::from_items([1]),
            25,
            25,
            40,
            100,
        );
        assert!(perfect.conviction().is_infinite());
    }

    #[test]
    fn role_classification() {
        let r = rule();
        assert_eq!(r.role(1), RuleRole::Cause);
        assert_eq!(r.role(0), RuleRole::Characteristic);
        assert_eq!(r.role(7), RuleRole::Unrelated);
    }

    #[test]
    fn itemset_union_and_contains() {
        let r = rule();
        assert_eq!(r.itemset(), Itemset::from_items([0, 1]));
        assert!(r.contains(0));
        assert!(r.contains(1));
        assert!(!r.contains(2));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn render_with_catalog() {
        let mut cat = ItemCatalog::new();
        cat.intern("CPU Util = Bin1");
        cat.intern("SM Util = 0%");
        let r = rule();
        let s = r.render(&cat);
        assert!(s.contains("{CPU Util = Bin1} => {SM Util = 0%}"), "{s}");
    }
}
