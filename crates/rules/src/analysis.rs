//! Keyword analysis: the paper's reporting unit (§IV-A).
//!
//! For one keyword (e.g. `SM Util = 0%` or `Failed`) the analysis splits
//! surviving rules into *cause* rules (keyword in the consequent, labelled
//! C1, C2, ... in the paper's tables) and *characteristic* rules (keyword
//! in the antecedent, labelled A1, A2, ...), each sorted by descending
//! confidence then lift, matching how the paper's tables are ordered.

use irma_mine::{ItemCatalog, ItemId};
use irma_obs::{Metrics, Provenance};

use crate::prune::{prune_rules_traced, PruneOutcome, PruneParams};
use crate::rule::{Rule, RuleRole};

/// The pruned, classified rule set for one analysis keyword.
#[derive(Debug, Clone, Default)]
pub struct KeywordAnalysis {
    /// Rules with the keyword in the consequent ("why does this happen").
    pub causes: Vec<Rule>,
    /// Rules with the keyword in the antecedent ("what else do these jobs
    /// look like").
    pub characteristics: Vec<Rule>,
    /// Full pruning provenance (for before/after diagnostics).
    pub outcome: PruneOutcome,
}

impl KeywordAnalysis {
    /// Runs keyword filtering + the four pruning conditions over `rules`.
    pub fn run(rules: &[Rule], keyword: ItemId, params: &PruneParams) -> KeywordAnalysis {
        KeywordAnalysis::run_with(rules, keyword, params, &Metrics::disabled())
    }

    /// [`KeywordAnalysis::run`] with observability: the pruning stage
    /// reports its per-condition removal counts into `metrics`.
    pub fn run_with(
        rules: &[Rule],
        keyword: ItemId,
        params: &PruneParams,
        metrics: &Metrics,
    ) -> KeywordAnalysis {
        KeywordAnalysis::run_traced(rules, keyword, params, metrics, &Provenance::disabled())
    }

    /// [`KeywordAnalysis::run_with`] plus per-rule decision lineage in
    /// `provenance` (see [`prune_rules_traced`]).
    pub fn run_traced(
        rules: &[Rule],
        keyword: ItemId,
        params: &PruneParams,
        metrics: &Metrics,
        provenance: &Provenance,
    ) -> KeywordAnalysis {
        let outcome = prune_rules_traced(rules, keyword, params, metrics, provenance);
        let mut causes = Vec::new();
        let mut characteristics = Vec::new();
        for rule in &outcome.kept {
            match rule.role(keyword) {
                RuleRole::Cause => causes.push(rule.clone()),
                RuleRole::Characteristic => characteristics.push(rule.clone()),
                RuleRole::Unrelated => unreachable!("prune_rules drops unrelated rules"),
            }
        }
        let by_strength = |a: &Rule, b: &Rule| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| b.lift.total_cmp(&a.lift))
                .then_with(|| a.key().cmp(&b.key()))
        };
        causes.sort_by(by_strength);
        characteristics.sort_by(by_strength);
        KeywordAnalysis {
            causes,
            characteristics,
            outcome,
        }
    }

    /// Number of rules surviving pruning.
    pub fn n_kept(&self) -> usize {
        self.causes.len() + self.characteristics.len()
    }

    /// Number of keyword-relevant rules before pruning.
    pub fn n_before(&self) -> usize {
        self.outcome.total()
    }

    /// Renders the analysis as the paper's table layout: `C1..Cn` cause
    /// rows then `A1..An` characteristic rows, with supp/conf/lift.
    pub fn render(&self, catalog: &ItemCatalog, keyword: ItemId, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "keyword: {} ({} rules kept of {})\n",
            catalog.label(keyword),
            self.n_kept(),
            self.n_before()
        ));
        for (prefix, rules) in [("C", &self.causes), ("A", &self.characteristics)] {
            for (i, rule) in rules.iter().take(top).enumerate() {
                out.push_str(&format!("{}{}: {}\n", prefix, i + 1, rule.render(catalog)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::Itemset;

    const KW: ItemId = 5;

    fn mk(ante: &[ItemId], cons: &[ItemId], conf: f64, lift: f64) -> Rule {
        Rule {
            antecedent: Itemset::from_items(ante.iter().copied()),
            consequent: Itemset::from_items(cons.iter().copied()),
            support_count: 100,
            support: 0.1,
            confidence: conf,
            lift,
        }
    }

    #[test]
    fn splits_causes_and_characteristics() {
        let rules = vec![
            mk(&[1], &[KW], 0.9, 2.0),
            mk(&[KW], &[2], 0.8, 3.0),
            mk(&[1], &[2], 0.7, 4.0), // unrelated: dropped
        ];
        let analysis = KeywordAnalysis::run(&rules, KW, &PruneParams::default());
        assert_eq!(analysis.causes.len(), 1);
        assert_eq!(analysis.characteristics.len(), 1);
        assert_eq!(analysis.n_kept(), 2);
        assert_eq!(analysis.n_before(), 2);
    }

    #[test]
    fn sorted_by_confidence_then_lift() {
        let rules = vec![
            mk(&[1], &[KW], 0.7, 9.0),
            mk(&[2], &[KW], 0.9, 1.6),
            mk(&[3], &[KW], 0.7, 2.0),
        ];
        let analysis = KeywordAnalysis::run(&rules, KW, &PruneParams::default());
        let confs: Vec<f64> = analysis.causes.iter().map(|r| r.confidence).collect();
        assert_eq!(confs, vec![0.9, 0.7, 0.7]);
        // Tie on confidence broken by lift.
        assert!(analysis.causes[1].lift > analysis.causes[2].lift);
    }

    #[test]
    fn render_labels_rows() {
        let mut cat = ItemCatalog::new();
        for label in ["a", "b", "c", "d", "e", "Failed"] {
            cat.intern(label);
        }
        let rules = vec![mk(&[1], &[KW], 0.9, 2.0), mk(&[KW], &[2], 0.8, 3.0)];
        let analysis = KeywordAnalysis::run(&rules, KW, &PruneParams::default());
        let text = analysis.render(&cat, KW, 10);
        assert!(text.contains("C1: {b} => {Failed}"), "{text}");
        assert!(text.contains("A1: {Failed} => {c}"), "{text}");
    }
}
