//! Rule-based classification.
//!
//! The paper's PAI takeaway (§IV-C): "the presence of multiple strong
//! rules indicates that a simple rule-based or tree-based classifier will
//! suffice for prediction of job failures". This module is that
//! classifier: cause rules (keyword in the consequent) become an ordered
//! rule list; a job is scored by the best-confidence rule whose antecedent
//! it satisfies. Unlike a black-box model, every positive prediction
//! carries the rule that fired — the interpretability property the paper
//! is about.

use irma_mine::{is_sorted_subset, ItemId, TransactionDb};

use crate::rule::{Rule, RuleRole};

/// An ordered-rule-list classifier for one keyword.
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    keyword: ItemId,
    /// Cause rules sorted by descending confidence (then lift).
    rules: Vec<Rule>,
}

impl RuleClassifier {
    /// Builds a classifier from generated rules.
    ///
    /// Keeps rules with the keyword in the consequent and confidence at
    /// least `min_confidence`; callers usually pass the *pruned* keyword
    /// rule set so the list stays small and readable.
    pub fn train(rules: &[Rule], keyword: ItemId, min_confidence: f64) -> RuleClassifier {
        let mut selected: Vec<Rule> = rules
            .iter()
            .filter(|r| r.role(keyword) == RuleRole::Cause && r.confidence >= min_confidence)
            .cloned()
            .collect();
        selected.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then_with(|| b.lift.total_cmp(&a.lift))
                .then_with(|| a.key().cmp(&b.key()))
        });
        RuleClassifier {
            keyword,
            rules: selected,
        }
    }

    /// The keyword this classifier predicts.
    pub fn keyword(&self) -> ItemId {
        self.keyword
    }

    /// The ordered rule list.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The highest-confidence rule whose antecedent is contained in the
    /// (sorted) transaction — the *explanation* for a positive prediction.
    pub fn matching_rule(&self, txn: &[ItemId]) -> Option<&Rule> {
        debug_assert!(txn.windows(2).all(|w| w[0] < w[1]), "txn must be sorted");
        self.rules
            .iter()
            .find(|r| is_sorted_subset(r.antecedent.items(), txn))
    }

    /// Confidence of the best matching rule, or 0.0 when none fires.
    pub fn score(&self, txn: &[ItemId]) -> f64 {
        self.matching_rule(txn).map_or(0.0, |r| r.confidence)
    }

    /// Positive iff some rule with confidence >= `threshold` fires.
    pub fn predict(&self, txn: &[ItemId], threshold: f64) -> bool {
        self.score(txn) >= threshold
    }

    /// Evaluates on a labelled database: the ground truth for each
    /// transaction is whether it contains the keyword item; the keyword
    /// itself never participates in matching (cause-rule antecedents are
    /// disjoint from it by construction).
    pub fn evaluate(&self, db: &TransactionDb, threshold: f64) -> Evaluation {
        let mut eval = Evaluation::default();
        for txn in db.iter() {
            let truth = txn.binary_search(&self.keyword).is_ok();
            let predicted = self.predict(txn, threshold);
            match (predicted, truth) {
                (true, true) => eval.tp += 1,
                (true, false) => eval.fp += 1,
                (false, true) => eval.fn_ += 1,
                (false, false) => eval.tn += 1,
            }
        }
        eval
    }
}

/// Confusion-matrix summary of a classifier run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Evaluation {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Evaluation {
    /// Total evaluated transactions.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision: TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: TP / (TP + FN); 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Share of ground-truth positives (the majority-baseline reference).
    pub fn base_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.fn_) as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::Itemset;

    const KW: ItemId = 9;

    fn mk(ante: &[ItemId], cons: &[ItemId], conf: f64, lift: f64) -> Rule {
        Rule {
            antecedent: Itemset::from_items(ante.iter().copied()),
            consequent: Itemset::from_items(cons.iter().copied()),
            support_count: 50,
            support: 0.1,
            confidence: conf,
            lift,
        }
    }

    fn classifier() -> RuleClassifier {
        let rules = vec![
            mk(&[1], &[KW], 0.9, 3.0),
            mk(&[2, 3], &[KW], 0.7, 2.0),
            mk(&[KW], &[4], 0.99, 5.0), // characteristic: must be ignored
            mk(&[5], &[6], 0.99, 5.0),  // unrelated: must be ignored
            mk(&[4], &[KW], 0.4, 1.6),  // below min_confidence
        ];
        RuleClassifier::train(&rules, KW, 0.5)
    }

    #[test]
    fn training_selects_cause_rules_only() {
        let c = classifier();
        assert_eq!(c.rules().len(), 2);
        assert!(c.rules().iter().all(|r| r.consequent.contains(KW)));
        // Sorted by confidence.
        assert!(c.rules()[0].confidence >= c.rules()[1].confidence);
    }

    #[test]
    fn matching_prefers_highest_confidence() {
        let c = classifier();
        // txn satisfies both rules; the 0.9 one should explain.
        let r = c.matching_rule(&[1, 2, 3]).expect("match");
        assert!((r.confidence - 0.9).abs() < 1e-12);
        assert_eq!(c.score(&[2, 3]), 0.7);
        assert_eq!(c.score(&[2]), 0.0);
    }

    #[test]
    fn predict_thresholds() {
        let c = classifier();
        assert!(c.predict(&[1], 0.8));
        assert!(!c.predict(&[2, 3], 0.8));
        assert!(c.predict(&[2, 3], 0.6));
    }

    #[test]
    fn evaluation_confusion_matrix() {
        let c = classifier();
        let db = TransactionDb::from_transactions(vec![
            vec![1, KW],    // predicted + true  -> TP
            vec![1],        // predicted, false  -> FP
            vec![7, KW],    // not predicted, true -> FN
            vec![7],        // negative          -> TN
            vec![2, 3, KW], // predicted + true  -> TP
        ]);
        let e = c.evaluate(&db, 0.5);
        assert_eq!((e.tp, e.fp, e.fn_, e.tn), (2, 1, 1, 1));
        assert!((e.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.base_rate() - 0.6).abs() < 1e-12);
        assert!(e.f1() > 0.6);
        assert_eq!(e.total(), 5);
    }

    #[test]
    fn empty_evaluation_is_safe() {
        let e = Evaluation::default();
        assert_eq!(e.precision(), 0.0);
        assert_eq!(e.recall(), 0.0);
        assert_eq!(e.f1(), 0.0);
        assert_eq!(e.accuracy(), 0.0);
    }
}
