//! # irma-rules — association rules, metrics, and keyword pruning
//!
//! The interpretable half of the IRMA workflow: turn a mined
//! frequent-itemset family into association rules
//! ([`generate_rules`]), then apply the paper's four keyword-centric
//! pruning conditions ([`prune_rules`]) and split survivors into cause /
//! characteristic tables ([`KeywordAnalysis`]).
//!
//! ```
//! use irma_mine::{fpgrowth, MinerConfig, TransactionDb, ItemCatalog};
//! use irma_rules::{generate_rules, KeywordAnalysis, PruneParams, RuleConfig};
//!
//! let mut catalog = ItemCatalog::new();
//! let idle = catalog.intern("SM Util = 0%");
//! let debug = catalog.intern("Runtime = Bin1");
//! // 6 of 8 jobs with short runtime are idle; base idle rate is 50%.
//! let txns: Vec<Vec<u32>> = (0..16)
//!     .map(|i| match i % 16 {
//!         0..=5 => vec![idle, debug],
//!         6..=7 => vec![debug],
//!         8..=9 => vec![idle],
//!         _ => vec![],
//!     })
//!     .collect();
//! let db = TransactionDb::from_transactions(txns).with_universe(catalog.len());
//! let frequent = fpgrowth(&db, &MinerConfig::with_min_support(0.05));
//! let rules = generate_rules(&frequent, &RuleConfig::with_min_lift(1.2));
//! let analysis = KeywordAnalysis::run(&rules, idle, &PruneParams::default());
//! assert_eq!(analysis.causes[0].antecedent.items(), &[debug]);
//! ```

#![warn(missing_docs)]

mod analysis;
mod classify;
mod compare;
mod generate;
mod prune;
mod rule;
mod trie;

pub use analysis::KeywordAnalysis;
pub use classify::{Evaluation, RuleClassifier};
pub use compare::{compare_rules, label_rules, LabeledRule, RuleComparison};
pub use generate::{generate_rules, generate_rules_traced, generate_rules_with, RuleConfig};
pub use prune::{
    prune_rules, prune_rules_traced, prune_rules_with, try_prune_rules_traced, InvalidPruneParams,
    PruneCondition, PruneOutcome, PruneParams, PruneRecord,
};
pub use rule::{Rule, RuleRole};
pub use trie::RuleTrie;
