//! Shared-prefix trie over rule itemsets, frozen into a CSR layout.
//!
//! The pruning stage (§III-D) repeatedly asks one question: *which other
//! rules in this group have a varying side that properly contains — or is
//! properly contained by — this rule's?* A flat `Vec<Rule>` answers it
//! with O(g²) pairwise subset tests per group. This module stores the
//! varying sides along shared-prefix paths instead (the trie-of-rules
//! structure from "Exploring the Trie of Rules", arXiv 2310.17355), so
//! one *subset walk* and one *superset walk* enumerate exactly the nested
//! partners a condition can compare.
//!
//! Like the Apriori candidate trie (PR 6), construction goes through a
//! flat edge map and is then **frozen** into compressed sparse rows:
//! per-node child slices sorted by item, per-node entry slices holding
//! the indices of the rules that terminate there. Walks touch only
//! `Vec`-contiguous memory and never hash.
//!
//! Three walks:
//!
//! * [`RuleTrie::proper_subsets_of`] — descend only edges labelled with
//!   query items; every visited node holds subsets of the query, and a
//!   two-pointer merge over (sorted children, remaining query) bounds
//!   branching at `min(children, |rest|)` per node.
//! * [`RuleTrie::proper_supersets_of`] — edges labelled `< q[next]` are
//!   free items a superset may contain (descended only when the
//!   subtree's max item can still reach `q[next]`, see `subtree_max`);
//!   an edge `== q[next]` advances the query. Once the query is
//!   exhausted, the whole remaining subtree is supersets.
//! * [`RuleTrie::find`] — exact-path descent plus a scan of the terminal
//!   node's entry slice, the sub-linear rule lookup behind
//!   `Analysis::find_rule`, `irma explain`, and `GET /v1/explain`.

use irma_mine::ItemId;
use std::collections::HashMap;

use crate::rule::Rule;

/// A frozen shared-prefix trie over one side of a rule set.
///
/// Nodes are implicit (indices); node 0 is the root (the empty set).
/// `child_start[n]..child_start[n + 1]` delimits node `n`'s edges in
/// `child_items` / `child_nodes` (sorted by item), and
/// `entry_start[n]..entry_start[n + 1]` delimits the indices (into the
/// rule slice the trie was built from) of rules whose keyed side is
/// exactly the path to `n`, in ascending index order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleTrie {
    child_start: Vec<u32>,
    child_items: Vec<ItemId>,
    child_nodes: Vec<u32>,
    entry_start: Vec<u32>,
    entry_rules: Vec<u32>,
    /// `subtree_max[n]` = largest item on any path through `n` (the item
    /// of `n`'s own incoming edge included); lets the superset walk skip
    /// subtrees that cannot contain the next query item.
    subtree_max: Vec<ItemId>,
    len: usize,
}

impl RuleTrie {
    /// Builds a trie keyed by each rule's **antecedent** (the layout
    /// `Analysis` keeps for exact rule lookup: per-node entries list the
    /// rules — hence the consequents — sharing that antecedent path).
    pub fn over_antecedents(rules: &[Rule]) -> RuleTrie {
        RuleTrie::from_sides(rules.iter().map(|r| r.antecedent.items()))
    }

    /// Builds a trie keyed by each rule's **consequent**.
    pub fn over_consequents(rules: &[Rule]) -> RuleTrie {
        RuleTrie::from_sides(rules.iter().map(|r| r.consequent.items()))
    }

    /// Builds a trie from raw sorted item slices; entry `k` of the
    /// iterator is indexed as rule `k`.
    pub fn from_sides<'a>(sides: impl Iterator<Item = &'a [ItemId]>) -> RuleTrie {
        let mut edges: HashMap<(u32, ItemId), u32> = HashMap::new();
        let mut item_of: Vec<ItemId> = vec![0]; // incoming-edge label per node
        let mut terminals: Vec<(u32, u32)> = Vec::new(); // (node, rule index)
        for (idx, side) in sides.enumerate() {
            let mut node = 0u32;
            for &item in side {
                let next_free = item_of.len() as u32;
                let next = *edges.entry((node, item)).or_insert(next_free);
                if next == next_free {
                    item_of.push(item);
                }
                node = next;
            }
            terminals.push((node, idx as u32));
        }
        let len = terminals.len();
        let n_nodes = item_of.len();

        // Freeze: sorting by (node, item) yields per-node child slices
        // already ordered by item, exactly what the merge walks need.
        let mut triples: Vec<(u32, ItemId, u32)> = edges
            .into_iter()
            .map(|((node, item), child)| (node, item, child))
            .collect();
        triples.sort_unstable();
        let mut child_start = vec![0u32; n_nodes + 1];
        for &(node, _, _) in &triples {
            child_start[node as usize + 1] += 1;
        }
        for i in 1..child_start.len() {
            child_start[i] += child_start[i - 1];
        }
        let child_items: Vec<ItemId> = triples.iter().map(|&(_, item, _)| item).collect();
        let child_nodes: Vec<u32> = triples.iter().map(|&(_, _, child)| child).collect();

        terminals.sort_unstable();
        let mut entry_start = vec![0u32; n_nodes + 1];
        for &(node, _) in &terminals {
            entry_start[node as usize + 1] += 1;
        }
        for i in 1..entry_start.len() {
            entry_start[i] += entry_start[i - 1];
        }
        let entry_rules: Vec<u32> = terminals.iter().map(|&(_, rule)| rule).collect();

        // Children are always created after their parent, so a reverse
        // index sweep sees every child's subtree_max before its parent.
        let mut subtree_max = item_of;
        for node in (0..n_nodes).rev() {
            let (start, end) = (child_start[node] as usize, child_start[node + 1] as usize);
            for &child in &child_nodes[start..end] {
                subtree_max[node] = subtree_max[node].max(subtree_max[child as usize]);
            }
        }

        RuleTrie {
            child_start,
            child_items,
            child_nodes,
            entry_start,
            entry_rules,
            subtree_max,
            len,
        }
    }

    /// Number of rules indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie indexes no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of trie nodes (root included) — the shared-prefix
    /// compression the CSR layout stores.
    pub fn node_count(&self) -> usize {
        self.child_start.len() - 1
    }

    fn children(&self, node: u32) -> (&[ItemId], &[u32]) {
        let start = self.child_start[node as usize] as usize;
        let end = self.child_start[node as usize + 1] as usize;
        (&self.child_items[start..end], &self.child_nodes[start..end])
    }

    fn entries(&self, node: u32) -> &[u32] {
        let start = self.entry_start[node as usize] as usize;
        let end = self.entry_start[node as usize + 1] as usize;
        &self.entry_rules[start..end]
    }

    /// The node reached by descending `path` exactly, if every edge
    /// exists (binary search per step — children are sorted by item).
    fn node_for(&self, path: &[ItemId]) -> Option<u32> {
        let mut node = 0u32;
        for &item in path {
            let (items, nodes) = self.children(node);
            let pos = items.binary_search(&item).ok()?;
            node = nodes[pos];
        }
        Some(node)
    }

    /// Resolves the rule with exactly this (antecedent, consequent) via
    /// trie walk: exact-path descent on the keyed side, then a scan of
    /// the terminal entry slice for the matching other side.
    ///
    /// `rules` must be the slice the trie was built from (for a trie
    /// from [`RuleTrie::over_antecedents`], `ante` is the keyed side).
    /// Both sides must be sorted ascending.
    pub fn find(&self, rules: &[Rule], ante: &[ItemId], cons: &[ItemId]) -> Option<usize> {
        let node = self.node_for(ante)?;
        self.entries(node)
            .iter()
            .map(|&idx| idx as usize)
            .find(|&idx| rules[idx].consequent.items() == cons)
    }

    /// Appends the indices of all rules whose keyed side is a **proper
    /// subset** of `query` (sorted ascending) to `out`, in no particular
    /// order.
    pub fn proper_subsets_of(&self, query: &[ItemId], out: &mut Vec<u32>) {
        self.subsets_from(0, query, query.len(), out);
    }

    fn subsets_from(&self, node: u32, rest: &[ItemId], missing: usize, out: &mut Vec<u32>) {
        // `missing` = query items not yet matched on this path; zero
        // would mean the node's set equals the query — proper only.
        if missing > 0 {
            out.extend_from_slice(self.entries(node));
        }
        let (items, nodes) = self.children(node);
        // Only query-labelled edges are descended; each query item is
        // located in the (sorted) child slice by binary search from the
        // previous match, so a node with thousands of children — the root
        // of a many-family rule set — costs O(|rest| log children), not a
        // linear merge over every child.
        let mut lo = 0;
        for (qi, &q) in rest.iter().enumerate() {
            if lo >= items.len() {
                break;
            }
            let pos = lo + items[lo..].partition_point(|&item| item < q);
            if pos >= items.len() {
                break;
            }
            if items[pos] == q {
                self.subsets_from(nodes[pos], &rest[qi + 1..], missing - 1, out);
                lo = pos + 1;
            } else {
                lo = pos;
            }
        }
    }

    /// Appends the indices of all rules whose keyed side is a **proper
    /// superset** of `query` (sorted ascending) to `out`, in no
    /// particular order.
    pub fn proper_supersets_of(&self, query: &[ItemId], out: &mut Vec<u32>) {
        self.supersets_from(0, query, false, out);
    }

    fn supersets_from(&self, node: u32, rest: &[ItemId], strict: bool, out: &mut Vec<u32>) {
        let Some(&next) = rest.first() else {
            // Query exhausted: everything at or below this node is a
            // superset; the node itself equals the query unless the path
            // already took a non-query item.
            if strict {
                out.extend_from_slice(self.entries(node));
            }
            let (_, nodes) = self.children(node);
            for &child in nodes {
                self.collect_subtree(child, out);
            }
            return;
        };
        let (items, nodes) = self.children(node);
        for (ci, &item) in items.iter().enumerate() {
            if item < next {
                // A free item a superset may contain — but only worth
                // descending if the subtree can still produce `next`.
                if self.subtree_max[nodes[ci] as usize] >= next {
                    self.supersets_from(nodes[ci], rest, true, out);
                }
            } else if item == next {
                self.supersets_from(nodes[ci], &rest[1..], strict, out);
            } else {
                // Children are sorted; anything further can never match
                // `next`, and paths are ascending so `next` cannot appear
                // deeper either.
                break;
            }
        }
    }

    fn collect_subtree(&self, node: u32, out: &mut Vec<u32>) {
        out.extend_from_slice(self.entries(node));
        let (_, nodes) = self.children(node);
        for &child in nodes {
            self.collect_subtree(child, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::{is_sorted_subset, Itemset};

    fn mk(ante: &[ItemId], cons: &[ItemId]) -> Rule {
        Rule {
            antecedent: Itemset::from_items(ante.iter().copied()),
            consequent: Itemset::from_items(cons.iter().copied()),
            support_count: 1,
            support: 0.1,
            confidence: 0.5,
            lift: 2.0,
        }
    }

    fn sides() -> Vec<Vec<ItemId>> {
        vec![
            vec![1],
            vec![1, 2],
            vec![1, 2, 3],
            vec![1, 3],
            vec![2],
            vec![2, 3],
            vec![1, 2], // duplicate side: both entries must surface
            vec![4],
        ]
    }

    fn build(sides: &[Vec<ItemId>]) -> RuleTrie {
        RuleTrie::from_sides(sides.iter().map(|s| s.as_slice()))
    }

    fn brute_subsets(sides: &[Vec<ItemId>], q: &[ItemId]) -> Vec<u32> {
        let mut out: Vec<u32> = (0..sides.len() as u32)
            .filter(|&i| {
                let s = &sides[i as usize];
                s.len() < q.len() && is_sorted_subset(s, q)
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn brute_supersets(sides: &[Vec<ItemId>], q: &[ItemId]) -> Vec<u32> {
        let mut out: Vec<u32> = (0..sides.len() as u32)
            .filter(|&i| {
                let s = &sides[i as usize];
                s.len() > q.len() && is_sorted_subset(q, s)
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn subset_walk_matches_brute_force() {
        let sides = sides();
        let trie = build(&sides);
        for q in [
            vec![1, 2, 3],
            vec![1, 2],
            vec![1],
            vec![2, 3],
            vec![1, 2, 3, 4],
            vec![5],
            vec![],
        ] {
            let mut got = Vec::new();
            trie.proper_subsets_of(&q, &mut got);
            got.sort_unstable();
            assert_eq!(got, brute_subsets(&sides, &q), "query {q:?}");
        }
    }

    #[test]
    fn superset_walk_matches_brute_force() {
        let sides = sides();
        let trie = build(&sides);
        for q in [
            vec![1],
            vec![2],
            vec![3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![1, 2, 3],
            vec![4],
            vec![5],
            vec![],
        ] {
            let mut got = Vec::new();
            trie.proper_supersets_of(&q, &mut got);
            got.sort_unstable();
            assert_eq!(got, brute_supersets(&sides, &q), "query {q:?}");
        }
    }

    #[test]
    fn equal_sets_are_excluded_from_both_walks() {
        let sides = vec![vec![1, 2], vec![1, 2]];
        let trie = build(&sides);
        let mut subs = Vec::new();
        let mut sups = Vec::new();
        trie.proper_subsets_of(&[1, 2], &mut subs);
        trie.proper_supersets_of(&[1, 2], &mut sups);
        assert!(subs.is_empty(), "{subs:?}");
        assert!(sups.is_empty(), "{sups:?}");
    }

    #[test]
    fn prefix_sharing_compresses_nodes() {
        let sides = sides();
        let trie = build(&sides);
        // Distinct prefixes: {}, 1, 12, 123, 13, 2, 23, 4 -> 8 nodes for
        // 8 rules (15 items stored flat).
        assert_eq!(trie.node_count(), 8);
        assert_eq!(trie.len(), 8);
    }

    #[test]
    fn find_resolves_exact_rule_via_trie_walk() {
        let rules = vec![
            mk(&[1, 2], &[9]),
            mk(&[1, 2], &[8, 9]),
            mk(&[1], &[9]),
            mk(&[3], &[7]),
        ];
        let trie = RuleTrie::over_antecedents(&rules);
        assert_eq!(trie.find(&rules, &[1, 2], &[9]), Some(0));
        assert_eq!(trie.find(&rules, &[1, 2], &[8, 9]), Some(1));
        assert_eq!(trie.find(&rules, &[1], &[9]), Some(2));
        assert_eq!(trie.find(&rules, &[3], &[7]), Some(3));
        assert_eq!(trie.find(&rules, &[1, 2], &[7]), None);
        assert_eq!(trie.find(&rules, &[2], &[9]), None);
    }

    #[test]
    fn empty_trie_walks_are_empty() {
        let trie = RuleTrie::from_sides(std::iter::empty());
        let mut out = Vec::new();
        trie.proper_subsets_of(&[1, 2], &mut out);
        trie.proper_supersets_of(&[1], &mut out);
        assert!(out.is_empty());
        assert!(trie.is_empty());
        assert_eq!(trie.node_count(), 1);
    }

    #[test]
    fn superset_walk_prunes_by_subtree_max() {
        // Families with disjoint low/high item blocks: querying a
        // high-block item must not enumerate the low-block subtrees.
        // (Behavioural check only — the walk must still be exact.)
        let sides = vec![vec![1, 2], vec![1, 3], vec![10, 11], vec![10, 12]];
        let trie = build(&sides);
        let mut got = Vec::new();
        trie.proper_supersets_of(&[11], &mut got);
        assert_eq!(got, vec![2]);
    }
}
