//! Keyword-centric rule pruning (§III-D, Conditions 1–4).
//!
//! After lift filtering, the rule set still contains families of
//! near-duplicate rules that differ only by adding items to one side. The
//! paper defines four conditional filters keyed on (1) which side holds the
//! analysis *keyword* and (2) which side the two rules differ on. Two
//! relaxation parameters `C_lift, C_supp >= 1` (both 1.5 in the paper)
//! control how aggressively the shorter/longer rule wins.
//!
//! Pruning uses *marking* semantics, the literal reading of the paper's
//! "when there exist two rules ... prune": every relevant pair is
//! evaluated against the original rule set and losers are marked, so a
//! rule dominated by an (itself dominated) rule is still removed. This
//! makes the outcome order-independent and deterministic.
//!
//! ## Execution strategy
//!
//! Conditions 1/4 compare rules sharing a consequent, 2/3 rules sharing
//! an antecedent — and within a group only *properly nested* varying
//! sides ever interact. Instead of testing all `O(g²)` pairs per group,
//! each grouping builds one [`RuleTrie`] per group over the varying side
//! and discovers exactly the nested pairs with subset/superset walks
//! ([`GroupPlan`]); the two conditions of a grouping then reuse the same
//! pair list. Groups partition the rules, so they are evaluated in
//! parallel through the rayon shim; each group's verdicts are buffered
//! ([`PairEvent`]) and replayed sequentially in canonical group order,
//! which keeps the kept set, the `PruneRecord` sequence, and the
//! provenance chains byte-identical to the flat all-pairs implementation
//! (retained in `irma-check` as the differential oracle) at any pool
//! width.

use std::collections::{HashMap, HashSet};
use std::fmt;

use irma_mine::{ItemId, Itemset};
use irma_obs::{Metrics, Provenance};
use rayon::prelude::*;

use crate::rule::{Rule, RuleRole};
use crate::trie::RuleTrie;

/// Relaxation parameters for the four pruning conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneParams {
    /// Margin multiplier for lift comparisons (`>= 1`).
    pub c_lift: f64,
    /// Margin multiplier for support comparisons (`>= 1`).
    pub c_supp: f64,
}

impl Default for PruneParams {
    fn default() -> PruneParams {
        // The paper sets both to 1.5 for all three traces.
        PruneParams {
            c_lift: 1.5,
            c_supp: 1.5,
        }
    }
}

impl PruneParams {
    /// Validates that both margins are at least 1.
    pub fn validate(&self) -> Result<(), InvalidPruneParams> {
        // `>= 1.0` is false for NaN, so negating it rejects NaN margins
        // alongside sub-1 ones.
        let below = |x: f64| {
            !matches!(
                x.partial_cmp(&1.0),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            )
        };
        if below(self.c_lift) || below(self.c_supp) {
            return Err(InvalidPruneParams {
                c_lift: self.c_lift,
                c_supp: self.c_supp,
            });
        }
        Ok(())
    }
}

/// Rejected pruning margins: `C_lift` and `C_supp` must both be `>= 1`
/// (NaN margins are rejected too). Routed through
/// `PipelineError::Rules` by the fallible pipeline entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidPruneParams {
    /// The rejected lift margin.
    pub c_lift: f64,
    /// The rejected support margin.
    pub c_supp: f64,
}

impl fmt::Display for InvalidPruneParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C_lift and C_supp must be >= 1 (got {}, {})",
            self.c_lift, self.c_supp
        )
    }
}

impl std::error::Error for InvalidPruneParams {}

/// Which of the paper's four conditions removed a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneCondition {
    /// Cause analysis, antecedents nested (keyword in consequent).
    Condition1,
    /// Characteristic analysis, consequents nested (keyword in antecedent).
    Condition2,
    /// Cause analysis, consequents nested (keyword in both consequents).
    Condition3,
    /// Characteristic analysis, antecedents nested (keyword in both
    /// antecedents).
    Condition4,
}

/// A pruned rule together with the condition and the surviving rule that
/// dominated it (kept for Fig.-3-style before/after diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneRecord {
    /// The rule that was removed.
    pub rule: Rule,
    /// The condition that fired.
    pub condition: PruneCondition,
    /// Key (antecedent, consequent) of the rule that dominated it.
    pub dominated_by: (Itemset, Itemset),
}

/// Result of keyword filtering + pruning.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Rules that survived all four conditions, in canonical order.
    pub kept: Vec<Rule>,
    /// Rules removed, with provenance.
    pub pruned: Vec<PruneRecord>,
}

impl PruneOutcome {
    /// Rules considered before pruning (kept + pruned).
    pub fn total(&self) -> usize {
        self.kept.len() + self.pruned.len()
    }

    /// How many rules each condition removed.
    pub fn pruned_by_condition(&self, condition: PruneCondition) -> usize {
        self.pruned
            .iter()
            .filter(|record| record.condition == condition)
            .count()
    }
}

impl PruneCondition {
    /// All four conditions, in the order they are applied.
    pub fn all() -> [PruneCondition; 4] {
        [
            PruneCondition::Condition1,
            PruneCondition::Condition2,
            PruneCondition::Condition3,
            PruneCondition::Condition4,
        ]
    }

    /// Stable metric-name suffix (`condition1` ... `condition4`).
    pub fn metric_name(self) -> &'static str {
        match self {
            PruneCondition::Condition1 => "condition1",
            PruneCondition::Condition2 => "condition2",
            PruneCondition::Condition3 => "condition3",
            PruneCondition::Condition4 => "condition4",
        }
    }

    /// The paper's condition number (1–4).
    pub fn number(self) -> u8 {
        match self {
            PruneCondition::Condition1 => 1,
            PruneCondition::Condition2 => 2,
            PruneCondition::Condition3 => 3,
            PruneCondition::Condition4 => 4,
        }
    }
}

/// Applies the four pruning conditions to `rules` for one `keyword`.
///
/// Only rules that contain the keyword on either side participate; the
/// paper discards keyword-free rules from the analysis entirely, and so do
/// we (they are not reported in `pruned` either).
pub fn prune_rules(rules: &[Rule], keyword: ItemId, params: &PruneParams) -> PruneOutcome {
    prune_rules_with(rules, keyword, params, &Metrics::disabled())
}

/// [`prune_rules`] with observability: emits a `rules.prune` stage event
/// (keyword-relevant rules in, kept, and per-condition prune counts) and
/// bumps one `prune.condition<N>` counter per removed rule.
pub fn prune_rules_with(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    metrics: &Metrics,
) -> PruneOutcome {
    prune_rules_traced(rules, keyword, params, metrics, &Provenance::disabled())
}

/// [`prune_rules_with`] plus per-rule decision lineage: every pairwise
/// winner/loser edge (including marking-chain echoes on already-dead
/// rules), the branch and margin that decided it, undecided comparisons,
/// and each relevant rule's final verdict land in `provenance`.
///
/// # Panics
///
/// Panics on invalid [`PruneParams`], matching the infallible paper-path
/// contract of [`irma_core::analyze`-style] entry points; use
/// [`try_prune_rules_traced`] (or `irma_core::try_analyze`, which
/// validates up front) for typed errors instead.
pub fn prune_rules_traced(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    metrics: &Metrics,
    provenance: &Provenance,
) -> PruneOutcome {
    match try_prune_rules_traced(rules, keyword, params, metrics, provenance) {
        Ok(outcome) => outcome,
        Err(error) => panic!("invalid prune params: {error}"),
    }
}

/// [`prune_rules_traced`] with typed parameter validation: invalid
/// margins return [`InvalidPruneParams`] instead of panicking (the PR-4
/// failure model; `irma_core::try_analyze` maps it into
/// `PipelineError::Rules`).
pub fn try_prune_rules_traced(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    metrics: &Metrics,
    provenance: &Provenance,
) -> Result<PruneOutcome, InvalidPruneParams> {
    params.validate()?;
    let mut span = metrics.span("rules.prune");
    let outcome = prune_rules_inner(rules, keyword, params, provenance);
    span.field("rules_in", outcome.total() as u64);
    span.field("kept", outcome.kept.len() as u64);
    for condition in PruneCondition::all() {
        let removed = outcome.pruned_by_condition(condition) as u64;
        span.field(&format!("pruned_{}", condition.metric_name()), removed);
        if removed > 0 {
            metrics.incr(&format!("prune.{}", condition.metric_name()), removed);
        }
    }
    Ok(outcome)
}

fn prune_rules_inner(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    provenance: &Provenance,
) -> PruneOutcome {
    let mut relevant: Vec<Rule> = rules
        .iter()
        .filter(|r| r.role(keyword) != RuleRole::Unrelated)
        .cloned()
        .collect();
    relevant.sort_unstable_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });

    // Nested-pair discovery depends only on the grouping, not on the
    // condition, so each plan is built once and shared by its two
    // conditions (1/4 share the consequent grouping, 2/3 the antecedent
    // grouping).
    let by_consequent = GroupPlan::build(&relevant, Grouping::ByConsequent);
    let by_antecedent = GroupPlan::build(&relevant, Grouping::ByAntecedent);

    let mut alive = vec![true; relevant.len()];
    let mut pruned: Vec<PruneRecord> = Vec::new();

    for condition in PruneCondition::all() {
        let plan = match condition {
            PruneCondition::Condition1 | PruneCondition::Condition4 => &by_consequent,
            PruneCondition::Condition2 | PruneCondition::Condition3 => &by_antecedent,
        };
        apply_condition(
            condition,
            &relevant,
            keyword,
            params,
            plan,
            &mut alive,
            &mut pruned,
            provenance,
        );
    }

    if provenance.is_enabled() {
        for (rule, &is_alive) in relevant.iter().zip(&alive) {
            provenance.mark_kept(&rule.provenance_info(), is_alive);
        }
    }

    // Move the survivors out of `relevant` instead of cloning them a
    // second time: each kept rule is cloned exactly once, when the
    // keyword filter built `relevant`.
    let kept: Vec<Rule> = relevant
        .into_iter()
        .zip(alive)
        .filter(|&(_, is_alive)| is_alive)
        .map(|(rule, _)| rule)
        .collect();
    PruneOutcome { kept, pruned }
}

/// Which side two rules of a group share (the other side varies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Grouping {
    /// Equal consequents, nested antecedents (conditions 1 and 4).
    ByConsequent,
    /// Equal antecedents, nested consequents (conditions 2 and 3).
    ByAntecedent,
}

impl Grouping {
    fn key(self, rule: &Rule) -> &Itemset {
        match self {
            Grouping::ByConsequent => &rule.consequent,
            Grouping::ByAntecedent => &rule.antecedent,
        }
    }

    fn varying(self, rule: &Rule) -> &Itemset {
        match self {
            Grouping::ByConsequent => &rule.antecedent,
            Grouping::ByAntecedent => &rule.consequent,
        }
    }
}

/// One properly nested pair: `short`'s varying side is strictly contained
/// in `long`'s. Indices point into the sorted `relevant` slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NestedPair {
    short: u32,
    long: u32,
}

/// The pre-computed comparison schedule for one grouping: per group (in
/// canonical key order), exactly the nested pairs a condition can
/// compare, in the flat oracle's `(i asc, j > i asc)` enumeration order.
#[derive(Debug)]
struct GroupPlan {
    groups: Vec<Vec<NestedPair>>,
}

impl GroupPlan {
    fn build(rules: &[Rule], grouping: Grouping) -> GroupPlan {
        let mut by_key: HashMap<&Itemset, Vec<u32>> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            by_key.entry(grouping.key(rule)).or_default().push(i as u32);
        }
        let mut ordered: Vec<(&Itemset, Vec<u32>)> = by_key.into_iter().collect();
        ordered.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let members: Vec<Vec<u32>> = ordered.into_iter().map(|(_, m)| m).collect();
        let groups: Vec<Vec<NestedPair>> = members
            .par_iter()
            .map(|members| nested_pairs(rules, members, grouping))
            .collect();
        GroupPlan { groups }
    }
}

/// Discovers a group's nested pairs via trie walks instead of all-pairs
/// subset tests: one shared-prefix trie over the members' varying sides,
/// then per anchor one subset walk + one superset walk, keeping only
/// later members so each unordered pair surfaces exactly once, at the
/// anchor position the flat oracle would visit it.
fn nested_pairs(rules: &[Rule], members: &[u32], grouping: Grouping) -> Vec<NestedPair> {
    if members.len() < 2 {
        return Vec::new();
    }
    let trie = RuleTrie::from_sides(
        members
            .iter()
            .map(|&i| grouping.varying(&rules[i as usize]).items()),
    );
    let mut pairs = Vec::new();
    let mut subs: Vec<u32> = Vec::new();
    let mut sups: Vec<u32> = Vec::new();
    // (position, partner-is-superset) — sorted so partners come in the
    // oracle's ascending-j order.
    let mut partners: Vec<(u32, bool)> = Vec::new();
    for (pos, &i) in members.iter().enumerate() {
        let query = grouping.varying(&rules[i as usize]).items();
        subs.clear();
        sups.clear();
        partners.clear();
        trie.proper_subsets_of(query, &mut subs);
        trie.proper_supersets_of(query, &mut sups);
        let pos = pos as u32;
        partners.extend(subs.iter().filter(|&&p| p > pos).map(|&p| (p, false)));
        partners.extend(sups.iter().filter(|&&p| p > pos).map(|&p| (p, true)));
        partners.sort_unstable();
        for &(p, partner_is_superset) in &partners {
            let j = members[p as usize];
            pairs.push(if partner_is_superset {
                NestedPair { short: i, long: j }
            } else {
                NestedPair { short: j, long: i }
            });
        }
    }
    pairs
}

/// One buffered verdict from a group's evaluation, replayed sequentially.
#[derive(Debug)]
enum PairEvent {
    /// A condition fired; recorded in provenance (echo edges included).
    /// Only emitted when a provenance recorder is attached.
    Decision {
        winner: u32,
        loser: u32,
        branch: &'static str,
        margin: f64,
        detail: String,
        effective: bool,
    },
    /// The loser was still alive: mark it dead and emit a `PruneRecord`.
    Death { loser: u32, winner: u32 },
    /// The condition applied but neither branch fired. Only emitted when
    /// a provenance recorder is attached.
    Undecided { short: u32, long: u32 },
}

/// Evaluates one condition over a pre-computed group plan.
///
/// Groups partition the rules of a grouping, so their evaluations are
/// independent and run in parallel; the buffered events are then replayed
/// in canonical group order, making the output independent of pool width
/// and steal order.
#[allow(clippy::too_many_arguments)]
fn apply_condition(
    condition: PruneCondition,
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    plan: &GroupPlan,
    alive: &mut [bool],
    pruned: &mut Vec<PruneRecord>,
    provenance: &Provenance,
) {
    let record = provenance.is_enabled();
    let snapshot: &[bool] = alive;
    let outcomes: Vec<Vec<PairEvent>> = plan
        .groups
        .par_iter()
        .map(|pairs| evaluate_group(condition, rules, keyword, params, pairs, snapshot, record))
        .collect();
    for events in outcomes {
        for event in events {
            match event {
                PairEvent::Decision {
                    winner,
                    loser,
                    branch,
                    margin,
                    detail,
                    effective,
                } => {
                    provenance.record_decision(
                        condition.number(),
                        branch,
                        margin,
                        &detail,
                        &rules[winner as usize].provenance_info(),
                        &rules[loser as usize].provenance_info(),
                        effective,
                    );
                }
                PairEvent::Death { loser, winner } => {
                    alive[loser as usize] = false;
                    pruned.push(PruneRecord {
                        rule: rules[loser as usize].clone(),
                        condition,
                        dominated_by: rules[winner as usize].key(),
                    });
                }
                PairEvent::Undecided { short, long } => {
                    provenance.record_undecided(
                        &rules[short as usize].provenance_info(),
                        &rules[long as usize].provenance_info(),
                    );
                }
            }
        }
    }
}

/// Runs one condition over one group's nested pairs against a snapshot of
/// the condition-start liveness. A rule can only be killed by a member of
/// its own group (for this condition), so the group-local `dead` overlay
/// reproduces the flat oracle's in-place `alive` mutations exactly.
fn evaluate_group(
    condition: PruneCondition,
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    pairs: &[NestedPair],
    alive: &[bool],
    record: bool,
) -> Vec<PairEvent> {
    let mut events = Vec::new();
    let mut dead: HashSet<u32> = HashSet::new();
    for &NestedPair { short, long } in pairs {
        let (short_rule, long_rule) = (&rules[short as usize], &rules[long as usize]);
        match decide(condition, short_rule, long_rule, keyword, params) {
            Verdict::Prune(decision) => {
                let (loser, winner) = if decision.loser == Loser::Short {
                    (short, long)
                } else {
                    (long, short)
                };
                let loser_alive = alive[loser as usize] && !dead.contains(&loser);
                if record {
                    events.push(PairEvent::Decision {
                        winner,
                        loser,
                        branch: decision.branch,
                        margin: decision.margin,
                        detail: render_detail(condition, &decision, short_rule, long_rule, params),
                        effective: loser_alive,
                    });
                }
                // Marking semantics: the winner prunes even if it was
                // itself pruned earlier; record each loss once.
                if loser_alive {
                    dead.insert(loser);
                    events.push(PairEvent::Death { loser, winner });
                }
            }
            Verdict::Undecided => {
                if record {
                    events.push(PairEvent::Undecided { short, long });
                }
            }
            Verdict::NotApplicable => {}
        }
    }
    events
}

/// Which of the nested pair a condition removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loser {
    /// The rule with the smaller varying side.
    Short,
    /// The rule with the larger varying side.
    Long,
}

/// A firing condition: who loses, decided by which comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decision {
    loser: Loser,
    /// The comparison that decided: `"lift"`, `"support"`, or
    /// `"lift+support"` (condition 2's two-part short-rule branch).
    branch: &'static str,
    /// The relaxation margin the branch applied (`C_lift`, or `C_supp`
    /// for condition 1's support branch).
    margin: f64,
}

/// Outcome of evaluating one condition for a nested pair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    /// The condition's keyword placement doesn't match this pair.
    NotApplicable,
    /// The condition applies but neither branch fired; both rules stay.
    Undecided,
    /// One rule is pruned.
    Prune(Decision),
}

/// Evaluates one condition for a nested pair.
fn decide(
    condition: PruneCondition,
    short: &Rule,
    long: &Rule,
    keyword: ItemId,
    params: &PruneParams,
) -> Verdict {
    let (c_lift, c_supp) = (params.c_lift, params.c_supp);
    let prune = |loser, branch, margin| {
        Verdict::Prune(Decision {
            loser,
            branch,
            margin,
        })
    };
    match condition {
        // Cause analysis: same consequent Y with K in Y; antecedents nested.
        PruneCondition::Condition1 => {
            if !short.consequent.contains(keyword) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else if c_supp * long.support >= short.support {
                prune(Loser::Short, "support", c_supp)
            } else {
                Verdict::Undecided
            }
        }
        // Characteristic analysis: same antecedent X with K in X;
        // consequents nested.
        PruneCondition::Condition2 => {
            if !short.antecedent.contains(keyword) {
                return Verdict::NotApplicable;
            }
            if c_lift * long.lift >= short.lift && c_supp * long.support >= short.support {
                prune(Loser::Short, "lift+support", c_lift)
            } else if c_lift * long.lift < short.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
        // Cause analysis: same antecedent; K in both nested consequents.
        PruneCondition::Condition3 => {
            if !(short.consequent.contains(keyword) && long.consequent.contains(keyword)) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
        // Characteristic analysis: same consequent; K in both nested
        // antecedents.
        PruneCondition::Condition4 => {
            if !(short.antecedent.contains(keyword) && long.antecedent.contains(keyword)) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
    }
}

/// Renders the comparison a firing decision actually evaluated, for
/// provenance traces (only built when a recorder is attached).
fn render_detail(
    condition: PruneCondition,
    decision: &Decision,
    short: &Rule,
    long: &Rule,
    params: &PruneParams,
) -> String {
    let (c_lift, c_supp) = (params.c_lift, params.c_supp);
    match (condition, decision.branch) {
        // Condition 2 short-rule branch: long covers short on both axes.
        (PruneCondition::Condition2, "lift+support") => format!(
            "C_lift x lift(long) = {:.2} x {:.4} = {:.4} >= lift(short) = {:.4} and \
             C_supp x supp(long) = {:.2} x {:.4} = {:.4} >= supp(short) = {:.4}",
            c_lift,
            long.lift,
            c_lift * long.lift,
            short.lift,
            c_supp,
            long.support,
            c_supp * long.support,
            short.support
        ),
        // Condition 2 long-rule branch: even relaxed, long falls short.
        (PruneCondition::Condition2, _) => format!(
            "C_lift x lift(long) = {:.2} x {:.4} = {:.4} < lift(short) = {:.4}",
            c_lift,
            long.lift,
            c_lift * long.lift,
            short.lift
        ),
        // Condition 1 support branch: the long rule keeps enough support.
        (PruneCondition::Condition1, "support") => format!(
            "C_supp x supp(long) = {:.2} x {:.4} = {:.4} >= supp(short) = {:.4}",
            c_supp,
            long.support,
            c_supp * long.support,
            short.support
        ),
        // Conditions 1/3/4 lift branch: the short rule's lift, relaxed,
        // covers the long rule's.
        (_, _) => format!(
            "C_lift x lift(short) = {:.2} x {:.4} = {:.4} >= lift(long) = {:.4}",
            c_lift,
            short.lift,
            c_lift * short.lift,
            long.lift
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::Itemset;

    /// Builds a rule with explicit metrics (counts chosen to match).
    fn mk(ante: &[ItemId], cons: &[ItemId], support: f64, lift: f64) -> Rule {
        Rule {
            antecedent: Itemset::from_items(ante.iter().copied()),
            consequent: Itemset::from_items(cons.iter().copied()),
            support_count: (support * 1000.0) as u64,
            support,
            confidence: 0.5,
            lift,
        }
    }

    const KW: ItemId = 9; // the analysis keyword

    #[test]
    fn condition1_prunes_longer_when_short_lift_comparable() {
        // R1: {user A} => {fail}; R2: {user A, type B} => {fail}.
        let r1 = mk(&[1], &[KW], 0.2, 3.0);
        let r2 = mk(&[1, 2], &[KW], 0.1, 3.5);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        // 1.5 * 3.0 >= 3.5 -> prune the longer rule.
        assert_eq!(out.kept, vec![r1]);
        assert_eq!(out.pruned.len(), 1);
        assert_eq!(out.pruned[0].condition, PruneCondition::Condition1);
        assert_eq!(out.pruned[0].rule, r2);
    }

    #[test]
    fn condition1_prunes_shorter_when_long_wins_on_lift_and_support() {
        // Long rule has clearly higher lift and similar support.
        let r1 = mk(&[1], &[KW], 0.2, 2.0);
        let r2 = mk(&[1, 2], &[KW], 0.18, 3.5);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        // 1.5*2.0 = 3.0 < 3.5, and 1.5*0.18 >= 0.2 -> prune shorter.
        assert_eq!(out.kept, vec![r2]);
        assert_eq!(out.pruned[0].rule, r1);
    }

    #[test]
    fn condition1_keeps_both_when_neither_dominates() {
        // Long has much higher lift but much lower support.
        let r1 = mk(&[1], &[KW], 0.5, 2.0);
        let r2 = mk(&[1, 2], &[KW], 0.05, 3.5);
        let out = prune_rules(&[r1, r2], KW, &PruneParams::default());
        assert_eq!(out.kept.len(), 2);
        assert!(out.pruned.is_empty());
    }

    #[test]
    fn condition2_prefers_more_specific_consequent() {
        // {fail} => {short}; {fail} => {short, clusterC} with similar
        // metrics: keep the longer (more informative) consequent.
        let r1 = mk(&[KW], &[1], 0.2, 3.0);
        let r2 = mk(&[KW], &[1, 2], 0.18, 2.8);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        assert_eq!(out.kept, vec![r2]);
        assert_eq!(out.pruned[0].condition, PruneCondition::Condition2);
    }

    #[test]
    fn condition2_keeps_shorter_when_lift_gap_large() {
        let r1 = mk(&[KW], &[1], 0.2, 6.0);
        let r2 = mk(&[KW], &[1, 2], 0.18, 2.0);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        // 1.5*2.0 < 6.0 -> prune the longer rule.
        assert_eq!(out.kept, vec![r1]);
        assert_eq!(out.pruned[0].rule, r2);
    }

    #[test]
    fn condition3_prefers_concise_consequent_for_cause() {
        // {user A} => {fail}; {user A} => {fail, clusterC}.
        let r1 = mk(&[1], &[KW], 0.2, 3.0);
        let r2 = mk(&[1], &[KW, 2], 0.15, 3.2);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        assert_eq!(out.kept, vec![r1]);
        assert_eq!(out.pruned[0].condition, PruneCondition::Condition3);
    }

    #[test]
    fn condition3_keeps_longer_when_its_lift_is_much_higher() {
        let r1 = mk(&[1], &[KW], 0.2, 1.6);
        let r2 = mk(&[1], &[KW, 2], 0.15, 3.0);
        let out = prune_rules(&[r1, r2], KW, &PruneParams::default());
        // 1.5*1.6 = 2.4 < 3.0: condition 3 does not fire...
        // but condition 2 does not apply (keyword not in antecedent), so
        // both survive.
        assert_eq!(out.kept.len(), 2);
    }

    #[test]
    fn condition4_prunes_longer_antecedent_with_keyword() {
        // {fail} => {short}; {fail, clusterC} => {short}.
        let r1 = mk(&[KW], &[1], 0.2, 3.0);
        let r2 = mk(&[KW, 2], &[1], 0.1, 2.9);
        let out = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        assert_eq!(out.kept, vec![r1]);
        assert_eq!(out.pruned[0].condition, PruneCondition::Condition4);
    }

    #[test]
    fn keyword_free_rules_are_dropped_silently() {
        let r1 = mk(&[1], &[2], 0.2, 3.0);
        let out = prune_rules(&[r1], KW, &PruneParams::default());
        assert!(out.kept.is_empty());
        assert!(out.pruned.is_empty());
    }

    #[test]
    fn marking_semantics_chain() {
        // r3's antecedent nests r2's which nests r1's; r1 kills r2, and
        // neither r1 nor r2 dominates r3 (its lift is far higher without
        // comparable support), so r3 survives.
        let r1 = mk(&[1], &[KW], 0.3, 3.0);
        let r2 = mk(&[1, 2], &[KW], 0.2, 3.1);
        let r3 = mk(&[1, 2, 3], &[KW], 0.1, 10.0);
        let out = prune_rules(&[r1.clone(), r2, r3.clone()], KW, &PruneParams::default());
        assert_eq!(out.kept, vec![r1, r3]);
        assert_eq!(out.pruned.len(), 1);
    }

    #[test]
    fn dominated_rule_still_prunes() {
        // r1 kills r2 on lift; r2 (though dead) still dominates r3 whose
        // lift is within margin of r2's — "exists two rules" semantics.
        let r1 = mk(&[1], &[KW], 0.30, 5.0);
        let r2 = mk(&[1, 2], &[KW], 0.20, 5.5);
        let r3 = mk(&[1, 2, 3], &[KW], 0.18, 5.6);
        let out = prune_rules(&[r1.clone(), r2, r3], KW, &PruneParams::default());
        // 1.5*5.0 >= 5.5 kills r2; 1.5*5.5 >= 5.6 kills r3 (via r2);
        // also 1.5*5.0 >= 5.6 kills r3 via r1 directly.
        assert_eq!(out.kept, vec![r1]);
        assert_eq!(out.pruned.len(), 2);
    }

    #[test]
    fn duplicate_rules_are_not_nested_pairs() {
        // Equal varying sides are not proper subsets of each other, so
        // exact duplicates pass through untouched.
        let r1 = mk(&[1, 2], &[KW], 0.2, 3.0);
        let out = prune_rules(&[r1.clone(), r1.clone()], KW, &PruneParams::default());
        assert_eq!(out.kept, vec![r1.clone(), r1]);
        assert!(out.pruned.is_empty());
    }

    #[test]
    fn metrics_record_per_condition_counts() {
        // Condition 1 removes one rule (see the first test above) and
        // condition 4 removes one from an unrelated family.
        let r1 = mk(&[1], &[KW], 0.2, 3.0);
        let r2 = mk(&[1, 2], &[KW], 0.1, 3.5);
        let r3 = mk(&[KW], &[3], 0.2, 3.0);
        let r4 = mk(&[KW, 2], &[3], 0.1, 2.9);
        let metrics = Metrics::enabled();
        let outcome = prune_rules_with(&[r1, r2, r3, r4], KW, &PruneParams::default(), &metrics);
        assert_eq!(outcome.pruned_by_condition(PruneCondition::Condition1), 1);
        assert_eq!(outcome.pruned_by_condition(PruneCondition::Condition4), 1);
        let snap = metrics.snapshot();
        assert!(snap.counters.contains(&("prune.condition1".to_string(), 1)));
        assert!(snap.counters.contains(&("prune.condition4".to_string(), 1)));
        let event = snap.stage("rules.prune").expect("prune event");
        assert_eq!(event.field("rules_in"), Some(4));
        assert_eq!(event.field("kept"), Some(2));
        assert_eq!(event.field("pruned_condition1"), Some(1));
        assert_eq!(event.field("pruned_condition2"), Some(0));
    }

    #[test]
    fn provenance_records_decisions_and_verdicts() {
        // Same family as `dominated_rule_still_prunes`: r1 kills r2, dead
        // r2 still dominates r3 (an echo edge), r1 also kills r3 first.
        let r1 = mk(&[1], &[KW], 0.30, 5.0);
        let r2 = mk(&[1, 2], &[KW], 0.20, 5.5);
        let r3 = mk(&[1, 2, 3], &[KW], 0.18, 5.6);
        let provenance = Provenance::enabled();
        let out = prune_rules_traced(
            &[r1.clone(), r2.clone(), r3.clone()],
            KW,
            &PruneParams::default(),
            &Metrics::disabled(),
            &provenance,
        );
        assert_eq!(out.kept, vec![r1]);

        let rec1 = provenance.get(&[1], &[KW]).unwrap();
        assert_eq!(rec1.kept, Some(true));
        assert!(rec1.killed_by().is_none());
        assert_eq!(rec1.steps.len(), 2); // beat r2 and r3

        let rec3 = provenance.get(&[1, 2, 3], &[KW]).unwrap();
        assert_eq!(rec3.kept, Some(false));
        // Killed by r1 (pair order reaches (r1, r3) before (r2, r3)); the
        // r2 edge is an echo on an already-dead rule.
        assert_eq!(rec3.killed_by().unwrap().opponent, (vec![1], vec![KW]));
        let echo = rec3
            .steps
            .iter()
            .find(|s| s.opponent == (vec![1, 2], vec![KW]))
            .expect("echo edge from dead r2 recorded");
        assert!(!echo.effective);
        assert!(echo.detail.contains("C_lift"), "{}", echo.detail);
    }

    #[test]
    fn disabled_provenance_does_not_change_outcome() {
        let r1 = mk(&[1], &[KW], 0.2, 3.0);
        let r2 = mk(&[1, 2], &[KW], 0.1, 3.5);
        let plain = prune_rules(&[r1.clone(), r2.clone()], KW, &PruneParams::default());
        let traced = prune_rules_traced(
            &[r1, r2],
            KW,
            &PruneParams::default(),
            &Metrics::disabled(),
            &Provenance::enabled(),
        );
        assert_eq!(plain.kept, traced.kept);
        assert_eq!(plain.pruned, traced.pruned);
    }

    #[test]
    fn invalid_params_rejected_with_typed_error() {
        let params = PruneParams {
            c_lift: 0.5,
            c_supp: 1.5,
        };
        let error = params.validate().unwrap_err();
        assert_eq!(error.c_lift, 0.5);
        assert_eq!(error.c_supp, 1.5);
        assert!(error.to_string().contains(">= 1"), "{error}");
        // NaN margins cannot sneak past the comparison either.
        let nan = PruneParams {
            c_lift: f64::NAN,
            c_supp: 1.5,
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn try_prune_returns_typed_error_instead_of_panicking() {
        let r1 = mk(&[1], &[KW], 0.2, 3.0);
        let params = PruneParams {
            c_lift: 1.5,
            c_supp: 0.0,
        };
        let error = try_prune_rules_traced(
            &[r1],
            KW,
            &params,
            &Metrics::disabled(),
            &Provenance::disabled(),
        )
        .unwrap_err();
        assert_eq!(error.c_supp, 0.0);
    }

    #[test]
    fn large_c_prunes_more() {
        let r1 = mk(&[1], &[KW], 0.2, 2.0);
        let r2 = mk(&[1, 2], &[KW], 0.1, 3.5);
        let loose = prune_rules(
            &[r1.clone(), r2.clone()],
            KW,
            &PruneParams {
                c_lift: 2.0,
                c_supp: 1.0,
            },
        );
        // 2.0*2.0 >= 3.5 -> longer pruned.
        assert_eq!(loose.kept.len(), 1);
        let tight = prune_rules(
            &[r1, r2],
            KW,
            &PruneParams {
                c_lift: 1.0,
                c_supp: 1.0,
            },
        );
        // 1.0*2.0 < 3.5 and 1.0*0.1 < 0.2 -> both stay.
        assert_eq!(tight.kept.len(), 2);
    }
}
