//! LRU result cache keyed by *(dataset fingerprint, normalized config)*.
//!
//! Entries hold the pre-rendered analyze payload plus the rule set, its
//! trie index, the catalog, and the provenance needed to answer
//! `GET /v1/explain/{rule}` later — the explain endpoint only works over
//! cached analyses, which is exactly the workflow (analyze once,
//! interrogate the survivors).
//!
//! Only full-fidelity results are cached: a degraded analysis reflects
//! the budget that produced it, and serving it to a tenant with a
//! roomier budget would silently downgrade their answer. The cache key
//! correspondingly excludes the budget (see
//! [`irma_core::fingerprint::config_cache_key`]).
//!
//! Recency is tracked with per-entry access stamps from a monotone
//! counter: a hit bumps one `u64` (O(1)) instead of splicing a shared
//! order list (the old scheme scanned a `VecDeque` on every touch);
//! eviction scans for the minimum stamp, which is O(n) only when the
//! cache is actually past its cap.

use std::collections::HashMap;
use std::sync::Arc;

use irma_mine::ItemCatalog;
use irma_obs::Provenance;
use irma_rules::{Rule, RuleTrie};

/// One cached analysis.
#[derive(Debug)]
pub struct CacheEntry {
    /// The rendered response payload (everything but the `cached` flag).
    pub payload: String,
    /// Item catalog for label resolution in explain.
    pub catalog: ItemCatalog,
    /// Pruning provenance for explain rendering.
    pub provenance: Provenance,
    /// The generated rules (pre-pruning), for explain metric lookups.
    pub rules: Vec<Rule>,
    /// Shared-prefix index over `rules`; explain resolves exact
    /// `(antecedent, consequent)` rules via trie walk, not linear scan.
    pub trie: RuleTrie,
}

impl CacheEntry {
    /// Resolves a rule by exact sorted `(antecedent, consequent)` ids.
    pub fn find_rule(&self, antecedent: &[u32], consequent: &[u32]) -> Option<&Rule> {
        self.trie
            .find(&self.rules, antecedent, consequent)
            .map(|idx| &self.rules[idx])
    }
}

/// Bounded LRU over `(fingerprint, config_key)`, with a secondary
/// fingerprint index pointing at the most recently inserted entry for
/// each dataset (what `explain?fp=...` resolves against).
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    map: HashMap<(String, String), Slot>,
    /// Monotone access clock; higher stamp = more recently used.
    clock: u64,
    by_fp: HashMap<String, (String, String)>,
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CacheEntry>,
    stamp: u64,
}

impl ResultCache {
    /// A cache holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap: cap.max(1),
            map: HashMap::new(),
            clock: 0,
            by_fp: HashMap::new(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up an exact (fingerprint, config) entry, refreshing its LRU
    /// position.
    pub fn get(&mut self, fingerprint: &str, config_key: &str) -> Option<Arc<CacheEntry>> {
        let key = (fingerprint.to_string(), config_key.to_string());
        let stamp = self.next_stamp();
        let slot = self.map.get_mut(&key)?;
        slot.stamp = stamp;
        Some(slot.entry.clone())
    }

    /// The most recent entry for a fingerprint under any config (the
    /// explain path — provenance and catalog are what matter there).
    pub fn latest_for_fp(&mut self, fingerprint: &str) -> Option<Arc<CacheEntry>> {
        let key = self.by_fp.get(fingerprint)?.clone();
        let stamp = self.next_stamp();
        let slot = self.map.get_mut(&key)?;
        slot.stamp = stamp;
        Some(slot.entry.clone())
    }

    /// Inserts an entry, evicting the least recently used past the cap.
    pub fn insert(&mut self, fingerprint: &str, config_key: &str, entry: CacheEntry) {
        let key = (fingerprint.to_string(), config_key.to_string());
        let stamp = self.next_stamp();
        self.map.insert(
            key.clone(),
            Slot {
                entry: Arc::new(entry),
                stamp,
            },
        );
        self.by_fp.insert(fingerprint.to_string(), key);
        while self.map.len() > self.cap {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            self.map.remove(&victim);
            if self.by_fp.get(&victim.0) == Some(&victim) {
                self.by_fp.remove(&victim.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            payload: tag.to_string(),
            catalog: ItemCatalog::new(),
            provenance: Provenance::disabled(),
            rules: Vec::new(),
            trie: RuleTrie::default(),
        }
    }

    #[test]
    fn lru_evicts_oldest_untouched_entry() {
        let mut cache = ResultCache::new(2);
        cache.insert("fp1", "a", entry("1a"));
        cache.insert("fp2", "a", entry("2a"));
        // Touch fp1 so fp2 is the LRU victim.
        assert!(cache.get("fp1", "a").is_some());
        cache.insert("fp3", "a", entry("3a"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("fp2", "a").is_none(), "LRU entry must be gone");
        assert!(cache.get("fp1", "a").is_some());
        assert!(cache.get("fp3", "a").is_some());
        // The fingerprint index follows the eviction.
        assert!(cache.latest_for_fp("fp2").is_none());
    }

    #[test]
    fn fingerprint_index_tracks_most_recent_config() {
        let mut cache = ResultCache::new(4);
        cache.insert("fp1", "a", entry("old"));
        cache.insert("fp1", "b", entry("new"));
        assert_eq!(cache.latest_for_fp("fp1").unwrap().payload, "new");
        // Exact lookups still reach both configs.
        assert_eq!(cache.get("fp1", "a").unwrap().payload, "old");
    }

    #[test]
    fn reinserting_a_key_replaces_without_growing() {
        let mut cache = ResultCache::new(2);
        cache.insert("fp1", "a", entry("v1"));
        cache.insert("fp1", "a", entry("v2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("fp1", "a").unwrap().payload, "v2");
    }

    #[test]
    fn eviction_order_follows_interleaved_touches() {
        // Fill to cap, then touch entries in a scrambled order through
        // both lookup paths; the victim must always be the entry whose
        // last touch is oldest, across repeated evictions.
        let mut cache = ResultCache::new(3);
        cache.insert("fp1", "a", entry("1"));
        cache.insert("fp2", "a", entry("2"));
        cache.insert("fp3", "a", entry("3"));
        // Recency (old -> new) after these touches: fp3, fp1, fp2.
        assert!(cache.get("fp1", "a").is_some());
        assert!(cache.latest_for_fp("fp2").is_some());
        cache.insert("fp4", "a", entry("4"));
        assert!(cache.get("fp3", "a").is_none(), "fp3 had the oldest touch");
        // Recency now: fp1, fp2, fp4. Touch fp1 via the fp index, making
        // fp2 the next victim.
        assert!(cache.latest_for_fp("fp1").is_some());
        cache.insert("fp5", "a", entry("5"));
        assert!(cache.get("fp2", "a").is_none(), "fp2 had the oldest touch");
        assert!(cache.get("fp1", "a").is_some());
        assert!(cache.get("fp4", "a").is_some());
        assert!(cache.get("fp5", "a").is_some());
    }

    #[test]
    fn find_rule_resolves_via_trie() {
        use irma_mine::Itemset;
        let rule = Rule {
            antecedent: Itemset::from_items([1, 3]),
            consequent: Itemset::from_items([2]),
            support_count: 10,
            support: 0.1,
            confidence: 0.5,
            lift: 2.0,
        };
        let rules = vec![rule.clone()];
        let trie = RuleTrie::over_antecedents(&rules);
        let entry = CacheEntry {
            payload: String::new(),
            catalog: ItemCatalog::new(),
            provenance: Provenance::disabled(),
            rules,
            trie,
        };
        assert_eq!(entry.find_rule(&[1, 3], &[2]), Some(&rule));
        assert!(entry.find_rule(&[1], &[2]).is_none());
        assert!(entry.find_rule(&[1, 3], &[4]).is_none());
    }
}
