//! LRU result cache keyed by *(dataset fingerprint, normalized config)*.
//!
//! Entries hold the pre-rendered analyze payload plus the catalog and
//! provenance needed to answer `GET /v1/explain/{rule}` later — the
//! explain endpoint only works over cached analyses, which is exactly
//! the workflow (analyze once, interrogate the survivors).
//!
//! Only full-fidelity results are cached: a degraded analysis reflects
//! the budget that produced it, and serving it to a tenant with a
//! roomier budget would silently downgrade their answer. The cache key
//! correspondingly excludes the budget (see
//! [`irma_core::fingerprint::config_cache_key`]).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use irma_mine::ItemCatalog;
use irma_obs::Provenance;

/// One cached analysis.
#[derive(Debug)]
pub struct CacheEntry {
    /// The rendered response payload (everything but the `cached` flag).
    pub payload: String,
    /// Item catalog for label resolution in explain.
    pub catalog: ItemCatalog,
    /// Pruning provenance for explain rendering.
    pub provenance: Provenance,
}

/// Bounded LRU over `(fingerprint, config_key)`, with a secondary
/// fingerprint index pointing at the most recently inserted entry for
/// each dataset (what `explain?fp=...` resolves against).
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    map: HashMap<(String, String), Arc<CacheEntry>>,
    /// LRU order; front = least recently used.
    order: VecDeque<(String, String)>,
    by_fp: HashMap<String, (String, String)>,
}

impl ResultCache {
    /// A cache holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            by_fp: HashMap::new(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &(String, String)) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key.clone());
        }
    }

    /// Looks up an exact (fingerprint, config) entry, refreshing its LRU
    /// position.
    pub fn get(&mut self, fingerprint: &str, config_key: &str) -> Option<Arc<CacheEntry>> {
        let key = (fingerprint.to_string(), config_key.to_string());
        let entry = self.map.get(&key).cloned()?;
        self.touch(&key);
        Some(entry)
    }

    /// The most recent entry for a fingerprint under any config (the
    /// explain path — provenance and catalog are what matter there).
    pub fn latest_for_fp(&mut self, fingerprint: &str) -> Option<Arc<CacheEntry>> {
        let key = self.by_fp.get(fingerprint)?.clone();
        let entry = self.map.get(&key).cloned()?;
        self.touch(&key);
        Some(entry)
    }

    /// Inserts an entry, evicting the least recently used past the cap.
    pub fn insert(&mut self, fingerprint: &str, config_key: &str, entry: CacheEntry) {
        let key = (fingerprint.to_string(), config_key.to_string());
        if self.map.insert(key.clone(), Arc::new(entry)).is_none() {
            self.order.push_back(key.clone());
        } else {
            self.touch(&key);
        }
        self.by_fp.insert(fingerprint.to_string(), key);
        while self.map.len() > self.cap {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&victim);
            if self.by_fp.get(&victim.0) == Some(&victim) {
                self.by_fp.remove(&victim.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            payload: tag.to_string(),
            catalog: ItemCatalog::new(),
            provenance: Provenance::disabled(),
        }
    }

    #[test]
    fn lru_evicts_oldest_untouched_entry() {
        let mut cache = ResultCache::new(2);
        cache.insert("fp1", "a", entry("1a"));
        cache.insert("fp2", "a", entry("2a"));
        // Touch fp1 so fp2 is the LRU victim.
        assert!(cache.get("fp1", "a").is_some());
        cache.insert("fp3", "a", entry("3a"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("fp2", "a").is_none(), "LRU entry must be gone");
        assert!(cache.get("fp1", "a").is_some());
        assert!(cache.get("fp3", "a").is_some());
        // The fingerprint index follows the eviction.
        assert!(cache.latest_for_fp("fp2").is_none());
    }

    #[test]
    fn fingerprint_index_tracks_most_recent_config() {
        let mut cache = ResultCache::new(4);
        cache.insert("fp1", "a", entry("old"));
        cache.insert("fp1", "b", entry("new"));
        assert_eq!(cache.latest_for_fp("fp1").unwrap().payload, "new");
        // Exact lookups still reach both configs.
        assert_eq!(cache.get("fp1", "a").unwrap().payload, "old");
    }

    #[test]
    fn reinserting_a_key_replaces_without_growing() {
        let mut cache = ResultCache::new(2);
        cache.insert("fp1", "a", entry("v1"));
        cache.insert("fp1", "a", entry("v2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("fp1", "a").unwrap().payload, "v2");
    }
}
