//! Multi-tenant rule-serving HTTP API for IRMA.
//!
//! `irma-serve` turns the batch pipeline into a long-lived service:
//! `POST /v1/analyze` accepts a CSV body (or an `fp:<fingerprint>`
//! replay token) and returns mined association rules as JSON;
//! `GET /v1/explain/{rule}` answers "why did this rule survive pruning"
//! from cached provenance; `GET /metrics` and `GET /healthz` expose the
//! runtime counters from `irma-obs`.
//!
//! The robustness story reuses the fault-tolerance machinery the CLI
//! already has, mapped onto HTTP:
//!
//! - **Admission** — per-tenant token bucket plus a consecutive-failure
//!   circuit breaker ([`admission`]). Over-rate or cooling-down tenants
//!   get `429` with `Retry-After`; they never reach the miner.
//! - **Bounded queue** — accepted sockets feed a fixed worker pool
//!   through a bounded queue. When it fills, connections are answered
//!   `503` by a capped pool of short-lived rejector threads (the
//!   `irma-obs` scrape pattern); past that cap they are dropped. Load
//!   never spawns unbounded threads.
//! - **Budgets** — every analysis runs under an [`irma_core::ExecBudget`]
//!   with a deadline from the client's `x-irma-timeout-ms` header
//!   (clamped to a server maximum). The degradation ladder applies:
//!   a degraded success is `200` with `degraded:true`, mirroring CLI
//!   exit code 4; exhaustion is `503`/`504`.
//! - **Containment** — each request runs under `catch_unwind`; a
//!   handler panic poisons one response (`500`), never a worker or the
//!   server.
//! - **Caching** — full-fidelity results are cached in an LRU keyed by
//!   *(dataset fingerprint, normalized config)* ([`cache`]), which also
//!   backs the explain endpoint.
//! - **Shutdown** — [`Server::shutdown`] stops accepting, lets workers
//!   drain queued connections, and joins every thread.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use irma_core::ExecBudget;
use irma_obs::Metrics;

pub mod admission;
mod api;
pub mod cache;
pub mod http;

pub use admission::{AdmissionConfig, Admit, TenantState};
pub use cache::{CacheEntry, ResultCache};

use crate::http::json_error;

/// Content type for `GET /metrics` (OpenMetrics text format).
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// HTTP worker threads (each runs one request at a time; the mining
    /// inside a request still uses the work-stealing pool).
    pub workers: usize,
    /// Bounded connection-queue depth; beyond it, connections get 503.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes (413 past this).
    pub max_body_bytes: usize,
    /// Socket read/write timeout (slow-loris bound).
    pub read_timeout: Duration,
    /// Per-tenant rate limiting and circuit-breaker knobs.
    pub admission: AdmissionConfig,
    /// Result-cache capacity (entries).
    pub cache_entries: usize,
    /// Baseline budget applied to every analysis (deadline is replaced
    /// per-request).
    pub default_budget: ExecBudget,
    /// Deadline when the client sends no `x-irma-timeout-ms` header.
    pub default_deadline: Duration,
    /// Hard cap on client-requested deadlines.
    pub max_deadline: Duration,
    /// Honor the `panic_after` chaos query parameter. Test harnesses
    /// only; keep `false` in production.
    pub allow_fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 32,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            admission: AdmissionConfig::default(),
            cache_entries: 64,
            default_budget: ExecBudget::default(),
            default_deadline: Duration::from_secs(5),
            max_deadline: Duration::from_secs(30),
            allow_fault_injection: false,
        }
    }
}

/// State shared between the accept loop, workers, and handlers.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) metrics: Metrics,
    pub(crate) queue: Mutex<VecDeque<TcpStream>>,
    pub(crate) queue_cv: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) rejecting: AtomicUsize,
    pub(crate) tenants: Mutex<HashMap<String, TenantState>>,
    pub(crate) cache: Mutex<ResultCache>,
    pub(crate) started: Instant,
}

impl Shared {
    /// Runs the tenant's admission check, creating state on first sight.
    pub(crate) fn admit(&self, tenant: &str) -> Admit {
        let now = Instant::now();
        let Ok(mut tenants) = self.tenants.lock() else {
            return Admit::Ok;
        };
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::new(&self.config.admission, now));
        state.admit(&self.config.admission, now)
    }

    /// Feeds a request outcome back into the tenant's circuit breaker.
    pub(crate) fn record_outcome(&self, tenant: &str, server_failure: bool) {
        let now = Instant::now();
        if let Ok(mut tenants) = self.tenants.lock() {
            if let Some(state) = tenants.get_mut(tenant) {
                state.record_outcome(server_failure, &self.config.admission, now);
            }
        }
    }

    /// Refreshes the point-in-time gauges before a metrics scrape.
    pub(crate) fn refresh_gauges(&self) {
        self.metrics.gauge(
            "serve.active_connections",
            self.active.load(Ordering::Acquire) as f64,
        );
        self.metrics.gauge(
            "serve.queue_depth",
            self.queue.lock().map(|q| q.len()).unwrap_or(0) as f64,
        );
        self.metrics.gauge(
            "serve.cache_entries",
            self.cache.lock().map(|c| c.len()).unwrap_or(0) as f64,
        );
        self.metrics
            .gauge("serve.uptime_seconds", self.started.elapsed().as_secs_f64());
    }
}

/// A running HTTP server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop, drains queued connections, and joins every
/// thread.
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the accept loop plus the worker pool.
    /// Pass port 0 to bind an ephemeral port; read it back with
    /// [`Server::local_addr`].
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        config: ServeConfig,
        metrics: Metrics,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(config.cache_entries)),
            config,
            metrics,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            rejecting: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("irma-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning serve worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("irma-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning serve accept loop")
        };
        Ok(Server {
            addr: local,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections currently queued or being handled.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Connections waiting in the bounded queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().map(|q| q.len()).unwrap_or(0)
    }

    /// Entries currently held by the result cache.
    pub fn cache_entries(&self) -> usize {
        self.shared.cache.lock().map(|c| c.len()).unwrap_or(0)
    }

    /// Stops accepting, drains queued connections, joins all threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Poke the blocking accept() awake so the loop observes the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.queue_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
        let Ok(mut queue) = shared.queue.lock() else {
            break;
        };
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            shared.metrics.incr("serve.rejected_queue", 1);
            // Reject on a short-lived thread so a slow writer cannot
            // stall the accept loop — but cap those threads too.
            if shared.rejecting.load(Ordering::Acquire) < shared.config.queue_depth {
                shared.rejecting.fetch_add(1, Ordering::AcqRel);
                let for_thread = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("irma-serve-reject".to_string())
                    .spawn(move || {
                        api::reject(stream);
                        for_thread.rejecting.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    shared.rejecting.fetch_sub(1, Ordering::AcqRel);
                }
            }
            // Past the rejector cap the connection is silently dropped:
            // under that much pressure even writing 503s is load.
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let Ok(mut queue) = shared.queue.lock() else {
                return;
            };
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                // Drain-then-exit: the queue-empty check runs before the
                // shutdown check, so queued connections are served first.
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let Ok((guard, _)) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                else {
                    return;
                };
                queue = guard;
            }
        };
        let Some(mut stream) = stream else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| api::handle(shared, &mut stream)));
        if outcome.is_err() {
            shared.metrics.incr("serve.worker_panics", 1);
            let body = json_error("request handler panicked; the panic was contained", "serve");
            let _ = write!(
                stream,
                "HTTP/1.1 500 Internal Server Error\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                body.len(),
                body
            );
        }
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Suppresses the backtrace spray from deliberately injected panics
    /// (the `panic_after` chaos path) without hiding real failures.
    fn quiet_panics() {
        use std::sync::Once;
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("injected"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|m| m.contains("injected"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    fn start_test_server(config: ServeConfig) -> Server {
        Server::start("127.0.0.1:0", config, Metrics::enabled()).expect("bind test server")
    }

    fn send_request(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(request.as_bytes()).expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn post_analyze(addr: std::net::SocketAddr, query: &str, headers: &str, body: &str) -> String {
        send_request(
            addr,
            &format!(
                "POST /v1/analyze{query} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n{headers}\r\n{body}",
                body.len()
            ),
        )
    }

    fn status_of(response: &str) -> u16 {
        response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    const CSV: &str = "gpu_util,state\n0,Failed\n0,Failed\n0,Failed\n95,Succeeded\n90,Succeeded\n92,Succeeded\n0,Failed\n91,Succeeded\n";

    #[test]
    fn healthz_and_metrics_respond() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        let health = send_request(addr, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "got: {health}");
        assert!(health.contains("\"status\":\"ok\""));
        let metrics = send_request(addr, "GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("application/openmetrics-text"));
        assert!(metrics.contains("# EOF"));
        server.shutdown();
    }

    #[test]
    fn analyze_mines_rules_then_serves_from_cache() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        let cold = post_analyze(addr, "?min_support=0.2", "", CSV);
        assert!(cold.starts_with("HTTP/1.1 200"), "got: {cold}");
        assert!(cold.contains("\"cached\":false"));
        assert!(cold.contains("\"degraded\":false"));
        assert!(cold.contains("\"fingerprint\":\""));
        let warm = post_analyze(addr, "?min_support=0.2", "", CSV);
        assert!(warm.contains("\"cached\":true"), "got: {warm}");
        // A different config key misses the cache.
        let other = post_analyze(addr, "?min_support=0.3", "", CSV);
        assert!(other.contains("\"cached\":false"));
        assert_eq!(server.cache_entries(), 2);
        server.shutdown();
    }

    #[test]
    fn fingerprint_replay_and_explain_work_from_cache() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        let cold = post_analyze(addr, "?min_support=0.2", "", CSV);
        let fp = cold
            .split("\"fingerprint\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("fingerprint in response")
            .to_string();
        // Replay by fingerprint instead of re-uploading the CSV.
        let replay = post_analyze(addr, "?min_support=0.2", "", &format!("fp:{fp}"));
        assert!(replay.contains("\"cached\":true"), "got: {replay}");
        // Unknown fingerprint is a clean 404.
        let miss = post_analyze(addr, "?min_support=0.2", "", "fp:0000000000000000");
        assert_eq!(status_of(&miss), 404);
        // Explain a rule that the analysis actually produced.
        let spec = cold
            .split("\"spec\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("at least one rule in response")
            .to_string();
        let encoded: String = spec
            .chars()
            .map(|c| match c {
                ' ' => "%20".to_string(),
                '=' => "%3D".to_string(),
                '>' => "%3E".to_string(),
                ',' => "%2C".to_string(),
                c => c.to_string(),
            })
            .collect();
        let explain = send_request(
            addr,
            &format!("GET /v1/explain/{encoded}?fp={fp} HTTP/1.1\r\nhost: t\r\n\r\n"),
        );
        assert!(explain.starts_with("HTTP/1.1 200"), "got: {explain}");
        assert!(explain.contains("\"explanation\":\""));
        // A made-up rule over cached data is 404, not 500.
        let bogus = send_request(
            addr,
            &format!(
                "GET /v1/explain/nope%20%3D%3E%20also_nope?fp={fp} HTTP/1.1\r\nhost: t\r\n\r\n"
            ),
        );
        assert_eq!(status_of(&bogus), 404);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_typed_errors() {
        let server = start_test_server(ServeConfig {
            max_body_bytes: 1024,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        // Missing Content-Length.
        let no_len = send_request(addr, "POST /v1/analyze HTTP/1.1\r\nhost: t\r\n\r\n");
        assert_eq!(status_of(&no_len), 411);
        // Oversized declared body.
        let big = send_request(
            addr,
            "POST /v1/analyze HTTP/1.1\r\nhost: t\r\ncontent-length: 9999999\r\n\r\n",
        );
        assert_eq!(status_of(&big), 413);
        // Garbage CSV is a 400 from the parse stage.
        let garbage = post_analyze(addr, "", "", "a,b\n1\n2,3,4\n");
        assert_eq!(status_of(&garbage), 400, "got: {garbage}");
        assert!(garbage.contains("\"stage\":"));
        // Unknown algorithm is caught before any work happens.
        let bad_alg = post_analyze(addr, "?algorithm=magic", "", CSV);
        assert_eq!(status_of(&bad_alg), 400);
        // Unknown route and wrong method are typed too.
        let lost = send_request(addr, "GET /nope HTTP/1.1\r\nhost: t\r\n\r\n");
        assert_eq!(status_of(&lost), 404);
        let wrong = send_request(addr, "GET /v1/analyze HTTP/1.1\r\nhost: t\r\n\r\n");
        assert_eq!(status_of(&wrong), 405);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_budget_exhausts_with_504() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        let response = post_analyze(addr, "", "x-irma-timeout-ms: 0\r\n", CSV);
        assert_eq!(status_of(&response), 504, "got: {response}");
        assert!(response.contains("budget exhausted"));
        server.shutdown();
    }

    #[test]
    fn rate_limited_tenant_gets_429_with_retry_after() {
        let server = start_test_server(ServeConfig {
            admission: AdmissionConfig {
                rate_per_sec: 0.5,
                burst: 2.0,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let tenant = "x-irma-tenant: hog\r\n";
        for _ in 0..2 {
            let ok = post_analyze(addr, "?min_support=0.2", tenant, CSV);
            assert_eq!(status_of(&ok), 200);
        }
        let limited = post_analyze(addr, "?min_support=0.2", tenant, CSV);
        assert_eq!(status_of(&limited), 429, "got: {limited}");
        assert!(limited.to_lowercase().contains("retry-after:"));
        // A different tenant is unaffected.
        let other = post_analyze(addr, "?min_support=0.2", "x-irma-tenant: calm\r\n", CSV);
        assert_eq!(status_of(&other), 200);
        server.shutdown();
    }

    #[test]
    fn repeated_server_failures_open_the_tenant_breaker() {
        let server = start_test_server(ServeConfig {
            admission: AdmissionConfig {
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(60),
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let tenant = "x-irma-tenant: unlucky\r\nx-irma-timeout-ms: 0\r\n";
        for _ in 0..2 {
            let timed_out = post_analyze(addr, "", tenant, CSV);
            assert_eq!(status_of(&timed_out), 504);
        }
        // Third request trips the breaker before any mining happens.
        let shed = post_analyze(addr, "", tenant, CSV);
        assert_eq!(status_of(&shed), 429, "got: {shed}");
        assert!(shed.contains("cooling down"));
        // Healthy tenants keep working while the breaker is open.
        let healthy = post_analyze(addr, "?min_support=0.2", "x-irma-tenant: fine\r\n", CSV);
        assert_eq!(status_of(&healthy), 200);
        server.shutdown();
    }

    #[test]
    fn worker_panic_is_contained_to_one_response() {
        quiet_panics();
        let server = start_test_server(ServeConfig {
            allow_fault_injection: true,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let hit = post_analyze(addr, "?panic_after=1&min_support=0.2", "", CSV);
        assert_eq!(status_of(&hit), 500, "got: {hit}");
        // The worker that absorbed the panic still serves the next one.
        let next = post_analyze(addr, "?min_support=0.2", "", CSV);
        assert_eq!(status_of(&next), 200, "got: {next}");
        assert_eq!(server.active_connections(), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_connections() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        // Park a request, then shut down; the drain must answer it.
        let handle = std::thread::spawn(move || {
            send_request(addr, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        });
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        let response = handle.join().expect("client thread");
        assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    }

    #[test]
    fn oversized_head_gets_431_through_the_full_stack() {
        let server = start_test_server(ServeConfig::default());
        let addr = server.local_addr();
        let padding = "x".repeat(10 * 1024);
        let response = send_request(
            addr,
            &format!("GET /healthz HTTP/1.1\r\nhost: t\r\nx-pad: {padding}\r\n\r\n"),
        );
        assert!(response.starts_with("HTTP/1.1 431"), "got: {response}");
        server.shutdown();
    }
}
