//! Request routing and the analyze/explain handlers.
//!
//! Every [`PipelineError`] maps to a documented status (the table lives
//! in DESIGN.md §11 and must stay in sync with [`status_for`]):
//!
//! | error | status |
//! |---|---|
//! | `Parse` | 400 |
//! | `Mine` (invalid miner config) | 400 |
//! | `Encode` | 422 |
//! | `BudgetExceeded` (deadline) | 504 |
//! | `BudgetExceeded` (other) | 503 + `Retry-After` |
//! | `Mine` (contained panic) | 500 |
//! | `Rules` / `WorkerPanic` | 500 |
//!
//! A degraded-but-successful analysis is **200** with `degraded:true`
//! and the full `Degradation` record — the HTTP mirror of CLI exit
//! code 4.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use irma_core::{
    config_cache_key, dataset_fingerprint, pai_spec, philly_spec, supercloud_spec,
    try_analyze_traced, Analysis, AnalysisConfig, BudgetBreach, PipelineError, Provenance,
};
use irma_data::DType;
use irma_mine::Algorithm;
use irma_obs::serve::{read_head, write_response, write_too_large, HeadError, RequestHead};
use irma_prep::{EncoderSpec, FeatureSpec};
use irma_rules::Rule;

use crate::admission::Admit;
use crate::cache::CacheEntry;
use crate::http::{json_error, json_escape, parse_query, percent_decode, query_get, read_body};
use crate::{Shared, OPENMETRICS_CONTENT_TYPE};

/// One computed response, ready to write.
struct Reply {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    retry_after: Option<u64>,
    body: String,
}

impl Reply {
    fn json(status: u16, reason: &'static str, body: String) -> Reply {
        Reply {
            status,
            reason,
            content_type: "application/json",
            retry_after: None,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, message: &str, stage: &str) -> Reply {
        Reply::json(status, reason, json_error(message, stage))
    }

    fn with_retry_after(mut self, secs: u64) -> Reply {
        self.retry_after = Some(secs);
        self
    }
}

/// Serves one connection end to end: head, route, body, response.
/// Called on an HTTP worker thread; the caller wraps it in
/// `catch_unwind` so a handler panic costs this response, not the
/// worker.
pub(crate) fn handle(shared: &Shared, stream: &mut TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let head = match read_head(&mut reader) {
        Ok(head) => head,
        Err(HeadError::TooLarge) => {
            shared.metrics.incr("serve.rejected_head", 1);
            write_too_large(stream);
            return;
        }
        Err(HeadError::Closed) => {
            shared.metrics.incr("serve.dropped_connections", 1);
            return;
        }
    };
    shared.metrics.incr("serve.requests", 1);
    let reply = route(shared, &head, &mut reader);
    let Some(reply) = reply else {
        // Mid-body disconnect or stall: nobody left to answer.
        shared.metrics.incr("serve.dropped_connections", 1);
        return;
    };
    let class = match reply.status {
        200..=299 => "serve.responses_2xx",
        400..=499 => "serve.responses_4xx",
        _ => "serve.responses_5xx",
    };
    shared.metrics.incr(class, 1);
    let retry = reply
        .retry_after
        .map(|secs| [("Retry-After", secs.to_string())]);
    write_response(
        stream,
        reply.status,
        reply.reason,
        reply.content_type,
        retry.as_ref().map_or(&[][..], |h| &h[..]),
        &reply.body,
    );
}

/// Maps `(method, path)` to a handler. `None` from a handler means the
/// connection died mid-request and must be dropped without a response.
fn route<R: BufRead>(shared: &Shared, head: &RequestHead, reader: &mut R) -> Option<Reply> {
    let path = head.route().to_string();
    match (head.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => Some(handle_healthz(shared)),
        ("GET", "/metrics") => Some(handle_metrics(shared)),
        ("POST", "/v1/analyze") => handle_analyze(shared, head, reader),
        (_, "/v1/analyze") => Some(Reply::error(
            405,
            "Method Not Allowed",
            "analyze is POST-only",
            "serve",
        )),
        ("GET", p) if p.starts_with("/v1/explain/") => Some(handle_explain(shared, head)),
        (_, p) if p.starts_with("/v1/explain/") || p == "/healthz" || p == "/metrics" => Some(
            Reply::error(405, "Method Not Allowed", "use GET for this route", "serve"),
        ),
        _ => Some(Reply::error(404, "Not Found", "unknown route", "serve")),
    }
}

fn handle_healthz(shared: &Shared) -> Reply {
    let body = format!(
        "{{\"status\":\"ok\",\"uptime_seconds\":{:.3},\"active_connections\":{},\"queue_depth\":{},\"cache_entries\":{},\"degraded\":{}}}\n",
        shared.started.elapsed().as_secs_f64(),
        shared.active.load(std::sync::atomic::Ordering::Acquire),
        shared.queue.lock().map(|q| q.len()).unwrap_or(0),
        shared.cache.lock().map(|c| c.len()).unwrap_or(0),
        shared.metrics.is_degraded(),
    );
    Reply::json(200, "OK", body)
}

fn handle_metrics(shared: &Shared) -> Reply {
    shared.refresh_gauges();
    Reply {
        status: 200,
        reason: "OK",
        content_type: OPENMETRICS_CONTENT_TYPE,
        retry_after: None,
        body: shared.metrics.snapshot().to_openmetrics(),
    }
}

/// Parsed analyze-request knobs (query string + headers).
struct AnalyzeParams {
    config: AnalysisConfig,
    trace: Option<String>,
    keyword: Option<String>,
    top: usize,
}

fn parse_analyze_params(shared: &Shared, head: &RequestHead) -> Result<AnalyzeParams, Reply> {
    let bad = |message: String| Reply::error(400, "Bad Request", &message, "serve");
    let pairs = parse_query(head.query().unwrap_or(""));
    let mut config = AnalysisConfig::default();
    if let Some(name) = query_get(&pairs, "algorithm") {
        config.algorithm = Algorithm::all()
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| {
                bad(format!(
                    "unknown algorithm `{name}` (fpgrowth|apriori|eclat)"
                ))
            })?;
    }
    if let Some(raw) = query_get(&pairs, "min_support") {
        let value: f64 = raw
            .parse()
            .map_err(|_| bad(format!("min_support must be a number (got `{raw}`)")))?;
        if !(value > 0.0 && value <= 1.0) {
            return Err(bad(format!("min_support must be in (0, 1] (got {value})")));
        }
        config.miner.min_support = value;
    }
    if let Some(raw) = query_get(&pairs, "max_len") {
        let value: usize = raw
            .parse()
            .map_err(|_| bad(format!("max_len must be a positive integer (got `{raw}`)")))?;
        if value == 0 {
            return Err(bad("max_len must be at least 1".to_string()));
        }
        config.miner.max_len = value;
    }
    if let Some(raw) = query_get(&pairs, "min_lift") {
        config.rules.min_lift = raw
            .parse()
            .map_err(|_| bad(format!("min_lift must be a number (got `{raw}`)")))?;
    }
    if let Some(raw) = query_get(&pairs, "min_confidence") {
        config.rules.min_confidence = raw
            .parse()
            .map_err(|_| bad(format!("min_confidence must be a number (got `{raw}`)")))?;
    }
    let trace = match query_get(&pairs, "trace") {
        Some(name) => {
            if !["pai", "supercloud", "philly"].contains(&name) {
                return Err(bad(format!(
                    "unknown trace `{name}` (pai|supercloud|philly)"
                )));
            }
            Some(name.to_string())
        }
        None => None,
    };
    let keyword = query_get(&pairs, "keyword").map(str::to_string);
    let top = match query_get(&pairs, "top") {
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or_else(|| bad(format!("top must be a positive integer (got `{raw}`)")))?,
        None => 10,
    };

    // Budget: the server's caps plus a deadline from the client's
    // timeout header, clamped to the server maximum.
    config.budget = shared.config.default_budget.clone();
    let deadline = match head.header("x-irma-timeout-ms") {
        Some(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                bad(format!(
                    "x-irma-timeout-ms must be milliseconds (got `{raw}`)"
                ))
            })?;
            Duration::from_millis(ms).min(shared.config.max_deadline)
        }
        None => shared.config.default_deadline,
    };
    config.budget.deadline = Some(deadline);
    // Chaos-only: inject a worker panic after N itemset emissions. Only
    // honored when the server was built with fault injection enabled
    // (the chaos harness); production servers ignore the parameter.
    if shared.config.allow_fault_injection {
        if let Some(raw) = query_get(&pairs, "panic_after") {
            config.budget.panic_after_emits = raw.parse().ok();
        }
    }
    Ok(AnalyzeParams {
        config,
        trace,
        keyword,
        top,
    })
}

/// Infers an encoder spec from CSV column types: numeric columns get the
/// paper's 4-bin equal-frequency treatment, everything else is
/// categorical. Good enough for ad-hoc datasets; the `trace` query
/// parameter selects a hand-tuned spec instead.
fn infer_spec(frame: &irma_data::Frame) -> EncoderSpec {
    let features = frame
        .names()
        .iter()
        .zip(frame.columns())
        .map(|(name, column)| match column.dtype() {
            DType::Int | DType::Float => FeatureSpec::numeric(name, name),
            DType::Str | DType::Bool => FeatureSpec::categorical(name, name),
        })
        .collect();
    EncoderSpec::new(features)
}

fn spec_for_trace(trace: &str) -> EncoderSpec {
    match trace {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => unreachable!("trace validated at parse time: {other}"),
    }
}

/// Maps a typed pipeline failure to its documented status.
fn status_for(error: &PipelineError) -> Reply {
    let stage = error.stage();
    match error {
        PipelineError::Parse(message) => Reply::error(400, "Bad Request", message, stage),
        PipelineError::Encode(message) => Reply::error(422, "Unprocessable Entity", message, stage),
        PipelineError::Mine(message) if message.contains("invalid miner config") => {
            Reply::error(400, "Bad Request", message, stage)
        }
        PipelineError::Mine(message) | PipelineError::Rules(message) => {
            Reply::error(500, "Internal Server Error", message, stage)
        }
        PipelineError::BudgetExceeded { breach, attempts } => {
            let message = format!(
                "budget exhausted after {attempts} attempt(s): {breach:?}; \
                 relax thresholds or raise x-irma-timeout-ms"
            );
            match breach {
                BudgetBreach::Deadline { .. } => {
                    Reply::error(504, "Gateway Timeout", &message, stage)
                }
                _ => Reply::error(503, "Service Unavailable", &message, stage).with_retry_after(1),
            }
        }
        PipelineError::WorkerPanic { message, .. } => Reply::error(
            500,
            "Internal Server Error",
            &format!("a mining worker panicked (contained): {message}"),
            stage,
        ),
    }
}

fn handle_analyze<R: BufRead>(
    shared: &Shared,
    head: &RequestHead,
    reader: &mut R,
) -> Option<Reply> {
    // Content-Length is mandatory: the server refuses to guess body
    // boundaries (no chunked encoding in this hand-rolled core).
    let Some(raw_len) = head.header("content-length") else {
        return Some(Reply::error(
            411,
            "Length Required",
            "analyze requires a Content-Length header",
            "serve",
        ));
    };
    let Ok(len) = raw_len.parse::<usize>() else {
        return Some(Reply::error(
            400,
            "Bad Request",
            &format!("invalid Content-Length `{raw_len}`"),
            "serve",
        ));
    };
    if len > shared.config.max_body_bytes {
        return Some(Reply::error(
            413,
            "Content Too Large",
            &format!(
                "body of {len} bytes exceeds the {} byte cap",
                shared.config.max_body_bytes
            ),
            "serve",
        ));
    }
    if len == 0 {
        return Some(Reply::error(
            400,
            "Bad Request",
            "empty body: send CSV text or `fp:<fingerprint>`",
            "serve",
        ));
    }
    let body = match read_body(reader, len) {
        Ok(body) => body,
        Err(_) => return None,
    };
    let Ok(text) = String::from_utf8(body) else {
        return Some(Reply::error(
            400,
            "Bad Request",
            "body is not valid UTF-8",
            "serve",
        ));
    };

    // Admission: tenant identified by header, token bucket + breaker.
    let tenant: String = head
        .header("x-irma-tenant")
        .unwrap_or("anonymous")
        .chars()
        .take(64)
        .collect();
    match shared.admit(&tenant) {
        Admit::Ok => {}
        Admit::RateLimited(secs) => {
            shared.metrics.incr("serve.rejected_rate", 1);
            return Some(
                Reply::error(
                    429,
                    "Too Many Requests",
                    &format!("tenant `{tenant}` is over its request rate"),
                    "serve",
                )
                .with_retry_after(secs),
            );
        }
        Admit::BreakerOpen(secs) => {
            shared.metrics.incr("serve.rejected_breaker", 1);
            return Some(
                Reply::error(
                    429,
                    "Too Many Requests",
                    &format!(
                        "tenant `{tenant}` is cooling down after repeated server-side failures"
                    ),
                    "serve",
                )
                .with_retry_after(secs),
            );
        }
    }

    let params = match parse_analyze_params(shared, head) {
        Ok(params) => params,
        Err(reply) => return Some(reply),
    };
    let config_key = config_cache_key(&params.config, params.keyword.as_deref(), params.top);

    // `fp:<hex>` body: replay a cached dataset without re-uploading.
    let trimmed = text.trim();
    if let Some(fp) = trimmed.strip_prefix("fp:") {
        let fp = fp.trim();
        let hit = shared
            .cache
            .lock()
            .ok()
            .and_then(|mut cache| cache.get(fp, &config_key));
        return Some(match hit {
            Some(entry) => {
                shared.metrics.incr("serve.cache_hits", 1);
                Reply::json(
                    200,
                    "OK",
                    format!("{{\"cached\":true,{}}}\n", entry.payload),
                )
            }
            None => Reply::error(
                404,
                "Not Found",
                &format!("fingerprint `{fp}` is not cached under this config; POST the CSV body"),
                "serve",
            ),
        });
    }

    let fp = dataset_fingerprint(text.as_bytes());
    if let Some(entry) = shared
        .cache
        .lock()
        .ok()
        .and_then(|mut cache| cache.get(&fp, &config_key))
    {
        shared.metrics.incr("serve.cache_hits", 1);
        return Some(Reply::json(
            200,
            "OK",
            format!("{{\"cached\":true,{}}}\n", entry.payload),
        ));
    }
    shared.metrics.incr("serve.cache_misses", 1);

    // Cold path: parse, pick a spec, mine under the tenant's budget.
    let reply = run_analysis(shared, &text, &fp, &params, &config_key);
    shared.record_outcome(&tenant, reply.status >= 500);
    Some(reply)
}

fn run_analysis(
    shared: &Shared,
    csv: &str,
    fp: &str,
    params: &AnalyzeParams,
    config_key: &str,
) -> Reply {
    let frame = match irma_data::read_csv_str(csv) {
        Ok(frame) => frame,
        Err(error) => {
            return status_for(&PipelineError::Parse(error.to_string()));
        }
    };
    let spec = match &params.trace {
        Some(trace) => spec_for_trace(trace),
        None => infer_spec(&frame),
    };
    let provenance = Provenance::enabled();
    let result = catch_unwind(AssertUnwindSafe(|| {
        try_analyze_traced(&frame, &spec, &params.config, &shared.metrics, &provenance)
    }));
    let analysis = match result {
        Ok(Ok(analysis)) => analysis,
        Ok(Err(error)) => return status_for(&error),
        Err(_) => {
            // try_analyze_traced contains stage panics itself; this is
            // the belt-and-braces for anything that leaks past it.
            return Reply::error(
                500,
                "Internal Server Error",
                "analysis panicked; the panic was contained",
                "serve",
            );
        }
    };
    let payload = render_payload(shared, &analysis, fp, params, &provenance);
    let degraded = analysis.degradation.is_some();
    if !degraded {
        if let Ok(mut cache) = shared.cache.lock() {
            cache.insert(
                fp,
                config_key,
                CacheEntry {
                    payload: payload.clone(),
                    catalog: analysis.encoded.catalog.clone(),
                    provenance,
                    rules: analysis.rules.clone(),
                    trie: analysis.rule_trie.clone(),
                },
            );
        }
    }
    Reply::json(200, "OK", format!("{{\"cached\":false,{payload}}}\n"))
}

fn render_rule(rule: &Rule, catalog: &irma_mine::ItemCatalog) -> String {
    let labels = |items: &[u32]| {
        items
            .iter()
            .map(|&id| format!("\"{}\"", json_escape(catalog.label(id))))
            .collect::<Vec<_>>()
            .join(",")
    };
    let spec = format!(
        "{} => {}",
        rule.antecedent
            .items()
            .iter()
            .map(|&id| catalog.label(id).to_string())
            .collect::<Vec<_>>()
            .join(", "),
        rule.consequent
            .items()
            .iter()
            .map(|&id| catalog.label(id).to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    format!(
        "{{\"antecedent\":[{}],\"consequent\":[{}],\"spec\":\"{}\",\"support\":{},\"confidence\":{},\"lift\":{}}}",
        labels(rule.antecedent.items()),
        labels(rule.consequent.items()),
        json_escape(&spec),
        rule.support,
        rule.confidence,
        rule.lift,
    )
}

fn top_rules(rules: &[Rule], top: usize) -> Vec<&Rule> {
    let mut sorted: Vec<&Rule> = rules.iter().collect();
    sorted.sort_by(|a, b| {
        b.lift
            .total_cmp(&a.lift)
            .then_with(|| a.antecedent.items().cmp(b.antecedent.items()))
            .then_with(|| a.consequent.items().cmp(b.consequent.items()))
    });
    sorted.truncate(top);
    sorted
}

/// Renders the response payload (everything except the `cached` flag,
/// which differs between the cold and cache-hit paths).
fn render_payload(
    shared: &Shared,
    analysis: &Analysis,
    fp: &str,
    params: &AnalyzeParams,
    provenance: &Provenance,
) -> String {
    let catalog = &analysis.encoded.catalog;
    let rules_json = top_rules(&analysis.rules, params.top)
        .iter()
        .map(|rule| render_rule(rule, catalog))
        .collect::<Vec<_>>()
        .join(",");
    let degradation = match &analysis.degradation {
        None => "null".to_string(),
        Some(record) => {
            let steps = record
                .steps
                .iter()
                .map(|step| {
                    format!(
                        "{{\"breach\":\"{:?}\",\"min_support\":{},\"max_len\":{}}}",
                        step.breach, step.failed_min_support, step.failed_max_len
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"attempts\":{},\"final_min_support\":{},\"final_max_len\":{},\"steps\":[{steps}]}}",
                record.attempts(),
                record.final_min_support,
                record.final_max_len,
            )
        }
    };
    let keyword_json = match &params.keyword {
        None => String::new(),
        Some(label) => {
            let causes = analysis
                .keyword_traced(label, &shared.metrics, provenance)
                .map(|ka| ka.causes);
            match causes {
                None => format!(
                    ",\"keyword\":{{\"label\":\"{}\",\"present\":false,\"causes\":[]}}",
                    json_escape(label)
                ),
                Some(causes) => {
                    let causes_json = top_rules(&causes, params.top)
                        .iter()
                        .map(|rule| render_rule(rule, catalog))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        ",\"keyword\":{{\"label\":\"{}\",\"present\":true,\"causes\":[{causes_json}]}}",
                        json_escape(label)
                    )
                }
            }
        }
    };
    format!(
        "\"fingerprint\":\"{fp}\",\"degraded\":{},\"degradation\":{degradation},\"jobs\":{},\"items\":{},\"frequent_itemsets\":{},\"rules_total\":{},\"rules\":[{rules_json}]{keyword_json}",
        analysis.degradation.is_some(),
        analysis.n_jobs(),
        catalog.len(),
        analysis.frequent.len(),
        analysis.rules.len(),
    )
}

fn handle_explain(shared: &Shared, head: &RequestHead) -> Reply {
    let rule_spec = percent_decode(
        head.route()
            .strip_prefix("/v1/explain/")
            .unwrap_or_default(),
    );
    let pairs = parse_query(head.query().unwrap_or(""));
    let Some(fp) = query_get(&pairs, "fp") else {
        return Reply::error(
            400,
            "Bad Request",
            "explain requires ?fp=<fingerprint> from a prior analyze response",
            "serve",
        );
    };
    let entry = shared
        .cache
        .lock()
        .ok()
        .and_then(|mut cache| cache.latest_for_fp(fp));
    let Some(entry) = entry else {
        return Reply::error(
            404,
            "Not Found",
            &format!("fingerprint `{fp}` is not cached; POST /v1/analyze first"),
            "serve",
        );
    };
    let Some((lhs, rhs)) = rule_spec.split_once("=>") else {
        return Reply::error(
            400,
            "Bad Request",
            "rule must look like `A, B => C` (URL-encoded)",
            "serve",
        );
    };
    let side = |s: &str| -> Result<Vec<u32>, String> {
        let labels: Vec<&str> = s
            .split(',')
            .map(str::trim)
            .filter(|label| !label.is_empty())
            .collect();
        if labels.is_empty() {
            return Err("rule needs labels on both sides of `=>`".to_string());
        }
        let mut ids = Vec::with_capacity(labels.len());
        for label in labels {
            match entry.catalog.id(label) {
                Some(id) => ids.push(id),
                None => return Err(format!("unknown item label `{label}`")),
            }
        }
        ids.sort_unstable();
        Ok(ids)
    };
    let (ante, cons) = match (side(lhs), side(rhs)) {
        (Ok(a), Ok(c)) => (a, c),
        (Err(message), _) | (_, Err(message)) => {
            return Reply::error(404, "Not Found", &message, "serve");
        }
    };
    let labeler = |id: u32| entry.catalog.label(id).to_string();
    // Rule metrics resolve via the cached trie index (no linear scan of
    // the flat rule export). A provenance chain can exist for a candidate
    // that the generation thresholds later dropped, so this is `null`able.
    let metrics_json = match entry.find_rule(&ante, &cons) {
        Some(rule) => render_rule(rule, &entry.catalog),
        None => "null".to_string(),
    };
    match entry.provenance.render_explain(&ante, &cons, &labeler) {
        Some(explanation) => Reply::json(
            200,
            "OK",
            format!(
                "{{\"rule\":\"{}\",\"fingerprint\":\"{}\",\"metrics\":{},\"explanation\":\"{}\"}}\n",
                json_escape(rule_spec.trim()),
                json_escape(fp),
                metrics_json,
                json_escape(&explanation)
            ),
        ),
        None => Reply::error(
            404,
            "Not Found",
            "rule was never a candidate in this analysis (check labels and thresholds)",
            "serve",
        ),
    }
}

/// Over-capacity path (bounded queue full): drain the head, answer 503
/// with `Retry-After`, close. Oversized heads still earn their 431.
pub(crate) fn reject(stream: TcpStream) {
    let mut stream = stream;
    match read_head(&mut BufReader::new(&stream)) {
        Ok(_) => write_response(
            &mut stream,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "1".to_string())],
            &json_error("request queue is full", "serve"),
        ),
        Err(HeadError::TooLarge) => write_too_large(&mut stream),
        Err(HeadError::Closed) => {}
    }
}
