//! Per-tenant admission control: token-bucket rate limiting plus a
//! consecutive-failure circuit breaker.
//!
//! Both mechanisms live in one [`TenantState`] so a single map lookup
//! decides admission. The bucket shapes *rate* (a well-behaved tenant
//! bursting briefly is fine; a hot loop is not); the breaker sheds
//! *repeat offenders* — a tenant whose requests keep failing server-side
//! (budget exhaustion, worker panics) is cooled down entirely instead of
//! burning mining capacity on requests that will fail again.

use std::time::{Duration, Instant};

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Run it.
    Ok,
    /// Token bucket empty: `429` with this `Retry-After` (seconds).
    RateLimited(u64),
    /// Circuit breaker open: `429` with this `Retry-After` (seconds).
    BreakerOpen(u64),
}

/// Knobs for [`TenantState::admit`] / [`TenantState::record_outcome`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate (requests per second).
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst size).
    pub burst: f64,
    /// Consecutive server-side failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds the tenant.
    pub breaker_cooldown: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: 20.0,
            burst: 8.0,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Rate/failure state for one tenant.
#[derive(Debug)]
pub struct TenantState {
    tokens: f64,
    last_refill: Instant,
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

impl TenantState {
    /// A fresh tenant starts with a full bucket and a closed breaker.
    pub fn new(config: &AdmissionConfig, now: Instant) -> TenantState {
        TenantState {
            tokens: config.burst,
            last_refill: now,
            consecutive_failures: 0,
            open_until: None,
        }
    }

    /// Decides whether a request from this tenant runs now.
    pub fn admit(&mut self, config: &AdmissionConfig, now: Instant) -> Admit {
        if let Some(until) = self.open_until {
            if now < until {
                let secs = (until - now).as_secs_f64().ceil().max(1.0) as u64;
                return Admit::BreakerOpen(secs);
            }
            // Cooldown served: close the breaker, forgive the streak.
            self.open_until = None;
            self.consecutive_failures = 0;
        }
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * config.rate_per_sec).min(config.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Admit::Ok
        } else {
            let deficit = 1.0 - self.tokens;
            let secs = (deficit / config.rate_per_sec.max(f64::MIN_POSITIVE))
                .ceil()
                .max(1.0) as u64;
            Admit::RateLimited(secs)
        }
    }

    /// Records the outcome of an admitted request. `server_failure`
    /// means a 5xx-class response (the server did work and failed);
    /// client errors and successes both close the failure streak — a
    /// tenant sending garbage wastes little and is already rate-shaped.
    pub fn record_outcome(&mut self, server_failure: bool, config: &AdmissionConfig, now: Instant) {
        if server_failure {
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            if self.consecutive_failures >= config.breaker_threshold {
                self.open_until = Some(now + config.breaker_cooldown);
            }
        } else {
            self.consecutive_failures = 0;
        }
    }

    /// Whether the breaker is currently open at `now`.
    pub fn breaker_open(&self, now: Instant) -> bool {
        self.open_until.is_some_and(|until| now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec: 10.0,
            burst: 2.0,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
        }
    }

    #[test]
    fn bucket_admits_burst_then_limits_then_refills() {
        let config = config();
        let t0 = Instant::now();
        let mut tenant = TenantState::new(&config, t0);
        assert_eq!(tenant.admit(&config, t0), Admit::Ok);
        assert_eq!(tenant.admit(&config, t0), Admit::Ok);
        assert!(matches!(tenant.admit(&config, t0), Admit::RateLimited(_)));
        // 100 ms refills one token at 10 req/s.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(tenant.admit(&config, t1), Admit::Ok);
    }

    #[test]
    fn breaker_opens_after_threshold_and_cools_down() {
        let config = config();
        let t0 = Instant::now();
        let mut tenant = TenantState::new(&config, t0);
        for _ in 0..3 {
            assert_eq!(tenant.admit(&config, t0), Admit::Ok);
            tenant.record_outcome(true, &config, t0);
            // Keep the bucket from interfering with the breaker test.
            tenant.tokens = config.burst;
        }
        assert!(tenant.breaker_open(t0));
        let verdict = tenant.admit(&config, t0);
        assert!(matches!(verdict, Admit::BreakerOpen(secs) if secs >= 1));
        // After the cooldown the breaker closes and the streak resets.
        let t1 = t0 + Duration::from_secs(6);
        assert_eq!(tenant.admit(&config, t1), Admit::Ok);
        assert!(!tenant.breaker_open(t1));
        assert_eq!(tenant.consecutive_failures, 0);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let config = config();
        let t0 = Instant::now();
        let mut tenant = TenantState::new(&config, t0);
        tenant.record_outcome(true, &config, t0);
        tenant.record_outcome(true, &config, t0);
        tenant.record_outcome(false, &config, t0);
        tenant.record_outcome(true, &config, t0);
        assert!(!tenant.breaker_open(t0), "streak must reset on success");
    }
}
