//! Small HTTP/JSON helpers for the serving layer.
//!
//! The request head reader and response writer live in
//! [`irma_obs::serve`] (shared with the scrape endpoint); this module
//! adds what a POST API needs on top: bounded body reads, query-string
//! parsing with percent-decoding, and JSON string escaping for the
//! hand-rolled response bodies.

use std::io::BufRead;

/// Decodes `%XX` escapes and `+`-for-space in a URL component. Invalid
/// escapes pass through verbatim (a garbled request earns a 400 later,
/// not a panic here).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    std::str::from_utf8(pair)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string (`a=1&b=x%20y`) into decoded key/value pairs.
/// Keys without `=` get an empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// First value for `key` in parsed query pairs.
pub fn query_get<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a `{"error": ..., "stage": ...}` JSON body.
pub fn json_error(message: &str, stage: &str) -> String {
    format!(
        "{{\"error\":\"{}\",\"stage\":\"{}\"}}\n",
        json_escape(message),
        json_escape(stage)
    )
}

/// Reads exactly `len` body bytes. `Err` means the client disconnected
/// or stalled past the socket deadline mid-body — the caller drops the
/// connection (there is nobody left to answer).
pub fn read_body<R: BufRead>(reader: &mut R, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_roundtrips() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("SM%20Util%20%3D%200%25"), "SM Util = 0%");
        // Invalid escapes pass through rather than panicking.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_parsing_decodes_pairs() {
        let pairs = parse_query("trace=pai&keyword=State%3DFailed&flag");
        assert_eq!(query_get(&pairs, "trace"), Some("pai"));
        assert_eq!(query_get(&pairs, "keyword"), Some("State=Failed"));
        assert_eq!(query_get(&pairs, "flag"), Some(""));
        assert_eq!(query_get(&pairs, "missing"), None);
    }

    #[test]
    fn json_escape_handles_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
