//! Discretization of continuous features (§III-E).
//!
//! The paper bins continuous attributes into quartiles via *equal
//! frequency* binning, after peeling off two kinds of special values:
//!
//! * a *zero bin* for zero-inflated features (`SM Util = 0%`,
//!   `GMem Used = 0GB`);
//! * a *spike bin* for default request values (`CPU Request = Std` —
//!   roughly half of PAI jobs request exactly the standard 600 cores).
//!
//! Equal-*width* binning is also implemented because the paper evaluates
//! and rejects it (long-tailed features leave high bins empty); the
//! ablation bench reproduces that comparison.

/// How bin edges are derived from the observed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BinningScheme {
    /// Edges at quantiles: every bin holds ~the same number of points.
    #[default]
    EqualFrequency,
    /// Edges evenly spaced over `[min, max]`.
    EqualWidth,
}

/// Computed edges for one feature: `edges.len() == n_bins - 1` interior
/// boundaries; value `v` lands in bin `i` iff `edges[i-1] < v <= edges[i]`
/// (left-open/right-closed, first bin open below). Right-closed intervals
/// make heavy tie masses — e.g. the >50% zero queue waits on an unloaded
/// pool — land in the *lowest* bin, which is what `Queue = Bin1` must mean.
#[derive(Debug, Clone, PartialEq)]
pub struct BinEdges {
    edges: Vec<f64>,
    n_bins: usize,
}

impl BinEdges {
    /// Fits edges over `values`, ignoring non-finite entries (NaN, ±inf):
    /// trace columns routinely carry sentinel NaNs for never-scheduled
    /// jobs, and a single one reaching the sort would poison every edge
    /// in a release build.
    ///
    /// Returns `None` when no finite values remain. With heavily tied
    /// data, equal-frequency edges may coincide; values equal to a run of
    /// duplicate edges land below the whole run (right-closed intervals),
    /// so the tied mass fills the lowest bin and the skipped bins are
    /// simply empty.
    pub fn fit(values: &[f64], n_bins: usize, scheme: BinningScheme) -> Option<BinEdges> {
        assert!(n_bins >= 1, "need at least one bin");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable_by(f64::total_cmp);
        let edges = match scheme {
            BinningScheme::EqualFrequency => (1..n_bins)
                .map(|i| try_quantile_sorted(&sorted, i as f64 / n_bins as f64))
                .collect::<Option<Vec<f64>>>()?,
            BinningScheme::EqualWidth => {
                let lo = sorted[0];
                let hi = sorted[sorted.len() - 1];
                let width = (hi - lo) / n_bins as f64;
                (1..n_bins).map(|i| lo + width * i as f64).collect()
            }
        };
        Some(BinEdges { edges, n_bins })
    }

    /// The bin index of `value`, in `0..n_bins`.
    pub fn assign(&self, value: f64) -> usize {
        // Count of edges strictly below value; a value equal to an edge
        // falls in the lower bin, consistent with right-closed intervals
        // (e_{i-1}, e_i].
        self.edges.partition_point(|&e| e < value)
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// The interior edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Histogram of `values` across the bins.
    pub fn histogram(&self, values: &[f64]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_bins];
        for &v in values {
            counts[self.assign(v)] += 1;
        }
        counts
    }
}

/// Linear-interpolated quantile of a slice sorted by [`f64::total_cmp`].
///
/// Non-finite entries are ignored: total order puts `-NaN`/`-inf` before
/// and `+inf`/`+NaN` after every finite value, so the finite region is a
/// contiguous sub-slice and the quantile is taken over it alone. Returns
/// `None` when no finite value remains — the all-sentinel column (every
/// sample NaN, e.g. a GPU metric on a CPU-only pool) is a caller decision,
/// not a crash; [`BinEdges::fit`] propagates it as `None`.
pub fn try_quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q));
    let start = sorted.partition_point(|v| !v.is_finite() && v.is_sign_negative());
    let end = sorted.partition_point(|v| v.is_finite() || v.is_sign_negative());
    let finite = &sorted[start..end];
    if finite.is_empty() {
        return None;
    }
    if finite.len() == 1 {
        return Some(finite[0]);
    }
    let pos = q * (finite.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(finite[lo] * (1.0 - frac) + finite[hi] * frac)
}

/// Infallible wrapper over [`try_quantile_sorted`] for callers that have
/// already established at least one finite value. Panics otherwise.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    try_quantile_sorted(sorted, q).expect("no finite values to take a quantile of")
}

/// Detects a "standard value" spike: the modal value if it covers at least
/// `min_share` of the (finite) values. Exact equality is intended — request
/// defaults are exact constants in schedulers.
pub fn detect_spike(values: &[f64], min_share: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let mut best_value = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best_value = sorted[i];
        }
        i = j;
    }
    if best_count as f64 / values.len() as f64 >= min_share {
        Some(best_value)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_frequency_quartiles_balance() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).powi(2)).collect();
        let edges = BinEdges::fit(&values, 4, BinningScheme::EqualFrequency).unwrap();
        let hist = edges.histogram(&values);
        for &count in &hist {
            assert!((230..=270).contains(&count), "unbalanced {hist:?}");
        }
    }

    #[test]
    fn equal_width_fails_on_long_tails() {
        // Long-tailed data: most mass in the lowest equal-width bin — the
        // paper's §III-E argument against equal-width binning.
        let values: Vec<f64> = (1..1000).map(|i| 1.0 / i as f64 * 1e6).collect();
        let edges = BinEdges::fit(&values, 4, BinningScheme::EqualWidth).unwrap();
        let hist = edges.histogram(&values);
        assert!(hist[0] as f64 / values.len() as f64 > 0.9);
        assert!(hist[2] <= 5);
    }

    #[test]
    fn assign_right_closed_intervals() {
        let edges = BinEdges {
            edges: vec![10.0, 20.0, 30.0],
            n_bins: 4,
        };
        assert_eq!(edges.assign(-5.0), 0);
        assert_eq!(edges.assign(10.0), 0);
        assert_eq!(edges.assign(10.001), 1);
        assert_eq!(edges.assign(25.0), 2);
        assert_eq!(edges.assign(30.0), 2);
        assert_eq!(edges.assign(1e9), 3);
    }

    #[test]
    fn tied_edges_take_lowest_bin() {
        // >50% zeros make q25 == q50 == 0 — like queue waits on an
        // unloaded pool. The tied mass must land in Bin1.
        let mut values = vec![0.0; 60];
        values.extend((1..41).map(|i| i as f64));
        let edges = BinEdges::fit(&values, 4, BinningScheme::EqualFrequency).unwrap();
        assert_eq!(edges.assign(0.0), 0);
        assert_eq!(edges.assign(40.0), 3);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = vec![0.0, 10.0, 20.0, 30.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 30.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 15.0);
    }

    #[test]
    fn fit_empty_returns_none() {
        assert!(BinEdges::fit(&[], 4, BinningScheme::EqualFrequency).is_none());
    }

    #[test]
    fn fit_ignores_non_finite_values() {
        // A NaN sentinel or an overflow inf in a trace column must not
        // shift any edge: fitting with them interleaved gives the same
        // edges as fitting the pre-filtered data.
        let clean: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut dirty = clean.clone();
        dirty.insert(0, f64::NAN);
        dirty.insert(40, f64::INFINITY);
        dirty.push(f64::NEG_INFINITY);
        dirty.push(-f64::NAN);
        for scheme in [BinningScheme::EqualFrequency, BinningScheme::EqualWidth] {
            let expect = BinEdges::fit(&clean, 4, scheme).unwrap();
            let got = BinEdges::fit(&dirty, 4, scheme).unwrap();
            assert_eq!(got, expect, "{scheme:?}");
        }
    }

    #[test]
    fn fit_all_non_finite_returns_none() {
        let values = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        assert!(BinEdges::fit(&values, 4, BinningScheme::EqualFrequency).is_none());
        assert!(BinEdges::fit(&values, 4, BinningScheme::EqualWidth).is_none());
    }

    #[test]
    fn quantile_skips_non_finite_ends() {
        let mut sorted = vec![
            -f64::NAN,
            f64::NEG_INFINITY,
            0.0,
            10.0,
            20.0,
            30.0,
            f64::INFINITY,
            f64::NAN,
        ];
        sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 15.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 30.0);
    }

    #[test]
    fn try_quantile_none_replaces_the_panic() {
        // The old `quantile_sorted` asserted on an all-sentinel slice; the
        // fallible form reports it as data, not a crash.
        let mut sorted = vec![-f64::NAN, f64::NEG_INFINITY, f64::INFINITY, f64::NAN];
        sorted.sort_unstable_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(try_quantile_sorted(&sorted, q), None);
        }
        assert_eq!(try_quantile_sorted(&[], 0.5), None);
        // One finite value among sentinels is enough for every quantile.
        sorted.push(7.0);
        sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(try_quantile_sorted(&sorted, 0.0), Some(7.0));
        assert_eq!(try_quantile_sorted(&sorted, 1.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn infallible_quantile_still_panics() {
        quantile_sorted(&[f64::NAN], 0.5);
    }

    #[test]
    fn fit_constant_column() {
        let values = vec![5.0; 100];
        let edges = BinEdges::fit(&values, 4, BinningScheme::EqualFrequency).unwrap();
        let b = edges.assign(5.0);
        assert!(b < 4);
    }

    #[test]
    fn spike_detection() {
        let mut values = vec![600.0; 50];
        values.extend((0..50).map(|i| 100.0 + i as f64));
        assert_eq!(detect_spike(&values, 0.3), Some(600.0));
        assert_eq!(detect_spike(&values, 0.6), None);
        assert_eq!(detect_spike(&[], 0.1), None);
    }

    #[test]
    fn spike_prefers_most_frequent() {
        let mut values = vec![1.0; 10];
        values.extend(vec![2.0; 20]);
        assert_eq!(detect_spike(&values, 0.5), Some(2.0));
    }
}
