//! Feature specifications: how each trace column becomes items.
//!
//! One [`FeatureSpec`] per analysed column describes the transformation
//! from raw values to transaction items, following §III-E:
//! numeric columns get quartile bins with optional zero / "standard value"
//! special bins; categorical columns get `Display = value` items with
//! optional value aggregation (e.g. `resnet`/`vgg`/`inception` -> `CV`);
//! skewed id columns (users, job groups) get frequency-class items
//! (`Freq User` / `New User`); threshold flags produce single items
//! (`Multi-GPU`, `Num Attempts > 1`).

use std::collections::HashMap;

use crate::binning::BinningScheme;

/// Special handling of a zero-inflated numeric feature.
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroBin {
    /// Values `<= threshold` fall into the zero bin instead of quartiles.
    pub threshold: f64,
    /// Suffix label, e.g. `"0%"` producing `"SM Util = 0%"`.
    pub label: String,
}

impl ZeroBin {
    /// Zero bin for percentage features (`<= 1%` counts as zero — a GPU
    /// sampled at sub-percent mean utilization did no useful work).
    pub fn percent() -> ZeroBin {
        ZeroBin {
            threshold: 1.0,
            label: "0%".to_string(),
        }
    }

    /// Zero bin for byte-quantity features (`"0GB"`).
    pub fn gigabytes() -> ZeroBin {
        ZeroBin {
            threshold: 0.0,
            label: "0GB".to_string(),
        }
    }
}

/// Detection of a "standard request" spike (e.g. PAI's 600-core default).
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeBin {
    /// Minimum share of values equal to the modal value to treat it as a
    /// standard/default (the paper observes ~50% for PAI CPU requests).
    pub min_share: f64,
    /// Suffix label, e.g. `"Std"` producing `"CPU Request = Std"`.
    pub label: String,
}

impl Default for SpikeBin {
    fn default() -> SpikeBin {
        SpikeBin {
            min_share: 0.3,
            label: "Std".to_string(),
        }
    }
}

/// Transformation of one column into items.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureSpec {
    /// Continuous feature -> quartile bins (+ special bins).
    Numeric {
        /// Source column name.
        column: String,
        /// Display name used in item labels (`"SM Util"`).
        display: String,
        /// Number of bins (the paper uses 4).
        n_bins: usize,
        /// Equal-frequency (default) or equal-width.
        scheme: BinningScheme,
        /// Optional zero-inflation handling.
        zero: Option<ZeroBin>,
        /// Optional default-value spike handling.
        spike: Option<SpikeBin>,
    },
    /// Categorical feature -> one item per (possibly remapped) value.
    Categorical {
        /// Source column name.
        column: String,
        /// Display name used in item labels (`"GPU Type"`).
        display: String,
        /// Value remapping applied before item construction
        /// (`"resnet" -> "CV"`, `"P100" -> "NonT4"`).
        remap: HashMap<String, String>,
        /// Values that produce no item at all (e.g. the overwhelming
        /// default exit status when it should not dominate the itemsets).
        skip: Vec<String>,
    },
    /// Skewed identifier -> head/tail frequency-class items.
    FrequencyClass {
        /// Source column name.
        column: String,
        /// Item emitted for members of the most-active set covering
        /// `head_share` of rows (`"Freq User"`).
        head_label: String,
        /// Item emitted for members of the least-active set covering
        /// `tail_share` of rows (`"New User"`).
        tail_label: String,
        /// Traffic fraction defining the head (paper: 0.25).
        head_share: f64,
        /// Traffic fraction defining the tail (paper: 0.25).
        tail_share: f64,
    },
    /// Numeric threshold flag -> a single item when the predicate holds.
    Flag {
        /// Source column name.
        column: String,
        /// Item label (`"Multi-GPU"`).
        label: String,
        /// Emit the item when `value > threshold`.
        greater_than: f64,
    },
}

impl FeatureSpec {
    /// Quartile-binned numeric feature with no special bins.
    pub fn numeric(column: &str, display: &str) -> FeatureSpec {
        FeatureSpec::Numeric {
            column: column.to_string(),
            display: display.to_string(),
            n_bins: 4,
            scheme: BinningScheme::EqualFrequency,
            zero: None,
            spike: None,
        }
    }

    /// Numeric feature with a zero bin.
    pub fn numeric_zero(column: &str, display: &str, zero: ZeroBin) -> FeatureSpec {
        match Self::numeric(column, display) {
            FeatureSpec::Numeric {
                column,
                display,
                n_bins,
                scheme,
                spike,
                ..
            } => FeatureSpec::Numeric {
                column,
                display,
                n_bins,
                scheme,
                zero: Some(zero),
                spike,
            },
            _ => unreachable!(),
        }
    }

    /// Numeric feature with default-value spike detection.
    pub fn numeric_spike(column: &str, display: &str) -> FeatureSpec {
        match Self::numeric(column, display) {
            FeatureSpec::Numeric {
                column,
                display,
                n_bins,
                scheme,
                zero,
                ..
            } => FeatureSpec::Numeric {
                column,
                display,
                n_bins,
                scheme,
                zero,
                spike: Some(SpikeBin::default()),
            },
            _ => unreachable!(),
        }
    }

    /// Plain categorical feature.
    pub fn categorical(column: &str, display: &str) -> FeatureSpec {
        FeatureSpec::Categorical {
            column: column.to_string(),
            display: display.to_string(),
            remap: HashMap::new(),
            skip: Vec::new(),
        }
    }

    /// Categorical feature with value aggregation.
    pub fn categorical_remap<const N: usize>(
        column: &str,
        display: &str,
        pairs: [(&str, &str); N],
    ) -> FeatureSpec {
        FeatureSpec::Categorical {
            column: column.to_string(),
            display: display.to_string(),
            remap: pairs
                .iter()
                .map(|&(from, to)| (from.to_string(), to.to_string()))
                .collect(),
            skip: Vec::new(),
        }
    }

    /// Frequency-class feature with the paper's 25% / 25% split.
    pub fn frequency(column: &str, head_label: &str, tail_label: &str) -> FeatureSpec {
        FeatureSpec::FrequencyClass {
            column: column.to_string(),
            head_label: head_label.to_string(),
            tail_label: tail_label.to_string(),
            head_share: 0.25,
            tail_share: 0.25,
        }
    }

    /// Threshold flag feature.
    pub fn flag(column: &str, label: &str, greater_than: f64) -> FeatureSpec {
        FeatureSpec::Flag {
            column: column.to_string(),
            label: label.to_string(),
            greater_than,
        }
    }

    /// The source column this spec reads.
    pub fn column(&self) -> &str {
        match self {
            FeatureSpec::Numeric { column, .. }
            | FeatureSpec::Categorical { column, .. }
            | FeatureSpec::FrequencyClass { column, .. }
            | FeatureSpec::Flag { column, .. } => column,
        }
    }
}

/// The full encoder configuration: the feature list plus global knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderSpec {
    /// One entry per analysed column.
    pub features: Vec<FeatureSpec>,
    /// Items present in more than this fraction of jobs are dropped
    /// (§III-E: the paper drops items present in > 80% of jobs).
    pub drop_prevalence: f64,
}

impl EncoderSpec {
    /// Builds a spec with the paper's 80% prevalence cut-off.
    pub fn new(features: Vec<FeatureSpec>) -> EncoderSpec {
        EncoderSpec {
            features,
            drop_prevalence: 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_variants() {
        let spec = FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent());
        match &spec {
            FeatureSpec::Numeric { zero: Some(z), .. } => {
                assert_eq!(z.threshold, 1.0);
                assert_eq!(z.label, "0%");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(spec.column(), "sm_util");

        let spike = FeatureSpec::numeric_spike("cpu_request", "CPU Request");
        match spike {
            FeatureSpec::Numeric { spike: Some(s), .. } => assert_eq!(s.label, "Std"),
            other => panic!("unexpected {other:?}"),
        }

        let cat =
            FeatureSpec::categorical_remap("model", "Model", [("resnet", "CV"), ("bert", "NLP")]);
        match cat {
            FeatureSpec::Categorical { remap, .. } => {
                assert_eq!(remap.get("resnet").map(String::as_str), Some("CV"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn default_prevalence_cutoff() {
        let spec = EncoderSpec::new(vec![]);
        assert_eq!(spec.drop_prevalence, 0.8);
    }
}
