//! Transaction encoding: merged frame -> `TransactionDb` + item catalog.
//!
//! Encoding is split into **fit** and **transform** so that a preparation
//! fitted on one trace (bin edges, spike values, frequency classes, the
//! prevalence-dropped item set) can be applied unchanged to held-out data
//! — required by the rule-based failure predictor, which must not re-fit
//! its bins on the jobs it is evaluated on.
//!
//! [`fit`] makes two passes over the training frame:
//!
//! 1. per numeric feature: collect finite values, detect the spike value,
//!    fit bin edges on the residual distribution; per id feature: compute
//!    head/tail frequency classes;
//! 2. emit item labels per row, then drop items whose prevalence exceeds
//!    the cut-off (§III-E) and freeze the surviving [`ItemCatalog`].
//!
//! [`FittedEncoder::transform`] replays the same label emission against
//! the frozen catalog: labels that were dropped at fit time (or never
//! seen) emit nothing. Null cells never emit an item.

use std::collections::{HashMap, HashSet};

use irma_data::Frame;
use irma_mine::{ItemCatalog, ItemId, TransactionDb};
use irma_obs::Metrics;

use crate::binning::{detect_spike, BinEdges};
use crate::spec::{EncoderSpec, FeatureSpec};

/// Fit state for one numeric feature.
#[derive(Debug, Clone)]
pub struct NumericFit {
    /// Display name of the feature.
    pub display: String,
    /// Detected standard/default value, if any.
    pub spike_value: Option<f64>,
    /// Edges fitted on values outside the zero and spike bins.
    pub edges: Option<BinEdges>,
}

/// Frequency-class assignment for one id column.
#[derive(Debug, Clone, Default)]
pub struct FrequencyFit {
    /// Most-active members covering the head share of rows.
    pub head: HashSet<String>,
    /// Least-active members covering the tail share of rows.
    pub tail: HashSet<String>,
}

/// What the encoder did — kept for reports and ablation benches.
#[derive(Debug, Clone, Default)]
pub struct EncodeReport {
    /// Per numeric column: the fit.
    pub numeric_fits: HashMap<String, NumericFit>,
    /// Item labels dropped by the prevalence cut-off, with their share.
    pub dropped: Vec<(String, f64)>,
    /// Item count before the prevalence cut.
    pub n_items_before_drop: usize,
}

/// A frozen preparation: everything needed to encode new frames with the
/// training-time vocabulary.
#[derive(Debug, Clone)]
pub struct FittedEncoder {
    spec: EncoderSpec,
    numeric_fits: HashMap<String, NumericFit>,
    frequency_fits: HashMap<String, FrequencyFit>,
    catalog: ItemCatalog,
    report: EncodeReport,
}

/// The encoded mining input.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// One transaction per frame row.
    pub db: TransactionDb,
    /// Item id <-> label mapping.
    pub catalog: ItemCatalog,
    /// Fit + drop diagnostics.
    pub report: EncodeReport,
}

impl Encoded {
    /// Convenience: id of a label, panicking with a readable message.
    pub fn item(&self, label: &str) -> ItemId {
        self.catalog
            .id(label)
            .unwrap_or_else(|| panic!("item `{label}` not present (dropped or never emitted?)"))
    }
}

fn fit_frequency(frame: &Frame, column: &str, head_share: f64, tail_share: f64) -> FrequencyFit {
    let counts = frame
        .value_counts(column)
        .expect("frequency feature requires a string column");
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let mut fit = FrequencyFit::default();
    if total == 0 {
        return fit;
    }
    let mut cum = 0usize;
    for (value, count) in &counts {
        cum += count;
        fit.head.insert(value.clone());
        if cum as f64 / total as f64 >= head_share {
            break;
        }
    }
    let mut back = 0usize;
    for (value, count) in counts.iter().rev() {
        back += count;
        fit.tail.insert(value.clone());
        if back as f64 / total as f64 >= tail_share {
            break;
        }
    }
    // A value cannot be both head and tail; head wins (it is by
    // construction more active).
    for v in &fit.head {
        fit.tail.remove(v);
    }
    fit
}

/// Emits each row's item labels for one feature via `sink(row, label)`.
fn emit_feature<F: FnMut(usize, &str)>(
    frame: &Frame,
    feature: &FeatureSpec,
    numeric_fits: &HashMap<String, NumericFit>,
    frequency_fits: &HashMap<String, FrequencyFit>,
    mut sink: F,
) {
    let n_rows = frame.n_rows();
    match feature {
        FeatureSpec::Numeric { column, zero, .. } => {
            let fit = &numeric_fits[column];
            let Ok(col) = frame.column(column) else {
                panic!("missing numeric column `{column}`")
            };
            for r in 0..n_rows {
                let Some(v) = col.numeric(r).filter(|v| v.is_finite()) else {
                    continue;
                };
                if let Some(z) = zero.as_ref().filter(|z| v <= z.threshold) {
                    sink(r, &format!("{} = {}", fit.display, z.label));
                } else if fit.spike_value == Some(v) {
                    sink(r, &format!("{} = Std", fit.display));
                } else if let Some(edges) = &fit.edges {
                    sink(r, &format!("{} = Bin{}", fit.display, edges.assign(v) + 1));
                }
            }
        }
        FeatureSpec::Categorical {
            column,
            display,
            remap,
            skip,
        } => {
            let storage = frame
                .column(column)
                .unwrap_or_else(|_| panic!("missing categorical column `{column}`"))
                .as_strs()
                .unwrap_or_else(|| panic!("column `{column}` is not categorical"));
            for r in 0..n_rows {
                let Some(raw) = storage.get(r) else { continue };
                let value = remap.get(raw).map(String::as_str).unwrap_or(raw);
                if skip.iter().any(|s| s == value) {
                    continue;
                }
                // An empty display name yields bare value labels
                // ("Failed") matching how the paper names status items.
                if display.is_empty() {
                    sink(r, value);
                } else {
                    sink(r, &format!("{display} = {value}"));
                }
            }
        }
        FeatureSpec::FrequencyClass {
            column,
            head_label,
            tail_label,
            ..
        } => {
            let fit = &frequency_fits[column];
            let storage = frame
                .column(column)
                .unwrap_or_else(|_| panic!("missing frequency column `{column}`"))
                .as_strs()
                .unwrap_or_else(|| panic!("column `{column}` is not categorical"));
            for r in 0..n_rows {
                let Some(value) = storage.get(r) else {
                    continue;
                };
                if fit.head.contains(value) {
                    sink(r, head_label);
                } else if fit.tail.contains(value) {
                    sink(r, tail_label);
                }
            }
        }
        FeatureSpec::Flag {
            column,
            label,
            greater_than,
        } => {
            let col = frame
                .column(column)
                .unwrap_or_else(|_| panic!("missing flag column `{column}`"));
            for r in 0..n_rows {
                if col.numeric(r).is_some_and(|v| v > *greater_than) {
                    sink(r, label);
                }
            }
        }
    }
}

/// Fits the §III-E preprocessing on a training frame.
pub fn fit(frame: &Frame, spec: &EncoderSpec) -> FittedEncoder {
    let n_rows = frame.n_rows();

    // ---- pass 1: per-feature fits ----
    let mut numeric_fits: HashMap<String, NumericFit> = HashMap::new();
    let mut frequency_fits: HashMap<String, FrequencyFit> = HashMap::new();
    for feature in &spec.features {
        match feature {
            FeatureSpec::Numeric {
                column,
                display,
                n_bins,
                scheme,
                zero,
                spike,
            } => {
                let col = frame
                    .column(column)
                    .unwrap_or_else(|_| panic!("missing numeric column `{column}`"));
                let mut values: Vec<f64> = (0..n_rows)
                    .filter_map(|r| col.numeric(r))
                    .filter(|v| v.is_finite())
                    .collect();
                if let Some(z) = zero {
                    values.retain(|&v| v > z.threshold);
                }
                let spike_value = spike
                    .as_ref()
                    .and_then(|s| detect_spike(&values, s.min_share));
                if let Some(sv) = spike_value {
                    values.retain(|&v| v != sv);
                }
                let edges = BinEdges::fit(&values, *n_bins, *scheme);
                numeric_fits.insert(
                    column.clone(),
                    NumericFit {
                        display: display.clone(),
                        spike_value,
                        edges,
                    },
                );
            }
            FeatureSpec::FrequencyClass {
                column,
                head_share,
                tail_share,
                ..
            } => {
                frequency_fits.insert(
                    column.clone(),
                    fit_frequency(frame, column, *head_share, *tail_share),
                );
            }
            _ => {}
        }
    }

    // ---- pass 2: emit training labels, apply the prevalence cut ----
    let mut prelim = ItemCatalog::new();
    let mut counts: Vec<usize> = Vec::new();
    for feature in &spec.features {
        emit_feature(
            frame,
            feature,
            &numeric_fits,
            &frequency_fits,
            |_, label| {
                let id = prelim.intern(label) as usize;
                if id >= counts.len() {
                    counts.resize(id + 1, 0);
                }
                counts[id] += 1;
            },
        );
    }

    let mut dropped = Vec::new();
    let mut catalog = ItemCatalog::new();
    for (id, label) in prelim.labels().iter().enumerate() {
        let share = counts[id] as f64 / n_rows.max(1) as f64;
        if share > spec.drop_prevalence {
            dropped.push((label.clone(), share));
        } else {
            catalog.intern(label);
        }
    }

    FittedEncoder {
        spec: spec.clone(),
        numeric_fits,
        frequency_fits,
        catalog,
        report: EncodeReport {
            numeric_fits: HashMap::new(), // filled below (shared clone)
            dropped,
            n_items_before_drop: prelim.len(),
        },
    }
    .with_report_fits()
}

impl FittedEncoder {
    fn with_report_fits(mut self) -> FittedEncoder {
        self.report.numeric_fits = self.numeric_fits.clone();
        self
    }

    /// The frozen item vocabulary.
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// The fit diagnostics.
    pub fn report(&self) -> &EncodeReport {
        &self.report
    }

    /// Encodes any frame with the training-time vocabulary. Labels that
    /// were dropped (or never seen) at fit time emit nothing.
    pub fn transform(&self, frame: &Frame) -> TransactionDb {
        let mut rows: Vec<Vec<ItemId>> = vec![Vec::new(); frame.n_rows()];
        for feature in &self.spec.features {
            emit_feature(
                frame,
                feature,
                &self.numeric_fits,
                &self.frequency_fits,
                |r, label| {
                    if let Some(id) = self.catalog.id(label) {
                        rows[r].push(id);
                    }
                },
            );
        }
        TransactionDb::from_transactions(rows).with_universe(self.catalog.len().max(1))
    }
}

/// Fit + transform in one call (the batch workflow's entry point).
pub fn encode(frame: &Frame, spec: &EncoderSpec) -> Encoded {
    encode_with(frame, spec, &Metrics::disabled())
}

/// [`encode`] with observability: emits `prep.fit` and `prep.transform`
/// stage events (row/transaction cardinalities, bins fitted, skewed items
/// dropped by the prevalence cut) into `metrics`.
pub fn encode_with(frame: &Frame, spec: &EncoderSpec, metrics: &Metrics) -> Encoded {
    let mut span = metrics.span("prep.fit");
    let fitted = fit(frame, spec);
    span.field("rows_in", frame.n_rows() as u64);
    span.field(
        "bins_fitted",
        fitted
            .numeric_fits
            .values()
            .filter(|f| f.edges.is_some())
            .count() as u64,
    );
    span.field(
        "spike_columns",
        fitted
            .numeric_fits
            .values()
            .filter(|f| f.spike_value.is_some())
            .count() as u64,
    );
    span.field(
        "items_before_drop",
        fitted.report.n_items_before_drop as u64,
    );
    span.field(
        "items_dropped_prevalence",
        fitted.report.dropped.len() as u64,
    );
    span.field("items_out", fitted.catalog.len() as u64);
    drop(span);

    let mut span = metrics.span("prep.transform");
    let db = fitted.transform(frame);
    span.field("transactions_out", db.len() as u64);
    span.field(
        "items_emitted",
        (0..db.len()).map(|r| db.transaction(r).len() as u64).sum(),
    );
    drop(span);

    Encoded {
        db,
        catalog: fitted.catalog,
        report: fitted.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SpikeBin, ZeroBin};
    use irma_data::read_csv_str;
    use irma_mine::Itemset;

    fn frame() -> Frame {
        // 8 rows: sm_util zero-inflated; cpus spiked at 600; user skewed.
        read_csv_str(concat!(
            "job_id,sm_util,cpus,user,gpus,status\n",
            "0,0.0,600,alice,1,Pass\n",
            "1,0.5,600,alice,1,Pass\n",
            "2,40.0,600,alice,2,Pass\n",
            "3,55.0,600,alice,1,Pass\n",
            "4,62.0,100,bob,1,Failed\n",
            "5,70.0,200,carol,4,Pass\n",
            "6,88.0,300,dave,1,Pass\n",
            "7,95.0,400,erin,1,Pass\n",
        ))
        .unwrap()
    }

    fn spec() -> EncoderSpec {
        EncoderSpec::new(vec![
            FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent()),
            FeatureSpec::Numeric {
                column: "cpus".to_string(),
                display: "CPU Request".to_string(),
                n_bins: 4,
                scheme: Default::default(),
                zero: None,
                spike: Some(SpikeBin {
                    min_share: 0.4,
                    label: "Std".to_string(),
                }),
            },
            FeatureSpec::frequency("user", "Freq User", "New User"),
            FeatureSpec::flag("gpus", "Multi-GPU", 1.0),
            FeatureSpec::categorical("status", "Status"),
        ])
    }

    #[test]
    fn zero_bin_emitted() {
        let enc = encode(&frame(), &spec());
        let id = enc.item("SM Util = 0%");
        assert_eq!(
            enc.db.support_count(&Itemset::singleton(id)),
            2,
            "rows 0 and 1 are in the zero bin"
        );
    }

    #[test]
    fn spike_becomes_std_item() {
        let enc = encode(&frame(), &spec());
        let id = enc.item("CPU Request = Std");
        assert_eq!(enc.db.support_count(&Itemset::singleton(id)), 4);
        let fit = &enc.report.numeric_fits["cpus"];
        assert_eq!(fit.spike_value, Some(600.0));
    }

    #[test]
    fn residual_values_binned() {
        let enc = encode(&frame(), &spec());
        // Non-std cpus: 100,200,300,400 -> one per quartile.
        for bin in 1..=4 {
            let id = enc.item(&format!("CPU Request = Bin{bin}"));
            assert_eq!(
                enc.db.support_count(&Itemset::singleton(id)),
                1,
                "bin {bin}"
            );
        }
    }

    #[test]
    fn frequency_classes() {
        let enc = encode(&frame(), &spec());
        // alice = 4/8 submissions -> head; singles form the tail.
        let freq = enc.item("Freq User");
        let new = enc.item("New User");
        assert_eq!(enc.db.support_count(&Itemset::singleton(freq)), 4);
        assert!(enc.db.support_count(&Itemset::singleton(new)) >= 2);
    }

    #[test]
    fn flag_items() {
        let enc = encode(&frame(), &spec());
        let id = enc.item("Multi-GPU");
        assert_eq!(enc.db.support_count(&Itemset::singleton(id)), 2);
    }

    #[test]
    fn prevalence_drop_removes_dominant_items() {
        let enc = encode(&frame(), &spec());
        // "Status = Pass" covers 7/8 = 87.5% > 80% -> dropped.
        assert!(enc.catalog.id("Status = Pass").is_none());
        assert!(enc.catalog.id("Status = Failed").is_some());
        assert!(enc
            .report
            .dropped
            .iter()
            .any(|(label, share)| label == "Status = Pass" && *share > 0.8));
    }

    #[test]
    fn null_cells_emit_no_item() {
        let frame = read_csv_str("job_id,sm_util\n0,\n1,50.0\n").unwrap();
        let spec = EncoderSpec::new(vec![FeatureSpec::numeric("sm_util", "SM Util")]);
        let enc = encode(&frame, &spec);
        assert_eq!(enc.db.transaction(0), &[] as &[u32]);
        assert_eq!(enc.db.transaction(1).len(), 1);
    }

    #[test]
    fn remap_aggregates_values() {
        let frame = read_csv_str("job_id,model\n0,resnet\n1,vgg\n2,bert\n3,\n").unwrap();
        let spec = EncoderSpec::new(vec![FeatureSpec::categorical_remap(
            "model",
            "Model",
            [("resnet", "CV"), ("vgg", "CV"), ("bert", "NLP")],
        )]);
        let enc = encode(&frame, &spec);
        let cv = enc.item("Model = CV");
        assert_eq!(enc.db.support_count(&Itemset::singleton(cv)), 2);
        assert!(enc.catalog.id("Model = resnet").is_none());
        assert_eq!(enc.db.transaction(3), &[] as &[u32]);
    }

    #[test]
    fn transactions_align_with_rows() {
        let enc = encode(&frame(), &spec());
        assert_eq!(enc.db.len(), 8);
        // Row 0: zero SM + std cpu + freq user + status Pass(dropped).
        let t0: Vec<&str> = enc
            .db
            .transaction(0)
            .iter()
            .map(|&i| enc.catalog.label(i))
            .collect();
        assert!(t0.contains(&"SM Util = 0%"));
        assert!(t0.contains(&"CPU Request = Std"));
        assert!(t0.contains(&"Freq User"));
        assert!(!t0.iter().any(|l| l.starts_with("Status")));
    }

    #[test]
    fn transform_reuses_training_fit() {
        let fitted = fit(&frame(), &spec());
        // Held-out rows: values chosen so re-fitting would bin them
        // differently than the training fit does.
        let heldout = read_csv_str(concat!(
            "job_id,sm_util,cpus,user,gpus,status\n",
            "0,0.0,600,alice,1,Pass\n",
            "1,99.0,50,mallory,8,Failed\n",
        ))
        .unwrap();
        let db = fitted.transform(&heldout);
        assert_eq!(db.len(), 2);
        let labels = |r: usize| -> Vec<&str> {
            db.transaction(r)
                .iter()
                .map(|&i| fitted.catalog().label(i))
                .collect()
        };
        // Row 0 replays the training encoding.
        assert!(labels(0).contains(&"SM Util = 0%"));
        assert!(labels(0).contains(&"CPU Request = Std"));
        assert!(labels(0).contains(&"Freq User"));
        // Row 1: cpus=50 is below every training edge -> Bin1; mallory is
        // unknown -> no frequency item; "Status = Pass" stays dropped.
        assert!(labels(1).contains(&"CPU Request = Bin1"));
        assert!(!labels(1).iter().any(|l| l.contains("User")));
        assert!(labels(1).contains(&"Status = Failed"));
        assert!(!labels(0).iter().any(|l| l.ends_with("Pass")));
    }

    #[test]
    #[should_panic(expected = "missing numeric column")]
    fn missing_column_panics_with_context() {
        let frame = read_csv_str("a\n1\n").unwrap();
        let spec = EncoderSpec::new(vec![FeatureSpec::numeric("nope", "Nope")]);
        let _ = encode(&frame, &spec);
    }

    #[test]
    #[should_panic(expected = "is not categorical")]
    fn numeric_column_rejected_for_categorical_spec() {
        let frame = read_csv_str("a\n1\n2\n").unwrap();
        let spec = EncoderSpec::new(vec![FeatureSpec::categorical("a", "A")]);
        let _ = encode(&frame, &spec);
    }

    #[test]
    fn item_lookup_panics_readably() {
        let frame = read_csv_str("a\n1\n2\n").unwrap();
        let spec = EncoderSpec::new(vec![FeatureSpec::numeric("a", "A")]);
        let enc = encode(&frame, &spec);
        let err = std::panic::catch_unwind(|| enc.item("Ghost Item")).unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("Ghost Item"), "{message}");
    }

    #[test]
    fn encode_with_emits_stage_events() {
        let metrics = Metrics::enabled();
        let enc = encode_with(&frame(), &spec(), &metrics);
        let snap = metrics.snapshot();
        let fit_event = snap.stage("prep.fit").expect("prep.fit event");
        assert_eq!(fit_event.field("rows_in"), Some(8));
        assert!(fit_event.field("items_dropped_prevalence").unwrap() >= 1);
        assert_eq!(fit_event.field("items_out"), Some(enc.catalog.len() as u64));
        let transform_event = snap.stage("prep.transform").expect("prep.transform event");
        assert_eq!(transform_event.field("transactions_out"), Some(8));
        // The plain entry point records nothing and returns the same data.
        let plain = encode(&frame(), &spec());
        assert_eq!(plain.db.len(), enc.db.len());
    }

    #[test]
    fn fit_then_transform_equals_encode() {
        let enc = encode(&frame(), &spec());
        let fitted = fit(&frame(), &spec());
        let db = fitted.transform(&frame());
        assert_eq!(enc.db.len(), db.len());
        for r in 0..db.len() {
            assert_eq!(enc.db.transaction(r), db.transaction(r), "row {r}");
        }
    }
}
