//! # irma-prep — trace preprocessing (§III-E)
//!
//! Turns a merged per-job frame into the one-hot transaction database the
//! miners consume:
//!
//! * [`BinEdges`] — equal-frequency (and, for the paper's negative result,
//!   equal-width) discretization of continuous features;
//! * zero bins (`SM Util = 0%`, `GMem Used = 0GB`) and default-request
//!   spike bins (`CPU Request = Std`) via [`detect_spike`];
//! * categorical aggregation (`resnet`/`vgg`/`inception` -> `CV`) and
//!   frequency classes over skewed id columns (`Freq User` / `New User`,
//!   head and tail each covering 25% of submissions);
//! * the >80%-prevalence item drop that keeps trivially common items from
//!   flooding the itemsets.
//!
//! ```
//! use irma_data::read_csv_str;
//! use irma_prep::{encode, EncoderSpec, FeatureSpec, ZeroBin};
//!
//! let frame = read_csv_str("sm\n0.0\n0.2\n80.0\n40.0\n95.0\n").unwrap();
//! let spec = EncoderSpec::new(vec![FeatureSpec::numeric_zero(
//!     "sm", "SM Util", ZeroBin::percent(),
//! )]);
//! let enc = encode(&frame, &spec);
//! assert!(enc.catalog.id("SM Util = 0%").is_some());
//! ```

#![warn(missing_docs)]

mod binning;
mod encode;
mod spec;

pub use binning::{detect_spike, quantile_sorted, try_quantile_sorted, BinEdges, BinningScheme};
pub use encode::{
    encode, encode_with, fit, EncodeReport, Encoded, FittedEncoder, FrequencyFit, NumericFit,
};
pub use spec::{EncoderSpec, FeatureSpec, SpikeBin, ZeroBin};
