//! `irma` — the command-line front end of the IRMA workflow.
//!
//! See [`args::USAGE`] (or run `irma help`) for the grammar. Every
//! subcommand is deterministic per `--seed`.

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::{parse, Command, MetricsFormat, USAGE};
use irma_core::experiments::run_all;
use irma_core::export::export_all;
use irma_core::insights::insight_report;
use irma_core::{
    analyze_traced, failure_prediction, pai_spec, philly_spec, prepare, prepare_all,
    supercloud_spec, try_analyze_traced, AnalysisConfig, EventSink, ExecBudget, ExperimentScale,
    Metrics, PipelineError, Provenance,
};
use irma_synth::{pai, philly, read_merged_csv_dir, supercloud, TraceConfig};

/// How a successful subcommand finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Full-fidelity result — exit code 0.
    Success,
    /// The degradation ladder relaxed the mining knobs — exit code 4, so
    /// scripts can tell a best-effort answer from a complete one.
    Degraded,
}

/// Why a subcommand failed.
#[derive(Debug)]
enum Failure {
    /// IO problems, unknown keywords, ... — exit code 1.
    Runtime(String),
    /// A typed pipeline failure from the fault-tolerant entry points —
    /// exit code 5 (never a panic/abort, i.e. never 101).
    Pipeline(PipelineError),
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure::Runtime(message)
    }
}

fn spec_for(trace: &str) -> irma_prep::EncoderSpec {
    match trace {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

fn generate_bundle(trace: &str, jobs: usize, seed: u64) -> irma_synth::TraceBundle {
    let config = TraceConfig {
        n_jobs: jobs,
        seed,
        max_monitor_samples: 128,
    };
    match trace {
        "pai" => pai(&config),
        "supercloud" => supercloud(&config),
        "philly" => philly(&config),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

/// Splits `"A, B => C"` into antecedent and consequent label lists.
fn parse_rule_spec(rule: &str) -> Result<(Vec<String>, Vec<String>), String> {
    let (lhs, rhs) = rule
        .split_once("=>")
        .ok_or_else(|| format!("--rule must contain `=>` (got `{rule}`)"))?;
    let side = |s: &str| -> Vec<String> {
        s.split(',')
            .map(|label| label.trim().to_string())
            .filter(|label| !label.is_empty())
            .collect()
    };
    let (ante, cons) = (side(lhs), side(rhs));
    if ante.is_empty() || cons.is_empty() {
        return Err(format!(
            "--rule needs labels on both sides of `=>` (got `{rule}`)"
        ));
    }
    Ok((ante, cons))
}

fn run(command: Command) -> Result<Outcome, Failure> {
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(Outcome::Success)
        }
        Command::Generate {
            trace,
            jobs,
            seed,
            out,
        } => {
            let bundle = generate_bundle(&trace, jobs, seed);
            let (sched, mon) = bundle
                .write_csv_dir(Path::new(&out))
                .map_err(|e| e.to_string())?;
            println!("wrote {}", sched.display());
            println!("wrote {}", mon.display());
            Ok(Outcome::Success)
        }
        Command::Analyze {
            trace,
            keyword,
            jobs,
            seed,
            top,
            dir,
            insights,
            metrics: metrics_path,
            metrics_format,
            verbose_stages,
            trace_log,
            budget_itemsets,
            budget_tree_mb,
            deadline,
            threads,
        } => {
            let merged = match dir {
                Some(dir) => read_merged_csv_dir(Path::new(&dir), &trace)
                    .map_err(|e| format!("reading trace CSVs: {e}"))?,
                None => generate_bundle(&trace, jobs, seed).merged(),
            };
            // The sink stays a no-op unless somebody asked for output.
            let mut metrics = if metrics_path.is_some() || verbose_stages {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            };
            if let Some(path) = &trace_log {
                let sink = EventSink::create(Path::new(path))
                    .map_err(|e| format!("creating trace log {path}: {e}"))?;
                metrics = metrics.with_event_sink(sink);
                eprintln!("streaming trace events to {path}");
            }
            let config = AnalysisConfig {
                budget: ExecBudget {
                    max_itemsets: budget_itemsets,
                    max_tree_bytes: budget_tree_mb.map(|mb| mb.saturating_mul(1 << 20)),
                    deadline,
                    panic_after_emits: None,
                },
                ..AnalysisConfig::default()
            };
            let run_analysis = || {
                try_analyze_traced(
                    &merged,
                    &spec_for(&trace),
                    &config,
                    &metrics,
                    &Provenance::disabled(),
                )
            };
            // --threads pins the work-stealing pool width; otherwise the
            // global registry (one worker per core) serves the run.
            let analysis = match threads {
                Some(n) => rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(|e| format!("building {n}-thread mining pool: {e}"))?
                    .install(run_analysis),
                None => run_analysis(),
            }
            .map_err(Failure::Pipeline)?;
            if let Some(degradation) = &analysis.degradation {
                eprintln!(
                    "warning: degraded result — budget breached {} time(s) \
                     ({}); final knobs: min_support={:.4}, max_len={}",
                    degradation.steps.len(),
                    degradation.steps[0].breach,
                    degradation.final_min_support,
                    degradation.final_max_len,
                );
            }
            eprintln!("{}", analysis.summary());
            print!("{}", analysis.render_keyword_with(&keyword, top, &metrics));
            if insights {
                print!("{}", insight_report(&analysis, &keyword, top));
            }
            if metrics.is_enabled() {
                let snapshot = metrics.snapshot();
                if verbose_stages {
                    eprint!("{}", snapshot.render_table());
                }
                if let Some(path) = metrics_path {
                    let rendered = match metrics_format {
                        MetricsFormat::Json => snapshot.to_json(),
                        MetricsFormat::OpenMetrics => snapshot.to_openmetrics(),
                        MetricsFormat::Table => snapshot.render_table(),
                    };
                    std::fs::write(&path, rendered)
                        .map_err(|e| format!("writing metrics to {path}: {e}"))?;
                    eprintln!("wrote metrics {path}");
                }
            }
            if analysis.degradation.is_some() {
                Ok(Outcome::Degraded)
            } else {
                Ok(Outcome::Success)
            }
        }
        Command::Explain {
            trace,
            rule,
            keyword,
            jobs,
            seed,
            dir,
            provenance: provenance_path,
            c_lift,
            c_supp,
        } => {
            let merged = match dir {
                Some(dir) => read_merged_csv_dir(Path::new(&dir), &trace)
                    .map_err(|e| format!("reading trace CSVs: {e}"))?,
                None => generate_bundle(&trace, jobs, seed).merged(),
            };
            let (ante_labels, cons_labels) = parse_rule_spec(&rule)?;
            let keyword = keyword.unwrap_or_else(|| cons_labels[0].clone());

            let mut config = AnalysisConfig::default();
            if let Some(c) = c_lift {
                config.prune.c_lift = c;
            }
            if let Some(c) = c_supp {
                config.prune.c_supp = c;
            }
            config.prune.validate().map_err(|e| e.to_string())?;

            let provenance = Provenance::enabled();
            let metrics = Metrics::disabled();
            let analysis =
                analyze_traced(&merged, &spec_for(&trace), &config, &metrics, &provenance);
            analysis
                .keyword_traced(&keyword, &metrics, &provenance)
                .ok_or_else(|| format!("keyword `{keyword}` is not an item of this trace"))?;

            let resolve = |labels: &[String]| -> Result<Vec<u32>, String> {
                let mut ids = labels
                    .iter()
                    .map(|label| {
                        analysis.item(label).ok_or_else(|| {
                            format!(
                                "`{label}` is not an item of this trace (never emitted, or \
                                 dropped by the prevalence cut)"
                            )
                        })
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                ids.sort_unstable();
                Ok(ids)
            };
            let ante = resolve(&ante_labels)?;
            let cons = resolve(&cons_labels)?;

            let labeler = |id: u32| analysis.encoded.catalog.label(id).to_string();
            println!(
                "trace: {trace}  keyword: {keyword}  C_lift={:.2}  C_supp={:.2}",
                config.prune.c_lift, config.prune.c_supp
            );
            match provenance.render_explain(&ante, &cons, &labeler) {
                Some(text) => print!("{text}"),
                None => println!(
                    "rule was never a candidate: its itemset is not frequent at the \
                     configured support threshold"
                ),
            }
            if let Some(path) = provenance_path {
                std::fs::write(&path, provenance.to_jsonl(&labeler))
                    .map_err(|e| format!("writing provenance to {path}: {e}"))?;
                eprintln!("wrote provenance {path}");
            }
            Ok(Outcome::Success)
        }
        Command::Experiments {
            pai,
            supercloud,
            philly,
            seed,
            export,
        } => {
            let scale = ExperimentScale {
                pai_jobs: pai,
                supercloud_jobs: supercloud,
                philly_jobs: philly,
                seed,
            };
            let traces = prepare_all(&scale, &AnalysisConfig::default());
            println!("{}", run_all(&traces));
            if let Some(dir) = export {
                let files = export_all(&traces, Path::new(&dir)).map_err(|e| e.to_string())?;
                eprintln!("exported {} CSV files to {dir}", files.len());
            }
            Ok(Outcome::Success)
        }
        Command::Predict {
            trace,
            jobs,
            threshold,
            seed,
        } => {
            let t = prepare(
                &trace,
                &TraceConfig {
                    n_jobs: jobs,
                    seed,
                    max_monitor_samples: 128,
                },
                &AnalysisConfig::default(),
            );
            let result = failure_prediction(&t, jobs / 2, seed ^ 0xfeed, threshold);
            let e = &result.eval;
            println!(
                "{trace}: {} rules @ conf>={threshold:.2} | precision={:.3} recall={:.3} f1={:.3} accuracy={:.3} (base rate {:.3})",
                result.n_rules,
                e.precision(),
                e.recall(),
                e.f1(),
                e.accuracy(),
                e.base_rate()
            );
            Ok(Outcome::Success)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(command) => match run(command) {
            Ok(Outcome::Success) => ExitCode::SUCCESS,
            Ok(Outcome::Degraded) => ExitCode::from(4),
            Err(Failure::Runtime(message)) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
            Err(Failure::Pipeline(err)) => {
                eprintln!("pipeline error [{}]: {err}", err.stage());
                ExitCode::from(5)
            }
        },
        Err(err) => {
            eprintln!("error: {err}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
