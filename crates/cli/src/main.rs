//! `irma` — the command-line front end of the IRMA workflow.
//!
//! See [`args::USAGE`] (or run `irma help`) for the grammar. Every
//! subcommand is deterministic per `--seed`.

mod args;

use std::path::Path;
use std::process::ExitCode;

use args::{parse, Command, USAGE};
use irma_core::experiments::run_all;
use irma_core::export::export_all;
use irma_core::insights::insight_report;
use irma_core::{
    analyze_with, failure_prediction, pai_spec, philly_spec, prepare, prepare_all, supercloud_spec,
    AnalysisConfig, ExperimentScale, Metrics,
};
use irma_synth::{pai, philly, read_merged_csv_dir, supercloud, TraceConfig};

fn spec_for(trace: &str) -> irma_prep::EncoderSpec {
    match trace {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

fn generate_bundle(trace: &str, jobs: usize, seed: u64) -> irma_synth::TraceBundle {
    let config = TraceConfig {
        n_jobs: jobs,
        seed,
        max_monitor_samples: 128,
    };
    match trace {
        "pai" => pai(&config),
        "supercloud" => supercloud(&config),
        "philly" => philly(&config),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Generate {
            trace,
            jobs,
            seed,
            out,
        } => {
            let bundle = generate_bundle(&trace, jobs, seed);
            let (sched, mon) = bundle
                .write_csv_dir(Path::new(&out))
                .map_err(|e| e.to_string())?;
            println!("wrote {}", sched.display());
            println!("wrote {}", mon.display());
            Ok(())
        }
        Command::Analyze {
            trace,
            keyword,
            jobs,
            seed,
            top,
            dir,
            insights,
            metrics: metrics_path,
            verbose_stages,
        } => {
            let merged = match dir {
                Some(dir) => read_merged_csv_dir(Path::new(&dir), &trace)
                    .map_err(|e| format!("reading trace CSVs: {e}"))?,
                None => generate_bundle(&trace, jobs, seed).merged(),
            };
            // The sink stays a no-op unless somebody asked for output.
            let metrics = if metrics_path.is_some() || verbose_stages {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            };
            let analysis = analyze_with(
                &merged,
                &spec_for(&trace),
                &AnalysisConfig::default(),
                &metrics,
            );
            eprintln!("{}", analysis.summary());
            print!("{}", analysis.render_keyword_with(&keyword, top, &metrics));
            if insights {
                print!("{}", insight_report(&analysis, &keyword, top));
            }
            if metrics.is_enabled() {
                let snapshot = metrics.snapshot();
                if verbose_stages {
                    eprint!("{}", snapshot.render_table());
                }
                if let Some(path) = metrics_path {
                    std::fs::write(&path, snapshot.to_json())
                        .map_err(|e| format!("writing metrics to {path}: {e}"))?;
                    eprintln!("wrote metrics {path}");
                }
            }
            Ok(())
        }
        Command::Experiments {
            pai,
            supercloud,
            philly,
            seed,
            export,
        } => {
            let scale = ExperimentScale {
                pai_jobs: pai,
                supercloud_jobs: supercloud,
                philly_jobs: philly,
                seed,
            };
            let traces = prepare_all(&scale, &AnalysisConfig::default());
            println!("{}", run_all(&traces));
            if let Some(dir) = export {
                let files = export_all(&traces, Path::new(&dir)).map_err(|e| e.to_string())?;
                eprintln!("exported {} CSV files to {dir}", files.len());
            }
            Ok(())
        }
        Command::Predict {
            trace,
            jobs,
            threshold,
            seed,
        } => {
            let t = prepare(
                &trace,
                &TraceConfig {
                    n_jobs: jobs,
                    seed,
                    max_monitor_samples: 128,
                },
                &AnalysisConfig::default(),
            );
            let result = failure_prediction(&t, jobs / 2, seed ^ 0xfeed, threshold);
            let e = &result.eval;
            println!(
                "{trace}: {} rules @ conf>={threshold:.2} | precision={:.3} recall={:.3} f1={:.3} accuracy={:.3} (base rate {:.3})",
                result.n_rules,
                e.precision(),
                e.recall(),
                e.f1(),
                e.accuracy(),
                e.base_rate()
            );
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(command) => match run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(err) => {
            eprintln!("error: {err}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
