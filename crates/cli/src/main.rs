//! `irma` — the command-line front end of the IRMA workflow.
//!
//! See [`args::USAGE`] (or run `irma help`) for the grammar. Every
//! subcommand is deterministic per `--seed`.

mod args;
mod signals;

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use args::{parse, Command, MetricsFormat, USAGE};
use irma_core::experiments::run_all;
use irma_core::export::export_all;
use irma_core::insights::insight_report;
use irma_core::{
    analyze_traced, failure_prediction, pai_spec, philly_spec, prepare, prepare_all,
    supercloud_spec, try_analyze_traced, AnalysisConfig, EventSink, ExecBudget, ExperimentScale,
    Metrics, PipelineError, Provenance,
};
use irma_core::{watch_feed, Emission, WatchConfig, KW_FAILED};
use irma_mine::{ItemCatalog, MinerConfig};
use irma_obs::serve::{ScrapeHandler, ScrapeResponse, ScrapeServer};
use irma_prep::fit;
use irma_rules::{Rule, RuleConfig};
use irma_synth::{pai, philly, read_merged_csv_dir, supercloud, TraceConfig};

/// How a successful subcommand finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Full-fidelity result — exit code 0.
    Success,
    /// The degradation ladder relaxed the mining knobs — exit code 4, so
    /// scripts can tell a best-effort answer from a complete one.
    Degraded,
}

/// Why a subcommand failed.
#[derive(Debug)]
enum Failure {
    /// IO problems, unknown keywords, ... — exit code 1.
    Runtime(String),
    /// A typed pipeline failure from the fault-tolerant entry points —
    /// exit code 5 (never a panic/abort, i.e. never 101).
    Pipeline(PipelineError),
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure::Runtime(message)
    }
}

fn spec_for(trace: &str) -> irma_prep::EncoderSpec {
    match trace {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

fn generate_bundle(trace: &str, jobs: usize, seed: u64) -> irma_synth::TraceBundle {
    let config = TraceConfig {
        n_jobs: jobs,
        seed,
        max_monitor_samples: 128,
    };
    match trace {
        "pai" => pai(&config),
        "supercloud" => supercloud(&config),
        "philly" => philly(&config),
        other => unreachable!("trace validated by parser: {other}"),
    }
}

/// Splits `"A, B => C"` into antecedent and consequent label lists.
fn parse_rule_spec(rule: &str) -> Result<(Vec<String>, Vec<String>), String> {
    let (lhs, rhs) = rule
        .split_once("=>")
        .ok_or_else(|| format!("--rule must contain `=>` (got `{rule}`)"))?;
    let side = |s: &str| -> Vec<String> {
        s.split(',')
            .map(|label| label.trim().to_string())
            .filter(|label| !label.is_empty())
            .collect()
    };
    let (ante, cons) = (side(lhs), side(rhs));
    if ante.is_empty() || cons.is_empty() {
        return Err(format!(
            "--rule needs labels on both sides of `=>` (got `{rule}`)"
        ));
    }
    Ok((ante, cons))
}

/// Builds the synthetic two-regime feed for `irma watch <trace>`: a
/// normal-load stretch, then a failure wave (failures plus every 4th
/// healthy job from a second seed), both encoded with the preparation
/// frozen on the normal regime. Returns the feed as comma-separated
/// item-id lines plus the catalog for rendering rules.
fn synthetic_watch_feed(trace: &str, jobs: usize, seed: u64) -> (String, ItemCatalog) {
    let normal_frame = generate_bundle(trace, jobs, seed).merged();
    let fitted = fit(&normal_frame, &spec_for(trace));
    let normal_db = fitted.transform(&normal_frame);

    let wave_frame = generate_bundle(trace, jobs.saturating_mul(2), seed.wrapping_add(1)).merged();
    let wave_db = fitted.transform(&wave_frame);
    let failed_item = fitted.catalog().id(KW_FAILED);

    let mut lines = String::new();
    let mut push_txn = |txn: &[u32]| {
        let mut first = true;
        for item in txn {
            if !first {
                lines.push(',');
            }
            first = false;
            lines.push_str(&item.to_string());
        }
        lines.push('\n');
    };
    for i in 0..normal_db.len() {
        push_txn(normal_db.transaction(i));
    }
    for i in 0..wave_db.len() {
        let txn = wave_db.transaction(i);
        let is_failure = failed_item.is_some_and(|f| txn.binary_search(&f).is_ok());
        if is_failure || i % 4 == 0 {
            push_txn(txn);
        }
    }
    (lines, fitted.catalog().clone())
}

/// The Content-Type a Prometheus-style scraper expects for OpenMetrics.
const OPENMETRICS_CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Shared liveness state between the watch loop and the `/healthz`
/// handler: when the daemon started and (as microseconds since then)
/// when it last emitted. `u64::MAX` means no emission yet.
struct WatchHealth {
    started: Instant,
    last_emission_micros: AtomicU64,
}

impl WatchHealth {
    fn new() -> WatchHealth {
        WatchHealth {
            started: Instant::now(),
            last_emission_micros: AtomicU64::new(u64::MAX),
        }
    }

    fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Stamps "an emission just happened" (called from `on_emit`).
    fn mark_emission(&self) {
        let micros = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX - 1);
        self.last_emission_micros
            .store(micros.min(u64::MAX - 1), Ordering::Relaxed);
    }

    /// Seconds since the last emission; `None` before the first one.
    fn last_emission_age_seconds(&self) -> Option<f64> {
        let at = self.last_emission_micros.load(Ordering::Relaxed);
        if at == u64::MAX {
            return None;
        }
        let now = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        Some(now.saturating_sub(at) as f64 / 1e6)
    }

    /// The `/healthz` JSON document.
    fn to_json(&self, degraded: bool) -> String {
        let age = match self.last_emission_age_seconds() {
            Some(age) => format!("{age:.6}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"status\":\"ok\",\"uptime_seconds\":{:.6},\"degraded\":{},\
             \"last_emission_age_seconds\":{}}}\n",
            self.uptime_seconds(),
            degraded,
            age
        )
    }
}

fn render_watch_rule(rule: &Rule, catalog: Option<&ItemCatalog>) -> String {
    match catalog {
        Some(catalog) => rule.render(catalog),
        None => format!(
            "{:?} => {:?}  (supp={:.2}, conf={:.2}, lift={:.2})",
            rule.antecedent.items(),
            rule.consequent.items(),
            rule.support,
            rule.confidence,
            rule.lift
        ),
    }
}

fn run(command: Command) -> Result<Outcome, Failure> {
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(Outcome::Success)
        }
        Command::Generate {
            trace,
            jobs,
            seed,
            out,
        } => {
            let bundle = generate_bundle(&trace, jobs, seed);
            let (sched, mon) = bundle
                .write_csv_dir(Path::new(&out))
                .map_err(|e| e.to_string())?;
            println!("wrote {}", sched.display());
            println!("wrote {}", mon.display());
            Ok(Outcome::Success)
        }
        Command::Analyze {
            trace,
            keyword,
            jobs,
            seed,
            top,
            dir,
            insights,
            metrics: metrics_path,
            metrics_format,
            verbose_stages,
            trace_log,
            budget_itemsets,
            budget_tree_mb,
            deadline,
            threads,
        } => {
            let merged = match dir {
                Some(dir) => read_merged_csv_dir(Path::new(&dir), &trace)
                    .map_err(|e| format!("reading trace CSVs: {e}"))?,
                None => generate_bundle(&trace, jobs, seed).merged(),
            };
            // The sink stays a no-op unless somebody asked for output.
            let mut metrics = if metrics_path.is_some() || verbose_stages {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            };
            if let Some(path) = &trace_log {
                let sink = EventSink::create(Path::new(path))
                    .map_err(|e| format!("creating trace log {path}: {e}"))?;
                metrics = metrics.with_event_sink(sink);
                eprintln!("streaming trace events to {path}");
            }
            let config = AnalysisConfig {
                budget: ExecBudget {
                    max_itemsets: budget_itemsets,
                    max_tree_bytes: budget_tree_mb.map(|mb| mb.saturating_mul(1 << 20)),
                    deadline,
                    panic_after_emits: None,
                },
                ..AnalysisConfig::default()
            };
            let run_analysis = || {
                let result = try_analyze_traced(
                    &merged,
                    &spec_for(&trace),
                    &config,
                    &metrics,
                    &Provenance::disabled(),
                );
                // Inside `install`, so this reads the pool that actually
                // mined (the global registry when --threads is absent).
                irma_core::record_sched_stats(&metrics);
                result
            };
            // --threads pins the work-stealing pool width; otherwise the
            // global registry (one worker per core) serves the run.
            let analysis = match threads {
                Some(n) => rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(|e| format!("building {n}-thread mining pool: {e}"))?
                    .install(run_analysis),
                None => run_analysis(),
            }
            .map_err(Failure::Pipeline)?;
            if let Some(degradation) = &analysis.degradation {
                eprintln!(
                    "warning: degraded result — budget breached {} time(s) \
                     ({}); final knobs: min_support={:.4}, max_len={}",
                    degradation.steps.len(),
                    degradation.steps[0].breach,
                    degradation.final_min_support,
                    degradation.final_max_len,
                );
            }
            eprintln!("{}", analysis.summary());
            print!("{}", analysis.render_keyword_with(&keyword, top, &metrics));
            if insights {
                print!("{}", insight_report(&analysis, &keyword, top));
            }
            if metrics.is_enabled() {
                let snapshot = metrics.snapshot();
                if verbose_stages {
                    eprint!("{}", snapshot.render_table());
                }
                if let Some(path) = metrics_path {
                    let rendered = match metrics_format {
                        MetricsFormat::Json => snapshot.to_json(),
                        MetricsFormat::OpenMetrics => snapshot.to_openmetrics(),
                        MetricsFormat::Table => snapshot.render_table(),
                    };
                    std::fs::write(&path, rendered)
                        .map_err(|e| format!("writing metrics to {path}: {e}"))?;
                    eprintln!("wrote metrics {path}");
                }
            }
            if analysis.degradation.is_some() {
                Ok(Outcome::Degraded)
            } else {
                Ok(Outcome::Success)
            }
        }
        Command::Explain {
            trace,
            rule,
            keyword,
            jobs,
            seed,
            dir,
            provenance: provenance_path,
            c_lift,
            c_supp,
        } => {
            let merged = match dir {
                Some(dir) => read_merged_csv_dir(Path::new(&dir), &trace)
                    .map_err(|e| format!("reading trace CSVs: {e}"))?,
                None => generate_bundle(&trace, jobs, seed).merged(),
            };
            let (ante_labels, cons_labels) = parse_rule_spec(&rule)?;
            let keyword = keyword.unwrap_or_else(|| cons_labels[0].clone());

            let mut config = AnalysisConfig::default();
            if let Some(c) = c_lift {
                config.prune.c_lift = c;
            }
            if let Some(c) = c_supp {
                config.prune.c_supp = c;
            }
            config.prune.validate().map_err(|e| e.to_string())?;

            let provenance = Provenance::enabled();
            let metrics = Metrics::disabled();
            let analysis =
                analyze_traced(&merged, &spec_for(&trace), &config, &metrics, &provenance);
            analysis
                .keyword_traced(&keyword, &metrics, &provenance)
                .ok_or_else(|| format!("keyword `{keyword}` is not an item of this trace"))?;

            let resolve = |labels: &[String]| -> Result<Vec<u32>, String> {
                let mut ids = labels
                    .iter()
                    .map(|label| {
                        analysis.item(label).ok_or_else(|| {
                            format!(
                                "`{label}` is not an item of this trace (never emitted, or \
                                 dropped by the prevalence cut)"
                            )
                        })
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                ids.sort_unstable();
                Ok(ids)
            };
            let ante = resolve(&ante_labels)?;
            let cons = resolve(&cons_labels)?;

            let labeler = |id: u32| analysis.encoded.catalog.label(id).to_string();
            println!(
                "trace: {trace}  keyword: {keyword}  C_lift={:.2}  C_supp={:.2}",
                config.prune.c_lift, config.prune.c_supp
            );
            // Resolve the generated rule (if any) via a trie walk rather
            // than scanning the flat export.
            if let Some(rule) = analysis.find_rule(&ante, &cons) {
                println!(
                    "rule: supp={:.4}  conf={:.4}  lift={:.4}",
                    rule.support, rule.confidence, rule.lift
                );
            }
            match provenance.render_explain(&ante, &cons, &labeler) {
                Some(text) => print!("{text}"),
                None => println!(
                    "rule was never a candidate: its itemset is not frequent at the \
                     configured support threshold"
                ),
            }
            if let Some(path) = provenance_path {
                std::fs::write(&path, provenance.to_jsonl(&labeler))
                    .map_err(|e| format!("writing provenance to {path}: {e}"))?;
                eprintln!("wrote provenance {path}");
            }
            Ok(Outcome::Success)
        }
        Command::Experiments {
            pai,
            supercloud,
            philly,
            seed,
            export,
        } => {
            let scale = ExperimentScale {
                pai_jobs: pai,
                supercloud_jobs: supercloud,
                philly_jobs: philly,
                seed,
            };
            let traces = prepare_all(&scale, &AnalysisConfig::default());
            println!("{}", run_all(&traces));
            if let Some(dir) = export {
                let files = export_all(&traces, Path::new(&dir)).map_err(|e| e.to_string())?;
                eprintln!("exported {} CSV files to {dir}", files.len());
            }
            Ok(Outcome::Success)
        }
        Command::Watch {
            trace,
            feed,
            jobs,
            seed,
            window,
            warmup,
            drift_threshold,
            cadence,
            max_arrivals,
            min_support,
            min_lift,
            keyword,
            top,
            metrics: metrics_path,
            metrics_format,
            listen,
            trace_log,
            budget_itemsets,
            budget_tree_mb,
            deadline,
            threads,
        } => {
            // Handlers go in before feed setup: synthesizing a large
            // trace can take seconds, and a SIGTERM landing in that
            // window must still drain instead of hitting the default
            // disposition.
            let shutdown = signals::install();

            // --listen implies live metrics: the scrape endpoint serves
            // the same registry the snapshot file would.
            let mut metrics = if metrics_path.is_some() || listen.is_some() {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            };
            if let Some(path) = &trace_log {
                let sink = EventSink::create(Path::new(path))
                    .map_err(|e| format!("creating trace log {path}: {e}"))?;
                metrics = metrics.with_event_sink(sink);
                eprintln!("streaming trace events to {path}");
            }

            // Feed + (for the synthetic mode) a catalog for rendering.
            let (reader, catalog): (Box<dyn std::io::BufRead + Send>, Option<ItemCatalog>) =
                match (&feed, &trace) {
                    (Some(src), _) if src == "-" => {
                        (Box::new(std::io::BufReader::new(std::io::stdin())), None)
                    }
                    (Some(src), _) => {
                        let file = std::fs::File::open(src)
                            .map_err(|e| format!("opening feed {src}: {e}"))?;
                        (Box::new(std::io::BufReader::new(file)), None)
                    }
                    (None, Some(trace)) => {
                        let (lines, catalog) = synthetic_watch_feed(trace, jobs, seed);
                        (Box::new(std::io::Cursor::new(lines)), Some(catalog))
                    }
                    (None, None) => unreachable!("parser enforces a trace or --feed"),
                };

            // Keyword: a label looked up in the synthetic catalog, or a
            // raw item id for external feeds (which carry no labels).
            let keyword_item = match (&catalog, keyword) {
                (Some(catalog), Some(label)) => Some(
                    catalog
                        .id(&label)
                        .ok_or_else(|| format!("keyword `{label}` is not an item of this trace"))?,
                ),
                (Some(catalog), None) => {
                    let failed = catalog.id(KW_FAILED);
                    if failed.is_none() {
                        eprintln!(
                            "note: trace has no `{KW_FAILED}` item; emitting top rules by lift"
                        );
                    }
                    failed
                }
                (None, Some(raw)) => Some(raw.parse::<u32>().map_err(|_| {
                    format!("--feed mode has no labels; --keyword must be an item id (got `{raw}`)")
                })?),
                (None, None) => None,
            };

            let config = WatchConfig {
                shutdown: Some(shutdown),
                window,
                warmup: warmup.unwrap_or_else(|| (window / 2).max(1)),
                miner: MinerConfig {
                    min_support,
                    ..MinerConfig::default()
                },
                rules: RuleConfig::with_min_lift(min_lift),
                budget: ExecBudget {
                    max_itemsets: budget_itemsets,
                    max_tree_bytes: budget_tree_mb.map(|mb| mb.saturating_mul(1 << 20)),
                    deadline,
                    panic_after_emits: None,
                },
                drift_threshold,
                cadence,
                max_arrivals,
                keyword: keyword_item,
                top,
                ..WatchConfig::default()
            };

            let write_metrics = |metrics: &Metrics| {
                if let Some(path) = &metrics_path {
                    let snapshot = metrics.snapshot();
                    let rendered = match metrics_format {
                        MetricsFormat::Json => snapshot.to_json(),
                        MetricsFormat::OpenMetrics => snapshot.to_openmetrics(),
                        MetricsFormat::Table => snapshot.render_table(),
                    };
                    // Snapshot writes are best-effort, like the trace
                    // log: a full disk must not kill the daemon.
                    if let Err(e) = std::fs::write(path, rendered) {
                        eprintln!("warning: writing metrics to {path}: {e}");
                    }
                }
            };

            // The pool is built up front (rather than inline at install
            // time) so the scrape handler below — which runs on its own
            // connection thread, outside any pool — can still read this
            // pool's scheduler counters.
            let pool = threads
                .map(|n| {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build()
                        .map(Arc::new)
                        .map_err(|e| format!("building {n}-thread mining pool: {e}"))
                })
                .transpose()?;

            let health = Arc::new(WatchHealth::new());
            let _server = match &listen {
                Some(addr) => {
                    let handler: ScrapeHandler = {
                        let metrics = metrics.clone();
                        let health = Arc::clone(&health);
                        let pool = pool.clone();
                        Arc::new(move |path: &str| match path {
                            "/metrics" => {
                                let sched = match &pool {
                                    Some(pool) => pool.sched_stats(),
                                    // No --threads: the daemon mines on
                                    // the global registry.
                                    None => rayon::sched_stats(),
                                };
                                irma_core::record_sched_snapshot(&metrics, &sched);
                                metrics.gauge("watch.uptime_seconds", health.uptime_seconds());
                                if let Some(age) = health.last_emission_age_seconds() {
                                    metrics.gauge("watch.last_emission_age_seconds", age);
                                }
                                Some(ScrapeResponse {
                                    content_type: OPENMETRICS_CONTENT_TYPE,
                                    body: metrics.snapshot().to_openmetrics(),
                                })
                            }
                            "/healthz" => Some(ScrapeResponse {
                                content_type: "application/json",
                                body: health.to_json(metrics.is_degraded()),
                            }),
                            _ => None,
                        })
                    };
                    let server = ScrapeServer::start(addr.as_str(), handler)
                        .map_err(|e| format!("binding scrape endpoint {addr}: {e}"))?;
                    // CI and scripts parse this line for the ephemeral
                    // port; keep its shape stable.
                    eprintln!("listening on http://{}", server.local_addr());
                    Some(server)
                }
                None => None,
            };

            let on_emit = |e: &Emission| {
                health.mark_emission();
                let drift = if e.drift.is_finite() {
                    format!("{:.3}", e.drift)
                } else {
                    "inf".to_string()
                };
                let degraded = if e.degradation_steps > 0 {
                    format!(" [degraded: {} ladder step(s)]", e.degradation_steps)
                } else {
                    String::new()
                };
                println!(
                    "emission {:>3} @ arrival {:>7}: window {} drift {} | {} rule(s){}",
                    e.seq,
                    e.arrivals,
                    e.window,
                    drift,
                    e.rules.len(),
                    degraded
                );
                for rule in &e.rules {
                    println!("    {}", render_watch_rule(rule, catalog.as_ref()));
                }
                write_metrics(&metrics);
            };

            let run_daemon = || watch_feed(reader, &config, &metrics, on_emit);
            let summary = match &pool {
                Some(pool) => pool.install(run_daemon),
                None => run_daemon(),
            };

            write_metrics(&metrics);
            if let Some(error) = &summary.last_error {
                eprintln!("warning: last failed emission: {error}");
            }
            eprintln!(
                "watch done: {} arrivals, {} emission(s) ({} degraded, {} failed), \
                 {} garbled line(s), {} sampled out, {} backpressure wait(s), final window {}",
                summary.arrivals,
                summary.emissions,
                summary.degraded_emissions,
                summary.failed_emissions,
                summary.garbled_lines,
                summary.sampled_out,
                summary.backpressure_waits,
                summary.final_window,
            );
            if summary.degraded_emissions > 0
                || summary.failed_emissions > 0
                || metrics.is_degraded()
            {
                Ok(Outcome::Degraded)
            } else {
                Ok(Outcome::Success)
            }
        }
        Command::Serve {
            listen,
            workers,
            queue_depth,
            cache_entries,
            budget_itemsets,
            budget_tree_mb,
            default_deadline,
            max_deadline,
            threads,
        } => {
            let shutdown = signals::install();
            let metrics = Metrics::enabled();
            let config = irma_serve::ServeConfig {
                workers,
                queue_depth,
                cache_entries,
                default_budget: ExecBudget {
                    max_itemsets: budget_itemsets,
                    max_tree_bytes: budget_tree_mb.map(|mb| mb.saturating_mul(1 << 20)),
                    deadline: None,
                    panic_after_emits: None,
                },
                default_deadline,
                max_deadline,
                ..irma_serve::ServeConfig::default()
            };
            // --threads pins the mining pool the request handlers mine
            // on; otherwise the global registry (one worker per core)
            // serves every request.
            let pool = threads
                .map(|n| {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build()
                        .map_err(|e| format!("building {n}-thread mining pool: {e}"))
                })
                .transpose()?;
            let serve = || -> Result<(), String> {
                let server = irma_serve::Server::start(listen.as_str(), config, metrics.clone())
                    .map_err(|e| format!("binding serve endpoint {listen}: {e}"))?;
                // CI and scripts parse this line for the ephemeral
                // port; keep its shape stable (same as `watch --listen`).
                eprintln!("listening on http://{}", server.local_addr());
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                eprintln!("shutdown signal received; draining in-flight requests");
                server.shutdown();
                Ok(())
            };
            match pool {
                Some(pool) => pool.install(serve)?,
                None => serve()?,
            }
            eprintln!("serve done");
            Ok(Outcome::Success)
        }
        Command::Trace { input, out } => {
            let jsonl = if input == "-" {
                let mut text = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                text
            } else {
                std::fs::read_to_string(&input)
                    .map_err(|e| format!("reading trace log {input}: {e}"))?
            };
            let rendered =
                irma_core::chrome_trace(&jsonl).map_err(|e| format!("converting {input}: {e}"))?;
            match out {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| format!("writing chrome trace to {path}: {e}"))?;
                    eprintln!("wrote chrome trace {path}");
                }
                None => print!("{rendered}"),
            }
            Ok(Outcome::Success)
        }
        Command::Predict {
            trace,
            jobs,
            threshold,
            seed,
        } => {
            let t = prepare(
                &trace,
                &TraceConfig {
                    n_jobs: jobs,
                    seed,
                    max_monitor_samples: 128,
                },
                &AnalysisConfig::default(),
            );
            let result = failure_prediction(&t, jobs / 2, seed ^ 0xfeed, threshold);
            let e = &result.eval;
            println!(
                "{trace}: {} rules @ conf>={threshold:.2} | precision={:.3} recall={:.3} f1={:.3} accuracy={:.3} (base rate {:.3})",
                result.n_rules,
                e.precision(),
                e.recall(),
                e.f1(),
                e.accuracy(),
                e.base_rate()
            );
            Ok(Outcome::Success)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(command) => match run(command) {
            Ok(Outcome::Success) => ExitCode::SUCCESS,
            Ok(Outcome::Degraded) => ExitCode::from(4),
            Err(Failure::Runtime(message)) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
            Err(Failure::Pipeline(err)) => {
                eprintln!("pipeline error [{}]: {err}", err.stage());
                ExitCode::from(5)
            }
        },
        Err(err) => {
            eprintln!("error: {err}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
