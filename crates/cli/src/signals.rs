//! SIGTERM/SIGINT handling for the long-running subcommands.
//!
//! Hand-rolled (no `libc`/`signal-hook` dependency, per the workspace's
//! from-scratch policy): the raw `signal(2)` symbol from the platform C
//! library installs a handler that only performs atomic stores, which is
//! async-signal-safe. The daemon loops poll the returned flag and drain
//! cleanly — glibc's `signal` gives BSD (`SA_RESTART`) semantics, so
//! blocked reads are *not* interrupted; shutdown relies on the consumers
//! checking the flag between work items, which both `irma watch` and
//! `irma serve` do.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

/// Points at the `AtomicBool` inside the [`install`]-returned `Arc`
/// (kept alive forever by a leaked clone), so the signal handler can
/// reach it with nothing but atomic loads and stores.
static FLAG_PTR: AtomicPtr<AtomicBool> = AtomicPtr::new(std::ptr::null_mut());

#[cfg(unix)]
mod imp {
    use super::{Ordering, FLAG_PTR};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: atomic load + atomic store.
        let flag = FLAG_PTR.load(Ordering::Acquire);
        if !flag.is_null() {
            unsafe { (*flag).store(true, Ordering::Release) };
        }
    }

    pub fn install_handlers() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix builds run without signal-driven shutdown (ctrl-C still
    /// terminates the process the default way).
    pub fn install_handlers() {}
}

/// Installs the SIGTERM/SIGINT handlers (idempotent) and returns the
/// flag they set. The flag's backing allocation is leaked once so the
/// handler can never observe a dangling pointer.
pub fn install() -> Arc<AtomicBool> {
    static INSTALL: std::sync::OnceLock<Arc<AtomicBool>> = std::sync::OnceLock::new();
    Arc::clone(INSTALL.get_or_init(|| {
        let flag = Arc::new(AtomicBool::new(false));
        // Leak one clone: the pointer stays valid for the process
        // lifetime regardless of what callers drop.
        let leaked: *const AtomicBool = Arc::as_ptr(&flag);
        std::mem::forget(Arc::clone(&flag));
        FLAG_PTR.store(leaked.cast_mut(), Ordering::Release);
        imp::install_handlers();
        flag
    }))
}
