//! # irma-cli — library surface of the `irma` binary
//!
//! The argument grammar lives here so it can be unit-tested; the binary
//! (`src/main.rs`) only dispatches parsed [`args::Command`]s.

pub mod args;
