//! Hand-rolled argument parsing for the `irma` binary.
//!
//! Kept dependency-free (no clap) per the workspace's from-scratch policy;
//! the grammar is small enough that a flag map suffices.

use std::collections::HashMap;
use std::time::Duration;

/// Output format for the `--metrics` snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Hand-rolled JSON object (the default; schema in DESIGN.md §4).
    #[default]
    Json,
    /// OpenMetrics text exposition (`# TYPE` lines, `# EOF` terminator).
    OpenMetrics,
    /// The human-readable stage table.
    Table,
}

impl std::str::FromStr for MetricsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<MetricsFormat, String> {
        match s {
            "json" => Ok(MetricsFormat::Json),
            "openmetrics" => Ok(MetricsFormat::OpenMetrics),
            "table" => Ok(MetricsFormat::Table),
            other => Err(format!(
                "unknown metrics format `{other}` (expected json|openmetrics|table)"
            )),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `irma generate <trace> [--jobs N] [--seed S] [--out DIR]`
    Generate {
        /// Trace profile name.
        trace: String,
        /// Jobs to generate.
        jobs: usize,
        /// RNG seed.
        seed: u64,
        /// Output directory for the CSV pair.
        out: String,
    },
    /// `irma analyze <trace> [--keyword K] [--jobs N] [--seed S] [--top N]
    ///  [--dir DIR]` — `--dir` re-reads CSVs written by `generate`.
    Analyze {
        /// Trace profile name.
        trace: String,
        /// Analysis keyword (item label).
        keyword: String,
        /// Jobs to generate when `--dir` is absent.
        jobs: usize,
        /// RNG seed.
        seed: u64,
        /// Rows per table section.
        top: usize,
        /// Optional directory holding `<trace>_scheduler.csv` etc.
        dir: Option<String>,
        /// Also print natural-language insights.
        insights: bool,
        /// Optional path for a metrics snapshot of the run.
        metrics: Option<String>,
        /// Format of the `--metrics` snapshot file.
        metrics_format: MetricsFormat,
        /// Also print the per-stage timing/cardinality table.
        verbose_stages: bool,
        /// Optional path for a live JSONL trace of span/counter events.
        trace_log: Option<String>,
        /// Cap on mined itemsets before the degradation ladder kicks in.
        budget_itemsets: Option<u64>,
        /// Cap on estimated FP-tree memory, in MiB.
        budget_tree_mb: Option<u64>,
        /// Wall-clock deadline for the whole mining run (e.g. `250ms`).
        deadline: Option<Duration>,
        /// Worker threads for the mining pool (default: one per core).
        threads: Option<usize>,
    },
    /// `irma explain <trace> --rule "A, B => C" [--keyword K] [--jobs N]
    ///  [--seed S] [--dir DIR] [--provenance FILE] [--c-lift X]
    ///  [--c-supp Y]` — replay the generation/pruning decision path for
    /// one rule.
    Explain {
        /// Trace profile name.
        trace: String,
        /// The rule to explain: comma-separated antecedent labels, `=>`,
        /// comma-separated consequent labels.
        rule: String,
        /// Analysis keyword (defaults to the rule's first consequent
        /// label).
        keyword: Option<String>,
        /// Jobs to generate when `--dir` is absent.
        jobs: usize,
        /// RNG seed.
        seed: u64,
        /// Optional directory holding `<trace>_scheduler.csv` etc.
        dir: Option<String>,
        /// Optional path for the full provenance JSONL dump.
        provenance: Option<String>,
        /// Override for the `C_lift` pruning margin.
        c_lift: Option<f64>,
        /// Override for the `C_supp` pruning margin.
        c_supp: Option<f64>,
    },
    /// `irma experiments [--pai N] [--supercloud N] [--philly N] [--seed S]
    ///  [--export DIR]`
    Experiments {
        /// PAI job count.
        pai: usize,
        /// SuperCloud job count.
        supercloud: usize,
        /// Philly job count.
        philly: usize,
        /// RNG seed.
        seed: u64,
        /// Optional directory for per-artifact CSV export.
        export: Option<String>,
    },
    /// `irma watch [<trace>] [--feed FILE|-] [--window N] [--cadence N]
    ///  [--drift-threshold X] ...` — the long-running streaming daemon.
    Watch {
        /// Trace profile for the synthetic two-regime feed (and for
        /// keyword/label rendering). `None` only with `--feed`.
        trace: Option<String>,
        /// Feed source: a path of comma-separated item-id lines, or `-`
        /// for stdin. Absent = generate the synthetic feed from `trace`.
        feed: Option<String>,
        /// Jobs per synthetic regime.
        jobs: usize,
        /// RNG seed for the synthetic feed.
        seed: u64,
        /// Sliding-window capacity (transactions).
        window: usize,
        /// Skip re-emissions until the window holds this many
        /// transactions (default: half the window).
        warmup: Option<usize>,
        /// Window drift (L1 vs. last mined baseline) that triggers a
        /// re-emission.
        drift_threshold: f64,
        /// Re-emit after this many arrivals even without drift
        /// (0 disables the cadence trigger).
        cadence: usize,
        /// Stop after this many admitted arrivals (default: run to EOF).
        max_arrivals: Option<u64>,
        /// Minimum support for windowed mining.
        min_support: f64,
        /// Minimum lift for emitted rules.
        min_lift: f64,
        /// Keyword label whose cause rules each emission carries
        /// (synthetic mode only; default: the trace's failure keyword).
        keyword: Option<String>,
        /// Rules carried per emission.
        top: usize,
        /// Optional path for a metrics snapshot, rewritten per emission.
        metrics: Option<String>,
        /// Format of the `--metrics` snapshot file.
        metrics_format: MetricsFormat,
        /// Optional address (`HOST:PORT`, port 0 for ephemeral) for the
        /// embedded `/metrics` + `/healthz` scrape endpoint.
        listen: Option<String>,
        /// Optional path for a live JSONL trace of span/counter events.
        trace_log: Option<String>,
        /// Cap on mined itemsets per emission before the ladder kicks in.
        budget_itemsets: Option<u64>,
        /// Cap on estimated FP-tree memory per emission, in MiB.
        budget_tree_mb: Option<u64>,
        /// Wall-clock deadline per mining attempt (e.g. `250ms`).
        deadline: Option<Duration>,
        /// Worker threads for the mining pool (default: one per core).
        threads: Option<usize>,
    },
    /// `irma serve [--listen ADDR] [--workers N] [--queue-depth N]
    ///  [--cache-entries N] [--budget-itemsets N] [--budget-tree-mb N]
    ///  [--default-deadline DUR] [--max-deadline DUR] [--threads N]` —
    /// the multi-tenant rule-serving HTTP API.
    Serve {
        /// Bind address (`HOST:PORT`, port 0 for ephemeral).
        listen: String,
        /// HTTP worker threads.
        workers: usize,
        /// Bounded connection-queue depth (503 past it).
        queue_depth: usize,
        /// Result-cache capacity, in entries.
        cache_entries: usize,
        /// Cap on mined itemsets per request before the ladder kicks in.
        budget_itemsets: Option<u64>,
        /// Cap on estimated FP-tree memory per request, in MiB.
        budget_tree_mb: Option<u64>,
        /// Deadline when the client sends no `x-irma-timeout-ms` header.
        default_deadline: Duration,
        /// Hard cap on client-requested deadlines.
        max_deadline: Duration,
        /// Worker threads for the mining pool (default: one per core).
        threads: Option<usize>,
    },
    /// `irma trace <input.jsonl|-> [--out FILE]` — convert a JSONL trace
    /// log (`--trace-log` output) into Chrome `trace_event` JSON for
    /// chrome://tracing / Perfetto.
    Trace {
        /// The JSONL trace log, or `-` for stdin.
        input: String,
        /// Output path; stdout when absent.
        out: Option<String>,
    },
    /// `irma predict <trace> [--jobs N] [--threshold T] [--seed S]`
    Predict {
        /// Trace profile name.
        trace: String,
        /// Training job count (held-out gets half).
        jobs: usize,
        /// Positive-prediction confidence threshold.
        threshold: f64,
        /// RNG seed.
        seed: u64,
    },
    /// `irma help` or no/unknown arguments.
    Help,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

const TRACES: [&str; 3] = ["pai", "supercloud", "philly"];

/// Splits `args` into positionals and `--flag value` pairs.
fn split_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), ParseError> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| ParseError(format!("flag --{name} needs a value")))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn get_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, ParseError> {
    match flags.get(name) {
        Some(raw) => raw
            .parse()
            .map_err(|_| ParseError(format!("invalid value for --{name}: `{raw}`"))),
        None => Ok(default),
    }
}

/// Parses a human-friendly duration: an integer immediately followed by
/// a unit (`us`, `ms`, `s`, `m`), e.g. `500us`, `250ms`, `2s`, `5m`.
pub fn parse_duration(raw: &str) -> Result<Duration, String> {
    let raw = raw.trim();
    let split = raw
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| format!("duration `{raw}` is missing a unit (us|ms|s|m)"))?;
    let (digits, unit) = raw.split_at(split);
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("duration `{raw}` needs an integer before the unit"))?;
    match unit {
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        "m" => Ok(Duration::from_secs(value * 60)),
        other => Err(format!(
            "unknown duration unit `{other}` in `{raw}` (expected us|ms|s|m)"
        )),
    }
}

fn known_flags(flags: &HashMap<String, String>, allowed: &[&str]) -> Result<(), ParseError> {
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ParseError(format!("unknown flag --{key}")));
        }
    }
    Ok(())
}

fn trace_arg(positional: &[String]) -> Result<String, ParseError> {
    let trace = positional
        .first()
        .ok_or_else(|| ParseError("missing trace name (pai|supercloud|philly)".to_string()))?;
    if !TRACES.contains(&trace.as_str()) {
        return Err(ParseError(format!(
            "unknown trace `{trace}` (expected pai|supercloud|philly)"
        )));
    }
    Ok(trace.clone())
}

/// Parses the full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(subcommand) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "generate" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(&flags, &["jobs", "seed", "out"])?;
            Ok(Command::Generate {
                trace: trace_arg(&positional)?,
                jobs: get_parse(&flags, "jobs", 20_000)?,
                seed: get_parse(&flags, "seed", 0xdcc0)?,
                out: flags.get("out").cloned().unwrap_or_else(|| ".".to_string()),
            })
        }
        "analyze" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(
                &flags,
                &[
                    "keyword",
                    "jobs",
                    "seed",
                    "top",
                    "dir",
                    "insights",
                    "metrics",
                    "metrics-format",
                    "verbose-stages",
                    "trace-log",
                    "budget-itemsets",
                    "budget-tree-mb",
                    "deadline",
                    "threads",
                ],
            )?;
            Ok(Command::Analyze {
                trace: trace_arg(&positional)?,
                keyword: flags
                    .get("keyword")
                    .cloned()
                    .unwrap_or_else(|| "SM Util = 0%".to_string()),
                jobs: get_parse(&flags, "jobs", 20_000)?,
                seed: get_parse(&flags, "seed", 0xdcc0)?,
                top: get_parse(&flags, "top", 6)?,
                dir: flags.get("dir").cloned(),
                insights: get_parse(&flags, "insights", false)?,
                metrics: flags.get("metrics").cloned(),
                metrics_format: get_parse(&flags, "metrics-format", MetricsFormat::Json)?,
                verbose_stages: get_parse(&flags, "verbose-stages", false)?,
                trace_log: flags.get("trace-log").cloned(),
                budget_itemsets: flags
                    .get("budget-itemsets")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-itemsets: `{raw}`"))
                        })
                    })
                    .transpose()?,
                budget_tree_mb: flags
                    .get("budget-tree-mb")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-tree-mb: `{raw}`"))
                        })
                    })
                    .transpose()?,
                deadline: flags
                    .get("deadline")
                    .map(|raw| {
                        parse_duration(raw)
                            .map_err(|e| ParseError(format!("invalid --deadline: {e}")))
                    })
                    .transpose()?,
                threads: flags
                    .get("threads")
                    .map(|raw| match raw.parse() {
                        Ok(n) if n >= 1 => Ok(n),
                        _ => Err(ParseError(format!(
                            "invalid value for --threads: `{raw}` (need an integer >= 1)"
                        ))),
                    })
                    .transpose()?,
            })
        }
        "explain" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(
                &flags,
                &[
                    "rule",
                    "keyword",
                    "jobs",
                    "seed",
                    "dir",
                    "provenance",
                    "c-lift",
                    "c-supp",
                ],
            )?;
            let rule = flags
                .get("rule")
                .cloned()
                .ok_or_else(|| ParseError("explain needs --rule \"A, B => C\"".to_string()))?;
            if !rule.contains("=>") {
                return Err(ParseError(format!(
                    "--rule must contain `=>` separating antecedent and consequent (got `{rule}`)"
                )));
            }
            Ok(Command::Explain {
                trace: trace_arg(&positional)?,
                rule,
                keyword: flags.get("keyword").cloned(),
                jobs: get_parse(&flags, "jobs", 20_000)?,
                seed: get_parse(&flags, "seed", 0xdcc0)?,
                dir: flags.get("dir").cloned(),
                provenance: flags.get("provenance").cloned(),
                c_lift: flags
                    .get("c-lift")
                    .map(|raw| {
                        raw.parse()
                            .map_err(|_| ParseError(format!("invalid value for --c-lift: `{raw}`")))
                    })
                    .transpose()?,
                c_supp: flags
                    .get("c-supp")
                    .map(|raw| {
                        raw.parse()
                            .map_err(|_| ParseError(format!("invalid value for --c-supp: `{raw}`")))
                    })
                    .transpose()?,
            })
        }
        "experiments" => {
            let (positional, flags) = split_flags(rest)?;
            if !positional.is_empty() {
                return Err(ParseError(format!(
                    "unexpected argument `{}`",
                    positional[0]
                )));
            }
            known_flags(&flags, &["pai", "supercloud", "philly", "seed", "export"])?;
            Ok(Command::Experiments {
                pai: get_parse(&flags, "pai", 40_000)?,
                supercloud: get_parse(&flags, "supercloud", 8_000)?,
                philly: get_parse(&flags, "philly", 8_000)?,
                seed: get_parse(&flags, "seed", 0xdcc0)?,
                export: flags.get("export").cloned(),
            })
        }
        "watch" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(
                &flags,
                &[
                    "feed",
                    "jobs",
                    "seed",
                    "window",
                    "warmup",
                    "drift-threshold",
                    "cadence",
                    "max-arrivals",
                    "min-support",
                    "min-lift",
                    "keyword",
                    "top",
                    "metrics",
                    "metrics-format",
                    "listen",
                    "trace-log",
                    "budget-itemsets",
                    "budget-tree-mb",
                    "deadline",
                    "threads",
                ],
            )?;
            let feed = flags.get("feed").cloned();
            let trace = if positional.is_empty() {
                if feed.is_none() {
                    return Err(ParseError(
                        "watch needs a trace (pai|supercloud|philly) or --feed FILE|-".to_string(),
                    ));
                }
                None
            } else {
                Some(trace_arg(&positional)?)
            };
            Ok(Command::Watch {
                trace,
                feed,
                jobs: get_parse(&flags, "jobs", 6_000)?,
                seed: get_parse(&flags, "seed", 0x57)?,
                window: match get_parse(&flags, "window", 2_000)? {
                    0 => return Err(ParseError("--window must be >= 1".to_string())),
                    n => n,
                },
                warmup: flags
                    .get("warmup")
                    .map(|raw| {
                        raw.parse()
                            .map_err(|_| ParseError(format!("invalid value for --warmup: `{raw}`")))
                    })
                    .transpose()?,
                drift_threshold: get_parse(&flags, "drift-threshold", 0.35)?,
                cadence: get_parse(&flags, "cadence", 2_000)?,
                max_arrivals: flags
                    .get("max-arrivals")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --max-arrivals: `{raw}`"))
                        })
                    })
                    .transpose()?,
                min_support: get_parse(&flags, "min-support", 0.05)?,
                min_lift: get_parse(&flags, "min-lift", 1.5)?,
                keyword: flags.get("keyword").cloned(),
                top: get_parse(&flags, "top", 5)?,
                metrics: flags.get("metrics").cloned(),
                metrics_format: get_parse(&flags, "metrics-format", MetricsFormat::Json)?,
                listen: match flags.get("listen") {
                    Some(raw) if raw.contains(':') => Some(raw.clone()),
                    Some(raw) => {
                        return Err(ParseError(format!(
                            "invalid value for --listen: `{raw}` (need HOST:PORT, \
                             e.g. 127.0.0.1:9184 or 127.0.0.1:0 for an ephemeral port)"
                        )))
                    }
                    None => None,
                },
                trace_log: flags.get("trace-log").cloned(),
                budget_itemsets: flags
                    .get("budget-itemsets")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-itemsets: `{raw}`"))
                        })
                    })
                    .transpose()?,
                budget_tree_mb: flags
                    .get("budget-tree-mb")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-tree-mb: `{raw}`"))
                        })
                    })
                    .transpose()?,
                deadline: flags
                    .get("deadline")
                    .map(|raw| {
                        parse_duration(raw)
                            .map_err(|e| ParseError(format!("invalid --deadline: {e}")))
                    })
                    .transpose()?,
                threads: flags
                    .get("threads")
                    .map(|raw| match raw.parse() {
                        Ok(n) if n >= 1 => Ok(n),
                        _ => Err(ParseError(format!(
                            "invalid value for --threads: `{raw}` (need an integer >= 1)"
                        ))),
                    })
                    .transpose()?,
            })
        }
        "serve" => {
            let (positional, flags) = split_flags(rest)?;
            if !positional.is_empty() {
                return Err(ParseError(format!(
                    "unexpected argument `{}`",
                    positional[0]
                )));
            }
            known_flags(
                &flags,
                &[
                    "listen",
                    "workers",
                    "queue-depth",
                    "cache-entries",
                    "budget-itemsets",
                    "budget-tree-mb",
                    "default-deadline",
                    "max-deadline",
                    "threads",
                ],
            )?;
            let listen = match flags.get("listen") {
                Some(raw) if raw.contains(':') => raw.clone(),
                Some(raw) => {
                    return Err(ParseError(format!(
                        "invalid value for --listen: `{raw}` (need HOST:PORT, \
                         e.g. 127.0.0.1:9185 or 127.0.0.1:0 for an ephemeral port)"
                    )))
                }
                None => "127.0.0.1:9185".to_string(),
            };
            Ok(Command::Serve {
                listen,
                workers: match get_parse(&flags, "workers", 2)? {
                    0 => return Err(ParseError("--workers must be >= 1".to_string())),
                    n => n,
                },
                queue_depth: match get_parse(&flags, "queue-depth", 32)? {
                    0 => return Err(ParseError("--queue-depth must be >= 1".to_string())),
                    n => n,
                },
                cache_entries: get_parse(&flags, "cache-entries", 64)?,
                budget_itemsets: flags
                    .get("budget-itemsets")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-itemsets: `{raw}`"))
                        })
                    })
                    .transpose()?,
                budget_tree_mb: flags
                    .get("budget-tree-mb")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            ParseError(format!("invalid value for --budget-tree-mb: `{raw}`"))
                        })
                    })
                    .transpose()?,
                default_deadline: match flags.get("default-deadline") {
                    Some(raw) => parse_duration(raw)
                        .map_err(|e| ParseError(format!("invalid --default-deadline: {e}")))?,
                    None => Duration::from_secs(5),
                },
                max_deadline: match flags.get("max-deadline") {
                    Some(raw) => parse_duration(raw)
                        .map_err(|e| ParseError(format!("invalid --max-deadline: {e}")))?,
                    None => Duration::from_secs(30),
                },
                threads: flags
                    .get("threads")
                    .map(|raw| match raw.parse() {
                        Ok(n) if n >= 1 => Ok(n),
                        _ => Err(ParseError(format!(
                            "invalid value for --threads: `{raw}` (need an integer >= 1)"
                        ))),
                    })
                    .transpose()?,
            })
        }
        "trace" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(&flags, &["out"])?;
            let input = match positional.as_slice() {
                [input] => input.clone(),
                [] => {
                    return Err(ParseError(
                        "trace needs an input JSONL log (or - for stdin)".to_string(),
                    ))
                }
                [_, extra, ..] => return Err(ParseError(format!("unexpected argument `{extra}`"))),
            };
            Ok(Command::Trace {
                input,
                out: flags.get("out").cloned(),
            })
        }
        "predict" => {
            let (positional, flags) = split_flags(rest)?;
            known_flags(&flags, &["jobs", "threshold", "seed"])?;
            Ok(Command::Predict {
                trace: trace_arg(&positional)?,
                jobs: get_parse(&flags, "jobs", 20_000)?,
                threshold: get_parse(&flags, "threshold", 0.8)?,
                seed: get_parse(&flags, "seed", 0xdcc0)?,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand `{other}`"))),
    }
}

/// The help text.
pub const USAGE: &str = "\
irma — interpretable rule mining for GPU cluster traces (IPPS'24 reproduction)

USAGE:
  irma generate <trace> [--jobs N] [--seed S] [--out DIR]
      Generate a synthetic trace and write its scheduler/monitoring CSVs.
  irma analyze <trace> [--keyword K] [--jobs N] [--seed S] [--top N]
               [--dir DIR] [--insights true] [--metrics FILE]
               [--metrics-format json|openmetrics|table]
               [--verbose-stages true] [--trace-log FILE]
               [--budget-itemsets N] [--budget-tree-mb N] [--deadline DUR]
               [--threads N]
      Run the full workflow and print the keyword's cause/characteristic
      rules. With --dir, read CSVs previously written by `generate`.
      --metrics writes a snapshot of per-stage timers, cardinalities, and
      per-condition prune counts (JSON by default; --metrics-format
      switches to OpenMetrics exposition or the stage table);
      --verbose-stages prints the stage table on stderr; --trace-log
      streams span_open/span_close/counter events as JSONL while the run
      executes (tail -f friendly).
      --budget-itemsets / --budget-tree-mb / --deadline bound the run
      (DUR like 500us, 250ms, 2s, 5m). On a breach the workflow retries
      with raised min-support and lowered max itemset length and flags
      the result as degraded (exit code 4); if the ladder runs out, the
      run fails with a typed error (exit code 5) instead of aborting.
      --threads pins the mining work-stealing pool to N workers
      (default: one per core); --threads 1 forces fully sequential
      mining, useful for timing baselines and deterministic profiles.

EXIT CODES:
  0  success
  1  runtime error (IO, bad keyword, ...)
  2  usage error
  4  degraded success: budgets forced relaxed mining knobs; stderr and
     the metrics snapshot carry the degradation report
  5  pipeline error: typed stage failure (parse|encode|mine|rules|
     budget|worker_panic)
  irma explain <trace> --rule \"A, B => C\" [--keyword K] [--jobs N]
               [--seed S] [--dir DIR] [--provenance FILE]
               [--c-lift X] [--c-supp Y]
      Replay the decision path for one rule: its support/confidence/lift
      inputs, the generation threshold or pruning condition that killed
      it (winner/loser edges, including marking chains), or why it
      survived. --keyword defaults to the rule's first consequent label;
      --provenance dumps every rule's record as JSONL.
  irma experiments [--pai N] [--supercloud N] [--philly N] [--seed S]
                   [--export DIR]
      Regenerate every paper table and figure (optionally exporting the
      underlying data as CSVs).
  irma watch [<trace>] [--feed FILE|-] [--jobs N] [--seed S] [--window N]
             [--warmup N] [--drift-threshold X] [--cadence N]
             [--max-arrivals N] [--min-support X] [--min-lift X]
             [--keyword K] [--top N] [--metrics FILE]
             [--metrics-format json|openmetrics|table] [--listen ADDR]
             [--trace-log FILE] [--budget-itemsets N] [--budget-tree-mb N]
             [--deadline DUR] [--threads N]
      Run the streaming daemon: ingest trace records continuously, keep
      the FP-tree of the last --window transactions incrementally
      up to date, and re-emit the keyword's failure rules whenever window
      drift crosses --drift-threshold or --cadence arrivals elapse.
      Without --feed, a synthetic two-regime feed (normal load, then a
      failure wave) is generated from <trace>; with --feed, records are
      read as comma-separated item-id lines from FILE (or stdin with -).
      Ingestion runs through a bounded ring buffer: if the feed outruns
      mining, the producer first waits (backpressure) and then an
      adaptive sampler thins admissions — both are counted and exposed
      in the metrics snapshot, which --metrics rewrites on every
      emission. Budgets behave as in `analyze`, per emission: breaches
      climb the degradation ladder, and an exhausted ladder (or a worker
      panic) fails that emission only — the daemon itself keeps running
      (exit code 4 flags any degraded or failed emission at shutdown).
      --listen HOST:PORT (port 0 picks an ephemeral one, printed on
      stderr) embeds a scrape endpoint for the lifetime of the daemon:
      GET /metrics serves the live snapshot as OpenMetrics — counters,
      gauges, le-bucketed timer histograms, and the irma_sched_* pool
      scheduler families — and GET /healthz serves a small JSON health
      document (uptime, degraded flag, seconds since the last emission).
      --listen implies metrics collection even without --metrics.
  irma serve [--listen ADDR] [--workers N] [--queue-depth N]
             [--cache-entries N] [--budget-itemsets N] [--budget-tree-mb N]
             [--default-deadline DUR] [--max-deadline DUR] [--threads N]
      Run the multi-tenant rule-serving HTTP API (default
      127.0.0.1:9185; port 0 picks an ephemeral one, printed on stderr).
      POST /v1/analyze takes a CSV body (or `fp:<fingerprint>` to replay
      a cached dataset) plus query parameters (trace=, algorithm=,
      min_support=, max_len=, min_lift=, min_confidence=, keyword=,
      top=) and returns mined rules as JSON; GET /v1/explain/{rule}?fp=F
      explains one rule from cached provenance; GET /metrics and
      GET /healthz expose the runtime counters. Tenants identify with
      the x-irma-tenant header (default `anonymous`): each gets a
      token-bucket rate limit and a failure circuit breaker (429 +
      Retry-After when over). Analyses run under the same budgets as
      `analyze`, with a per-request deadline from x-irma-timeout-ms
      (clamped to --max-deadline): a degraded success is HTTP 200 with
      degraded:true — the HTTP mirror of exit code 4 — and budget
      exhaustion is 503/504. Full-fidelity results are cached (LRU,
      --cache-entries) keyed by dataset fingerprint + normalized config.
      SIGTERM/SIGINT drain in-flight requests and exit 0.
  irma trace <input.jsonl|-> [--out FILE]
      Convert a JSONL trace log (the --trace-log output of analyze or
      watch) into Chrome trace_event JSON: spans become slices on
      per-worker lanes, counters become counter tracks, one process per
      run id. Open the result in chrome://tracing or ui.perfetto.dev.
      Writes to stdout unless --out is given.
  irma predict <trace> [--jobs N] [--threshold T] [--seed S]
      Train the rule-list failure classifier and evaluate it held-out.
  irma help
      Show this message.

Traces: pai | supercloud | philly
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv("generate pai --jobs 500 --seed 7 --out /tmp/x")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                trace: "pai".to_string(),
                jobs: 500,
                seed: 7,
                out: "/tmp/x".to_string(),
            }
        );
    }

    #[test]
    fn parses_analyze_with_defaults() {
        let cmd = parse(&argv("analyze supercloud")).unwrap();
        match cmd {
            Command::Analyze {
                trace,
                keyword,
                top,
                dir,
                insights,
                ..
            } => {
                assert_eq!(trace, "supercloud");
                assert_eq!(keyword, "SM Util = 0%");
                assert_eq!(top, 6);
                assert_eq!(dir, None);
                assert!(!insights);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keyword_with_spaces_survives() {
        let args = vec![
            "analyze".to_string(),
            "philly".to_string(),
            "--keyword".to_string(),
            "Job Killed".to_string(),
        ];
        match parse(&args).unwrap() {
            Command::Analyze { keyword, .. } => assert_eq!(keyword, "Job Killed"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_flags() {
        let cmd = parse(&argv(
            "analyze pai --metrics /tmp/m.json --verbose-stages true",
        ))
        .unwrap();
        match cmd {
            Command::Analyze {
                metrics,
                verbose_stages,
                ..
            } => {
                assert_eq!(metrics.as_deref(), Some("/tmp/m.json"));
                assert!(verbose_stages);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: no snapshot, no table.
        match parse(&argv("analyze pai")).unwrap() {
            Command::Analyze {
                metrics,
                verbose_stages,
                ..
            } => {
                assert_eq!(metrics, None);
                assert!(!verbose_stages);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_trace_log_and_metrics_format() {
        let cmd = parse(&argv(
            "analyze pai --metrics /tmp/m.om --metrics-format openmetrics --trace-log /tmp/t.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Analyze {
                metrics,
                metrics_format,
                trace_log,
                ..
            } => {
                assert_eq!(metrics.as_deref(), Some("/tmp/m.om"));
                assert_eq!(metrics_format, MetricsFormat::OpenMetrics);
                assert_eq!(trace_log.as_deref(), Some("/tmp/t.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("analyze pai --metrics-format yaml")).is_err());
    }

    #[test]
    fn parses_explain() {
        let args = vec![
            "explain".to_string(),
            "pai".to_string(),
            "--rule".to_string(),
            "Runtime = Bin1 => SM Util = 0%".to_string(),
            "--c-lift".to_string(),
            "1.0".to_string(),
        ];
        match parse(&args).unwrap() {
            Command::Explain {
                trace,
                rule,
                keyword,
                c_lift,
                c_supp,
                ..
            } => {
                assert_eq!(trace, "pai");
                assert_eq!(rule, "Runtime = Bin1 => SM Util = 0%");
                assert_eq!(keyword, None);
                assert_eq!(c_lift, Some(1.0));
                assert_eq!(c_supp, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --rule is mandatory and must contain `=>`.
        assert!(parse(&argv("explain pai")).is_err());
        let bad = vec![
            "explain".to_string(),
            "pai".to_string(),
            "--rule".to_string(),
            "no arrow here".to_string(),
        ];
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn parses_budget_flags() {
        let cmd = parse(&argv(
            "analyze pai --budget-itemsets 5000 --budget-tree-mb 64 --deadline 250ms",
        ))
        .unwrap();
        match cmd {
            Command::Analyze {
                budget_itemsets,
                budget_tree_mb,
                deadline,
                ..
            } => {
                assert_eq!(budget_itemsets, Some(5000));
                assert_eq!(budget_tree_mb, Some(64));
                assert_eq!(deadline, Some(Duration::from_millis(250)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: unlimited.
        match parse(&argv("analyze pai")).unwrap() {
            Command::Analyze {
                budget_itemsets,
                budget_tree_mb,
                deadline,
                ..
            } => {
                assert_eq!(budget_itemsets, None);
                assert_eq!(budget_tree_mb, None);
                assert_eq!(deadline, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("analyze pai --deadline fast")).is_err());
        assert!(parse(&argv("analyze pai --budget-itemsets many")).is_err());
    }

    #[test]
    fn parses_threads_flag() {
        match parse(&argv("analyze pai --threads 4")).unwrap() {
            Command::Analyze { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("analyze pai")).unwrap() {
            Command::Analyze { threads, .. } => assert_eq!(threads, None),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("analyze pai --threads 0")).is_err());
        assert!(parse(&argv("analyze pai --threads lots")).is_err());
    }

    #[test]
    fn duration_grammar() {
        assert_eq!(parse_duration("500us"), Ok(Duration::from_micros(500)));
        assert_eq!(parse_duration("1ms"), Ok(Duration::from_millis(1)));
        assert_eq!(parse_duration("2s"), Ok(Duration::from_secs(2)));
        assert_eq!(parse_duration("5m"), Ok(Duration::from_secs(300)));
        assert!(parse_duration("").is_err());
        assert!(parse_duration("12").is_err());
        assert!(parse_duration("ms").is_err());
        assert!(parse_duration("1h").is_err());
        assert!(parse_duration("-5s").is_err());
    }

    #[test]
    fn usage_documents_exit_codes_and_budgets() {
        assert!(USAGE.contains("--deadline"));
        assert!(USAGE.contains("EXIT CODES"));
        assert!(USAGE.contains("4  degraded success"));
    }

    #[test]
    fn rejects_unknown_trace_and_flags() {
        assert!(parse(&argv("generate helios")).is_err());
        assert!(parse(&argv("generate pai --bogus 1")).is_err());
        assert!(parse(&argv("generate pai --jobs")).is_err());
        assert!(parse(&argv("generate pai --jobs abc")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_watch_with_defaults() {
        match parse(&argv("watch supercloud")).unwrap() {
            Command::Watch {
                trace,
                feed,
                window,
                warmup,
                cadence,
                max_arrivals,
                keyword,
                ..
            } => {
                assert_eq!(trace.as_deref(), Some("supercloud"));
                assert_eq!(feed, None);
                assert_eq!(window, 2_000);
                assert_eq!(warmup, None);
                assert_eq!(cadence, 2_000);
                assert_eq!(max_arrivals, None);
                assert_eq!(keyword, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_watch_feed_and_tuning() {
        let cmd = parse(&argv(
            "watch --feed - --window 512 --warmup 64 --drift-threshold 0.5 \
             --cadence 100 --max-arrivals 5000 --budget-itemsets 100 --deadline 2s",
        ))
        .unwrap();
        match cmd {
            Command::Watch {
                trace,
                feed,
                window,
                warmup,
                drift_threshold,
                cadence,
                max_arrivals,
                budget_itemsets,
                deadline,
                ..
            } => {
                assert_eq!(trace, None);
                assert_eq!(feed.as_deref(), Some("-"));
                assert_eq!(window, 512);
                assert_eq!(warmup, Some(64));
                assert!((drift_threshold - 0.5).abs() < 1e-12);
                assert_eq!(cadence, 100);
                assert_eq!(max_arrivals, Some(5_000));
                assert_eq!(budget_itemsets, Some(100));
                assert_eq!(deadline, Some(Duration::from_secs(2)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_watch_listen() {
        match parse(&argv("watch pai --listen 127.0.0.1:0")).unwrap() {
            Command::Watch { listen, .. } => assert_eq!(listen.as_deref(), Some("127.0.0.1:0")),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("watch pai")).unwrap() {
            Command::Watch { listen, .. } => assert_eq!(listen, None),
            other => panic!("unexpected {other:?}"),
        }
        // An address without a port cannot be bound — reject it early.
        assert!(parse(&argv("watch pai --listen localhost")).is_err());
    }

    #[test]
    fn watch_requires_trace_or_feed() {
        assert!(parse(&argv("watch")).is_err());
        assert!(parse(&argv("watch helios")).is_err());
        assert!(parse(&argv("watch pai --window 0")).is_err());
        assert!(parse(&argv("watch pai --bogus 1")).is_err());
        assert!(parse(&argv("watch --feed feed.txt")).is_ok());
    }

    #[test]
    fn parses_serve_with_defaults() {
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                listen,
                workers,
                queue_depth,
                cache_entries,
                budget_itemsets,
                default_deadline,
                max_deadline,
                threads,
                ..
            } => {
                assert_eq!(listen, "127.0.0.1:9185");
                assert_eq!(workers, 2);
                assert_eq!(queue_depth, 32);
                assert_eq!(cache_entries, 64);
                assert_eq!(budget_itemsets, None);
                assert_eq!(default_deadline, Duration::from_secs(5));
                assert_eq!(max_deadline, Duration::from_secs(30));
                assert_eq!(threads, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_serve_tuning() {
        let cmd = parse(&argv(
            "serve --listen 127.0.0.1:0 --workers 4 --queue-depth 8 \
             --cache-entries 16 --budget-itemsets 100000 --max-deadline 10s",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                listen,
                workers,
                queue_depth,
                cache_entries,
                budget_itemsets,
                max_deadline,
                ..
            } => {
                assert_eq!(listen, "127.0.0.1:0");
                assert_eq!(workers, 4);
                assert_eq!(queue_depth, 8);
                assert_eq!(cache_entries, 16);
                assert_eq!(budget_itemsets, Some(100_000));
                assert_eq!(max_deadline, Duration::from_secs(10));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("serve --listen noport")).is_err());
        assert!(parse(&argv("serve --workers 0")).is_err());
        assert!(parse(&argv("serve --queue-depth 0")).is_err());
        assert!(parse(&argv("serve stray")).is_err());
        assert!(parse(&argv("serve --bogus 1")).is_err());
    }

    #[test]
    fn usage_documents_serve() {
        assert!(USAGE.contains("irma serve"));
        assert!(USAGE.contains("x-irma-tenant"));
        assert!(USAGE.contains("x-irma-timeout-ms"));
    }

    #[test]
    fn parses_trace_subcommand() {
        assert_eq!(
            parse(&argv("trace /tmp/run.jsonl")).unwrap(),
            Command::Trace {
                input: "/tmp/run.jsonl".to_string(),
                out: None,
            }
        );
        assert_eq!(
            parse(&argv("trace - --out /tmp/chrome.json")).unwrap(),
            Command::Trace {
                input: "-".to_string(),
                out: Some("/tmp/chrome.json".to_string()),
            }
        );
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace a.jsonl b.jsonl")).is_err());
        assert!(parse(&argv("trace a.jsonl --bogus 1")).is_err());
    }

    #[test]
    fn parses_experiments_and_predict() {
        let cmd = parse(&argv("experiments --pai 100 --export /tmp/e")).unwrap();
        match cmd {
            Command::Experiments { pai, export, .. } => {
                assert_eq!(pai, 100);
                assert_eq!(export.as_deref(), Some("/tmp/e"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("predict pai --threshold 0.6")).unwrap();
        match cmd {
            Command::Predict { threshold, .. } => assert!((threshold - 0.6).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("experiments stray")).is_err());
    }
}
