//! Property tests for the hand-rolled CSV layer: write -> read is the
//! identity on frames whose cells survive type inference unambiguously.

use proptest::prelude::*;

use irma_data::{read_csv_str, write_csv_string, Column, Frame};

/// Strings that won't be re-inferred as numbers/bools/nulls: non-empty,
/// from an alphabet with no digits and none of the null/bool literals,
/// exercising the quoting path (commas, quotes, newlines).
fn arb_safe_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[xyz ,\"\n#|;-]{1,12}")
        .expect("valid regex")
        .prop_filter("no blank-only cells (trim-ambiguous)", |s| {
            !s.trim().is_empty()
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    let rows = 1..30usize;
    rows.prop_flat_map(|n| {
        (
            prop::collection::vec(prop::option::of(any::<i64>()), n),
            prop::collection::vec(prop::option::of(-1.0e12f64..1.0e12), n),
            prop::collection::vec(prop::option::of(arb_safe_string()), n),
        )
            .prop_map(|(ints, floats, strs)| {
                let mut frame = Frame::new();
                frame
                    .add_column("ints", Column::from_opt_ints(ints))
                    .unwrap();
                frame
                    .add_column("floats", Column::from_opt_floats(floats))
                    .unwrap();
                frame
                    .add_column(
                        "strs",
                        Column::from_opt_strs(strs.iter().map(|o| o.as_deref())),
                    )
                    .unwrap();
                frame
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip(frame in arb_frame()) {
        let text = write_csv_string(&frame);
        let parsed = read_csv_str(&text).expect("own output must parse");
        prop_assert_eq!(parsed.n_rows(), frame.n_rows());
        prop_assert_eq!(parsed.names(), frame.names());
        for row in 0..frame.n_rows() {
            for name in frame.names() {
                let original = frame.get(row, name).unwrap();
                let reread = parsed.get(row, name).unwrap();
                // Int columns with all-null read back as Str-typed nulls;
                // compare displayed content when null, exact otherwise.
                match (&original, &reread) {
                    (a, b) if a.is_null() && b.is_null() => {}
                    (a, b) => {
                        // Float columns that happen to hold integral values
                        // re-infer as Int; compare numerically when both
                        // sides are numeric.
                        match (a.as_float(), b.as_float()) {
                            (Some(x), Some(y)) => prop_assert_eq!(x, y, "{}[{}]", name, row),
                            _ => prop_assert_eq!(a, b, "{}[{}]", name, row),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "[ -~\n\r\"]{0,300}") {
        // Must return Ok or Err, never panic / hang.
        let _ = read_csv_str(&text);
    }
}
