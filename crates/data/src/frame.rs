//! A minimal column-oriented table ("frame").
//!
//! The trace pipeline works with one frame per log source (scheduler log,
//! node monitoring reductions, ...) and a merged frame after the join step.
//! This is deliberately a small fraction of a dataframe library: exactly the
//! operations the paper's preprocessing needs (row append, column append,
//! selection, filtering, derivation, joins) and nothing speculative.

use std::collections::HashMap;

use crate::column::{Column, DType};
use crate::error::{DataError, Result};
use crate::value::Value;

/// A named collection of equal-length typed columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
}

impl Frame {
    /// Creates an empty frame with no columns.
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Creates a frame with the given empty columns.
    pub fn with_schema<I>(fields: I) -> Result<Frame>
    where
        I: IntoIterator<Item = (String, DType)>,
    {
        let mut frame = Frame::new();
        for (name, dtype) in fields {
            frame.add_column(&name, Column::empty(dtype))?;
        }
        Ok(frame)
    }

    /// Number of rows (0 for a frame with no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True when the frame holds a column with this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Borrow a column mutably by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        let idx = self.column_index(name)?;
        Ok(&mut self.columns[idx])
    }

    /// All columns, parallel to [`Frame::names`].
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Adds a fully materialized column; must match the frame's row count
    /// unless the frame is still empty of columns.
    pub fn add_column(&mut self, name: &str, column: Column) -> Result<()> {
        if self.index.contains_key(name) {
            return Err(DataError::DuplicateColumn(name.to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(DataError::LengthMismatch {
                column: name.to_string(),
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        self.index.insert(name.to_string(), self.columns.len());
        self.names.push(name.to_string());
        self.columns.push(column);
        Ok(())
    }

    /// Removes a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let idx = self.column_index(name)?;
        self.names.remove(idx);
        let col = self.columns.remove(idx);
        self.index.remove(name);
        for (i, n) in self.names.iter().enumerate() {
            self.index.insert(n.clone(), i);
        }
        Ok(col)
    }

    /// Appends one row given as dynamic values, one per column in order.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DataError::LengthMismatch {
                column: "<row>".to_string(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        // Validate types before mutating so a failed push leaves the frame
        // rectangular.
        for ((name, col), value) in self.names.iter().zip(&self.columns).zip(&row) {
            if !value.is_null() {
                let ok = matches!(
                    (col.dtype(), value),
                    (DType::Int, Value::Int(_))
                        | (DType::Float, Value::Float(_))
                        | (DType::Float, Value::Int(_))
                        | (DType::Str, Value::Str(_))
                        | (DType::Bool, Value::Bool(_))
                );
                if !ok {
                    return Err(DataError::TypeMismatch {
                        column: name.clone(),
                        expected: col.dtype().name(),
                        actual: format!("{} ({})", value, value.type_name()),
                    });
                }
            }
        }
        for ((name, col), value) in self.names.iter().zip(self.columns.iter_mut()).zip(row) {
            col.push_value(name, value)?;
        }
        Ok(())
    }

    /// The cell at (`row`, `column`) as a dynamic value.
    pub fn get(&self, row: usize, column: &str) -> Result<Value> {
        Ok(self.column(column)?.get(row))
    }

    /// A new frame holding only the named columns, in the given order.
    pub fn select<'a, I: IntoIterator<Item = &'a str>>(&self, names: I) -> Result<Frame> {
        let mut out = Frame::new();
        for name in names {
            out.add_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// A new frame holding only rows where `predicate` returns true.
    pub fn filter<F: FnMut(usize) -> bool>(&self, mut predicate: F) -> Frame {
        let indices: Vec<usize> = (0..self.n_rows()).filter(|&i| predicate(i)).collect();
        self.take(&indices)
    }

    /// Materializes the given row indices (allowing repeats / reorders).
    pub fn take(&self, indices: &[usize]) -> Frame {
        // Built field-by-field rather than via `add_column` so copying a
        // valid frame is infallible by construction: names stay unique
        // and every taken column has `indices.len()` rows.
        Frame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|col| col.take(indices)).collect(),
            index: self.index.clone(),
        }
    }

    /// Adds a column computed row-by-row from the existing frame.
    pub fn derive<F>(&mut self, name: &str, dtype: DType, mut f: F) -> Result<()>
    where
        F: FnMut(&Frame, usize) -> Value,
    {
        let mut col = Column::with_capacity(dtype, self.n_rows());
        for row in 0..self.n_rows() {
            let v = f(self, row);
            col.push_value(name, v)?;
        }
        self.add_column(name, col)
    }

    /// Counts occurrences of each distinct non-null value of a string column.
    pub fn value_counts(&self, column: &str) -> Result<Vec<(String, usize)>> {
        let raw = self.column(column)?;
        let col = raw.as_strs().ok_or_else(|| DataError::TypeMismatch {
            column: column.to_string(),
            expected: "str",
            actual: raw.dtype().name().to_string(),
        })?;
        let mut counts = vec![0usize; col.cardinality()];
        for &code in col.codes() {
            if code != u32::MAX {
                counts[code as usize] += 1;
            }
        }
        let mut out: Vec<(String, usize)> = col
            .dict()
            .iter()
            .zip(counts)
            .map(|(v, c)| (v.clone(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// A new frame with rows sorted by one column (stable sort on
    /// [`Value::total_cmp`]; nulls first when ascending).
    pub fn sort_by(&self, column: &str, ascending: bool) -> Result<Frame> {
        let col = self.column(column)?;
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&a, &b| {
            let ord = col.get(a).total_cmp(&col.get(b));
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(self.take(&indices))
    }

    /// Mean of a numeric column grouped by a string column: one
    /// `(group, mean, count)` row per distinct non-null group value,
    /// sorted by group. Null numeric cells are skipped.
    pub fn group_mean(&self, group: &str, value: &str) -> Result<Vec<(String, f64, usize)>> {
        let group_col = self.column(group)?;
        let groups = group_col.as_strs().ok_or_else(|| DataError::TypeMismatch {
            column: group.to_string(),
            expected: "str",
            actual: group_col.dtype().name().to_string(),
        })?;
        let values = self.column(value)?;
        if !values.is_numeric() {
            return Err(DataError::TypeMismatch {
                column: value.to_string(),
                expected: "numeric",
                actual: values.dtype().name().to_string(),
            });
        }
        let mut sums = vec![(0.0f64, 0usize); groups.cardinality()];
        for row in 0..self.n_rows() {
            let code = groups.codes()[row];
            if code == u32::MAX {
                continue;
            }
            if let Some(v) = values.numeric(row) {
                sums[code as usize].0 += v;
                sums[code as usize].1 += 1;
            }
        }
        let mut out: Vec<(String, f64, usize)> = groups
            .dict()
            .iter()
            .zip(sums)
            .filter(|(_, (_, n))| *n > 0)
            .map(|(g, (sum, n))| (g.clone(), sum / n as f64, n))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Vertically concatenates another frame with an identical schema.
    pub fn extend(&mut self, other: &Frame) -> Result<()> {
        if self.names != other.names {
            return Err(DataError::Schema(format!(
                "extend schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        for row in 0..other.n_rows() {
            let values: Vec<Value> = other.columns.iter().map(|c| c.get(row)).collect();
            self.push_row(values)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let mut f = Frame::with_schema([
            ("job_id".to_string(), DType::Int),
            ("user".to_string(), DType::Str),
            ("sm_util".to_string(), DType::Float),
        ])
        .unwrap();
        f.push_row(vec![Value::Int(1), "alice".into(), Value::Float(0.0)])
            .unwrap();
        f.push_row(vec![Value::Int(2), "bob".into(), Value::Float(55.5)])
            .unwrap();
        f.push_row(vec![Value::Int(3), "alice".into(), Value::Null])
            .unwrap();
        f
    }

    #[test]
    fn push_and_get() {
        let f = sample();
        assert_eq!(f.n_rows(), 3);
        assert_eq!(f.n_cols(), 3);
        assert_eq!(f.get(1, "user").unwrap(), Value::Str("bob".into()));
        assert_eq!(f.get(2, "sm_util").unwrap(), Value::Null);
    }

    #[test]
    fn push_row_wrong_arity() {
        let mut f = sample();
        let err = f.push_row(vec![Value::Int(9)]).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
        assert_eq!(f.n_rows(), 3);
    }

    #[test]
    fn push_row_type_error_leaves_frame_rectangular() {
        let mut f = sample();
        let err = f
            .push_row(vec![Value::Int(9), Value::Int(7), Value::Float(0.0)])
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        assert_eq!(f.n_rows(), 3);
        for col in f.columns() {
            assert_eq!(col.len(), 3);
        }
    }

    #[test]
    fn filter_selects_rows() {
        let f = sample();
        let g = f.filter(|i| f.get(i, "user").unwrap().as_str() == Some("alice"));
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.get(0, "job_id").unwrap(), Value::Int(1));
        assert_eq!(g.get(1, "job_id").unwrap(), Value::Int(3));
    }

    #[test]
    fn derive_adds_column() {
        let mut f = sample();
        f.derive("is_idle", DType::Bool, |fr, i| {
            match fr.get(i, "sm_util").unwrap().as_float() {
                Some(v) => Value::Bool(v == 0.0),
                None => Value::Null,
            }
        })
        .unwrap();
        assert_eq!(f.get(0, "is_idle").unwrap(), Value::Bool(true));
        assert_eq!(f.get(1, "is_idle").unwrap(), Value::Bool(false));
        assert_eq!(f.get(2, "is_idle").unwrap(), Value::Null);
    }

    #[test]
    fn value_counts_sorted_desc() {
        let f = sample();
        let counts = f.value_counts("user").unwrap();
        assert_eq!(
            counts,
            vec![("alice".to_string(), 2), ("bob".to_string(), 1)]
        );
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut f = sample();
        let err = f
            .add_column("user", Column::from_ints([1, 2, 3]))
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn drop_column_reindexes() {
        let mut f = sample();
        f.drop_column("user").unwrap();
        assert!(!f.has_column("user"));
        assert_eq!(f.get(1, "sm_util").unwrap(), Value::Float(55.5));
    }

    #[test]
    fn sort_by_orders_rows() {
        let f = sample();
        let asc = f.sort_by("sm_util", true).unwrap();
        // Null first, then 0.0, then 55.5.
        assert_eq!(asc.get(0, "sm_util").unwrap(), Value::Null);
        assert_eq!(asc.get(1, "sm_util").unwrap(), Value::Float(0.0));
        assert_eq!(asc.get(2, "sm_util").unwrap(), Value::Float(55.5));
        let desc = f.sort_by("job_id", false).unwrap();
        assert_eq!(desc.get(0, "job_id").unwrap(), Value::Int(3));
        assert!(f.sort_by("missing", true).is_err());
    }

    #[test]
    fn group_mean_aggregates() {
        let mut f = sample();
        f.push_row(vec![Value::Int(4), "bob".into(), Value::Float(44.5)])
            .unwrap();
        let means = f.group_mean("user", "sm_util").unwrap();
        // alice: only 0.0 counts (null skipped); bob: (55.5 + 44.5)/2.
        assert_eq!(means.len(), 2);
        assert_eq!(means[0].0, "alice");
        assert_eq!(means[0], ("alice".to_string(), 0.0, 1));
        assert_eq!(means[1], ("bob".to_string(), 50.0, 2));
    }

    #[test]
    fn group_mean_rejects_bad_types() {
        let f = sample();
        assert!(f.group_mean("sm_util", "job_id").is_err());
        assert!(f.group_mean("user", "user").is_err());
    }

    #[test]
    fn extend_concatenates() {
        let mut f = sample();
        let g = sample();
        f.extend(&g).unwrap();
        assert_eq!(f.n_rows(), 6);
        assert_eq!(f.get(4, "user").unwrap(), Value::Str("bob".into()));
    }

    #[test]
    fn extend_rejects_schema_mismatch() {
        let mut f = sample();
        let g = f.select(["job_id"]).unwrap();
        assert!(f.extend(&g).is_err());
    }
}
