//! Grouped reductions: raw monitoring samples -> per-job features.
//!
//! SuperCloud stores raw 100 ms `nvidia-smi` samples and Philly 1-minute
//! Ganglia samples; the per-job features the paper mines (mean / min /
//! max / variance of each metric) are reductions over those series keyed
//! by job id. [`group_stats`] is that reduction for one value column;
//! [`reduce_by_key`] runs it for several value columns and assembles the
//! node-level feature frame.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::frame::Frame;

/// Streaming accumulator for mean/min/max/variance (Welford's algorithm,
/// so long series stay numerically stable).
#[derive(Debug, Clone, Copy)]
struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    fn new() -> Accumulator {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Population variance.
    fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
}

/// Per-group statistics of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Group key (integer key rendered as decimal for string keys parity).
    pub key: i64,
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population variance.
    pub var: f64,
}

/// Computes mean/min/max/var of `value` grouped by an integer `key`
/// column, sorted by key. Null cells in either column are skipped.
pub fn group_stats(frame: &Frame, key: &str, value: &str) -> Result<Vec<GroupStats>> {
    let key_col = frame.column(key)?;
    let keys = key_col.as_ints().ok_or_else(|| DataError::TypeMismatch {
        column: key.to_string(),
        expected: "int",
        actual: key_col.dtype().name().to_string(),
    })?;
    let values = frame.column(value)?;
    if !values.is_numeric() {
        return Err(DataError::TypeMismatch {
            column: value.to_string(),
            expected: "numeric",
            actual: values.dtype().name().to_string(),
        });
    }
    let mut acc: HashMap<i64, Accumulator> = HashMap::new();
    for (row, k) in keys.iter().enumerate() {
        let (Some(k), Some(v)) = (k, values.numeric(row)) else {
            continue;
        };
        if v.is_finite() {
            acc.entry(*k).or_insert_with(Accumulator::new).push(v);
        }
    }
    let mut out: Vec<GroupStats> = acc
        .into_iter()
        .map(|(key, a)| GroupStats {
            key,
            count: a.n,
            mean: a.mean,
            min: a.min,
            max: a.max,
            var: a.variance(),
        })
        .collect();
    out.sort_by_key(|g| g.key);
    Ok(out)
}

/// Which reductions of a value column to materialize as output columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Arithmetic mean -> `<col>`.
    Mean,
    /// Minimum -> `<col>_min`.
    Min,
    /// Maximum -> `<col>_max`.
    Max,
    /// Population variance -> `<col>_var`.
    Var,
}

/// Reduces several raw sample columns into one per-key feature frame.
///
/// Output: a `key` column (named after the input key) plus, for each
/// `(column, reductions)` request, one output column per reduction using
/// the naming above. Keys appear in ascending order.
pub fn reduce_by_key(frame: &Frame, key: &str, requests: &[(&str, &[Reduction])]) -> Result<Frame> {
    // The key set is the union across value columns: a job whose samples
    // are null for one metric must still keep its row (null features).
    let mut all_stats: Vec<(usize, HashMap<i64, GroupStats>)> = Vec::new();
    let mut keys: Vec<i64> = Vec::new();
    for (idx, (value_col, _)) in requests.iter().enumerate() {
        let stats = group_stats(frame, key, value_col)?;
        for g in &stats {
            if !keys.contains(&g.key) {
                keys.push(g.key);
            }
        }
        all_stats.push((idx, stats.into_iter().map(|g| (g.key, g)).collect()));
    }
    keys.sort_unstable();

    let mut out = Frame::new();
    out.add_column(key, Column::from_ints(keys.iter().copied()))?;
    for (idx, by_key) in &all_stats {
        let (value_col, reductions) = requests[*idx];
        for reduction in reductions {
            let pick = |g: &GroupStats| match reduction {
                Reduction::Mean => g.mean,
                Reduction::Min => g.min,
                Reduction::Max => g.max,
                Reduction::Var => g.var,
            };
            let name = match reduction {
                Reduction::Mean => value_col.to_string(),
                Reduction::Min => format!("{value_col}_min"),
                Reduction::Max => format!("{value_col}_max"),
                Reduction::Var => format!("{value_col}_var"),
            };
            let column = Column::from_opt_floats(keys.iter().map(|k| by_key.get(k).map(&pick)));
            out.add_column(&name, column)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_csv_str;

    fn samples() -> Frame {
        read_csv_str(concat!(
            "job_id,sm\n",
            "1,0.0\n1,10.0\n1,20.0\n",
            "2,50.0\n2,50.0\n",
            "3,\n", // null value skipped -> group 3 absent
        ))
        .unwrap()
    }

    #[test]
    fn group_stats_basics() {
        let stats = group_stats(&samples(), "job_id", "sm").unwrap();
        assert_eq!(stats.len(), 2);
        let g1 = &stats[0];
        assert_eq!(g1.key, 1);
        assert_eq!(g1.count, 3);
        assert!((g1.mean - 10.0).abs() < 1e-12);
        assert_eq!(g1.min, 0.0);
        assert_eq!(g1.max, 20.0);
        assert!((g1.var - 200.0 / 3.0).abs() < 1e-9);
        let g2 = &stats[1];
        assert_eq!(g2.key, 2);
        assert_eq!(g2.var, 0.0);
    }

    #[test]
    fn welford_matches_naive_on_long_series() {
        let mut csv = String::from("job_id,x\n");
        let values: Vec<f64> = (0..5_000).map(|i| 1e6 + (i % 37) as f64 * 0.25).collect();
        for v in &values {
            csv.push_str(&format!("7,{v}\n"));
        }
        let frame = read_csv_str(&csv).unwrap();
        let stats = group_stats(&frame, "job_id", "x").unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((stats[0].mean - mean).abs() < 1e-6);
        assert!((stats[0].var - var).abs() < 1e-6);
    }

    #[test]
    fn reduce_by_key_builds_feature_frame() {
        let reduced = reduce_by_key(
            &samples(),
            "job_id",
            &[(
                "sm",
                &[
                    Reduction::Mean,
                    Reduction::Min,
                    Reduction::Max,
                    Reduction::Var,
                ],
            )],
        )
        .unwrap();
        assert_eq!(reduced.n_rows(), 2);
        assert_eq!(
            reduced.names(),
            &["job_id", "sm", "sm_min", "sm_max", "sm_var"]
        );
        assert_eq!(reduced.get(0, "sm").unwrap().as_float(), Some(10.0));
        assert_eq!(reduced.get(1, "sm_min").unwrap().as_float(), Some(50.0));
    }

    #[test]
    fn reduce_by_key_keeps_union_of_keys() {
        // Job 3 has samples only for `power`; its `sm` features are null.
        let frame =
            read_csv_str(concat!("job_id,sm,power\n", "1,5.0,60.0\n", "3,,55.0\n",)).unwrap();
        let reduced = reduce_by_key(
            &frame,
            "job_id",
            &[("sm", &[Reduction::Mean]), ("power", &[Reduction::Mean])],
        )
        .unwrap();
        assert_eq!(reduced.n_rows(), 2);
        assert!(reduced.get(1, "sm").unwrap().is_null());
        assert_eq!(reduced.get(1, "power").unwrap().as_float(), Some(55.0));
    }

    #[test]
    fn rejects_bad_key_or_value_types() {
        let frame = read_csv_str("k,v\na,1\n").unwrap();
        assert!(group_stats(&frame, "k", "v").is_err());
        let frame2 = read_csv_str("k,v\n1,a\n").unwrap();
        assert!(group_stats(&frame2, "k", "v").is_err());
        assert!(group_stats(&frame2, "missing", "v").is_err());
    }

    #[test]
    fn empty_frame_reduces_to_empty() {
        // Built programmatically: CSV inference has no types for 0 rows.
        let mut frame = Frame::new();
        frame
            .add_column("job_id", Column::empty(crate::column::DType::Int))
            .unwrap();
        frame
            .add_column("sm", Column::empty(crate::column::DType::Float))
            .unwrap();
        let stats = group_stats(&frame, "job_id", "sm").unwrap();
        assert!(stats.is_empty());
        let reduced = reduce_by_key(&frame, "job_id", &[("sm", &[Reduction::Mean])]).unwrap();
        assert_eq!(reduced.n_rows(), 0);
    }
}
