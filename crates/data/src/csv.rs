//! Hand-rolled CSV reader and writer (RFC 4180 quoting rules).
//!
//! The paper's traces ship as CSV files split across collection levels
//! (scheduler log vs node measurements); the reproduction keeps the parsing
//! in-repo instead of depending on a CSV crate, per the reproduction brief.
//!
//! Supported dialect: comma separator, `"`-quoting with `""` escapes,
//! embedded newlines inside quoted fields, LF or CRLF record terminators,
//! and a mandatory header row. CRLF is treated as the file's line-ending
//! dialect rather than data, so a quoted `\r\n` normalizes to `\n` exactly
//! as unquoted terminators do; a lone `\r` inside quotes stays literal.

use std::io::{BufReader, Read, Write};
use std::path::Path;

use crate::column::{Column, DType};
use crate::error::{DataError, Result};
use crate::frame::Frame;
use crate::value::Value;

/// Splits raw CSV text into records of unescaped fields.
///
/// Exposed for testing; most callers want [`read_csv`] / [`read_csv_path`].
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    // True when the current (possibly empty) field came from a quoted
    // token — "" at EOF is a real empty field, not a missing record.
    let mut field_quoted = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut seen_any = false;

    while let Some(c) = chars.next() {
        seen_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                // A quoted CRLF is the same record terminator dialect as an
                // unquoted one, so it normalizes to '\n' too; a lone '\r'
                // is not a terminator and stays literal.
                '\r' if chars.peek() == Some(&'\n') => {
                    chars.next();
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(DataError::Csv {
                        line,
                        message: "quote inside unquoted field".to_string(),
                    });
                }
                in_quotes = true;
                field_quoted = true;
            }
            ',' => {
                fields.push(std::mem::take(&mut field));
                field_quoted = false;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    continue; // handled by the \n branch
                }
                return Err(DataError::Csv {
                    line,
                    message: "bare carriage return".to_string(),
                });
            }
            '\n' => {
                fields.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut fields));
                field_quoted = false;
                line += 1;
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    // Final record without trailing newline.
    if seen_any && (!field.is_empty() || !fields.is_empty() || field_quoted) {
        fields.push(field);
        records.push(fields);
    }
    Ok(records)
}

/// Parses CSV text (header row required) into a frame, inferring column
/// types from the first non-null value of each column.
///
/// Type inference promotes Int -> Float when a float appears later in an
/// integer-looking column, and anything -> Str on conflict.
pub fn read_csv_str(text: &str) -> Result<Frame> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing header row".to_string(),
    })?;
    let rows: Vec<Vec<String>> = iter.collect();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(DataError::Csv {
                line: i + 2,
                message: format!("expected {} fields, found {}", header.len(), row.len()),
            });
        }
    }

    // Parse every cell once, then decide each column's type.
    let parsed: Vec<Vec<Value>> = rows
        .iter()
        .map(|row| row.iter().map(|f| Value::parse_lossy(f)).collect())
        .collect();

    let mut frame = Frame::new();
    for (c, name) in header.iter().enumerate() {
        let dtype = infer_dtype(parsed.iter().map(|row| &row[c]));
        let mut col = Column::with_capacity(dtype, parsed.len());
        for (r, row) in parsed.iter().enumerate() {
            let v = coerce(&row[c], dtype, &rows[r][c]);
            col.push_value(name, v).map_err(|e| DataError::Csv {
                line: r + 2,
                message: e.to_string(),
            })?;
        }
        frame.add_column(name, col)?;
    }
    Ok(frame)
}

/// Picks the narrowest dtype that can represent every non-null value.
fn infer_dtype<'a, I: Iterator<Item = &'a Value>>(values: I) -> DType {
    let mut seen_int = false;
    let mut seen_float = false;
    let mut seen_bool = false;
    for v in values {
        match v {
            Value::Null => {}
            Value::Int(_) => seen_int = true,
            Value::Float(_) => seen_float = true,
            Value::Bool(_) => seen_bool = true,
            Value::Str(_) => return DType::Str,
        }
    }
    match (seen_bool, seen_int, seen_float) {
        (true, false, false) => DType::Bool,
        (false, _, true) => DType::Float,
        (false, true, false) => DType::Int,
        (false, false, false) => DType::Str, // all-null column defaults to str
        _ => DType::Str,                     // mixed bool/number: keep raw text
    }
}

/// Re-coerces a parsed value to the column's final dtype.
fn coerce(value: &Value, dtype: DType, raw: &str) -> Value {
    match (value, dtype) {
        (Value::Null, _) => Value::Null,
        (Value::Int(v), DType::Float) => Value::Float(*v as f64),
        (v, DType::Str) if !matches!(v, Value::Str(_)) => Value::Str(raw.to_string()),
        (v, _) => v.clone(),
    }
}

/// Reads a frame from any reader.
pub fn read_csv<R: Read>(reader: R) -> Result<Frame> {
    let mut text = String::new();
    BufReader::new(reader).read_to_string(&mut text)?;
    read_csv_str(&text)
}

/// Reads a frame from a file path.
pub fn read_csv_path<P: AsRef<Path>>(path: P) -> Result<Frame> {
    let file = std::fs::File::open(path)?;
    read_csv(file)
}

/// Quotes a field if it contains a separator, quote, or newline.
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Serializes a frame to CSV text (header + rows, LF terminators).
pub fn write_csv_string(frame: &Frame) -> String {
    let mut out = String::new();
    let header: Vec<String> = frame.names().iter().map(|n| escape_field(n)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..frame.n_rows() {
        let mut first = true;
        for col in frame.columns() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&escape_field(&col.get(row).to_string()));
        }
        out.push('\n');
    }
    out
}

/// Writes a frame as CSV to any writer.
pub fn write_csv<W: Write>(frame: &Frame, mut writer: W) -> Result<()> {
    writer.write_all(write_csv_string(frame).as_bytes())?;
    Ok(())
}

/// Writes a frame as CSV to a file path.
pub fn write_csv_path<P: AsRef<Path>>(frame: &Frame, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(frame, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_records() {
        let recs = parse_records("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn parses_quotes_and_escapes() {
        let recs = parse_records("name,note\n\"smith, j\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[1], vec!["smith, j", "said \"hi\""]);
    }

    #[test]
    fn parses_embedded_newline() {
        let recs = parse_records("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1], vec!["line1\nline2"]);
    }

    #[test]
    fn parses_crlf_and_missing_trailing_newline() {
        let recs = parse_records("a,b\r\n1,2").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn quoted_crlf_normalizes_to_lf() {
        // Pre-fix the stray '\r' survived into the field; both terminator
        // dialects must yield the same parsed data.
        let crlf = parse_records("a\r\n\"line1\r\nline2\"\r\n").unwrap();
        let lf = parse_records("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(crlf, lf);
        assert_eq!(crlf[1], vec!["line1\nline2"]);
    }

    #[test]
    fn lone_cr_inside_quotes_is_literal() {
        let recs = parse_records("a\n\"x\ry\"\n").unwrap();
        assert_eq!(recs[1], vec!["x\ry"]);
    }

    #[test]
    fn quoted_crlf_counts_one_line() {
        // The embedded CRLF advances the line counter once, so a later
        // error still points at the right source line (here: line 3).
        let err = parse_records("a\r\n\"x\r\ny\",bad\"quote\n").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 3"), "got: {msg}");
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse_records("a\n\"oops\n").is_err());
    }

    #[test]
    fn rejects_unterminated_quote_at_eof() {
        // Quote still open when the input ends — with and without content,
        // and even when the opening quote is the very last byte.
        assert!(parse_records("a\n\"oops").is_err());
        assert!(parse_records("a\n\"").is_err());
        let err = parse_records("a\nx,\"trailing").unwrap_err();
        assert!(format!("{err}").contains("unterminated"));
    }

    #[test]
    fn final_record_without_newline_variants() {
        // Unquoted, quoted, and trailing-empty-field finals all complete.
        assert_eq!(
            parse_records("a,b\n1,2").unwrap(),
            vec![vec!["a", "b"], vec!["1", "2"]]
        );
        assert_eq!(
            parse_records("a\n\"done\"").unwrap(),
            vec![vec!["a"], vec!["done"]]
        );
        // A record ending in a comma has a final empty field; the quoted
        // empty field "" at EOF likewise yields one empty final field.
        assert_eq!(
            parse_records("a,b\n1,").unwrap(),
            vec![vec!["a", "b"], vec!["1", ""]]
        );
        assert_eq!(
            parse_records("a,b\n1,\"\"").unwrap(),
            vec![vec!["a", "b"], vec!["1", ""]]
        );
        // A record whose only field is the quoted empty string was dropped
        // pre-fix (indistinguishable from "no final record").
        assert_eq!(parse_records("a\n\"\"").unwrap(), vec![vec!["a"], vec![""]]);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(read_csv_str("a,b\n1\n").is_err());
    }

    #[test]
    fn infers_types() {
        let f = read_csv_str("id,util,gpu,ok\n1,0.5,v100,true\n2,,t4,false\n").unwrap();
        assert_eq!(f.column("id").unwrap().dtype(), DType::Int);
        assert_eq!(f.column("util").unwrap().dtype(), DType::Float);
        assert_eq!(f.column("gpu").unwrap().dtype(), DType::Str);
        assert_eq!(f.column("ok").unwrap().dtype(), DType::Bool);
        assert_eq!(f.get(1, "util").unwrap(), Value::Null);
    }

    #[test]
    fn int_column_promoted_to_float() {
        let f = read_csv_str("x\n1\n2.5\n").unwrap();
        assert_eq!(f.column("x").unwrap().dtype(), DType::Float);
        assert_eq!(f.get(0, "x").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn mixed_number_and_text_becomes_str() {
        let f = read_csv_str("x\n1\nabc\n").unwrap();
        assert_eq!(f.column("x").unwrap().dtype(), DType::Str);
        assert_eq!(f.get(0, "x").unwrap(), Value::Str("1".into()));
    }

    #[test]
    fn roundtrip_write_read() {
        let f = read_csv_str("id,note\n1,\"a,b\"\n2,\"quote \"\" here\"\n").unwrap();
        let text = write_csv_string(&f);
        let g = read_csv_str(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn empty_body_gives_empty_frame() {
        let f = read_csv_str("a,b\n").unwrap();
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.n_cols(), 2);
    }
}
