//! Dynamically typed cell values.
//!
//! A [`Value`] is the unit of data exchanged at frame boundaries (row
//! construction, CSV parsing, joins). Inside a [`crate::Column`] values are
//! stored in dense typed vectors; `Value` only appears at the edges, so the
//! enum overhead never sits in a hot loop.

use std::cmp::Ordering;
use std::fmt;

/// A single dynamically typed cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / not-a-value. CSV empty fields parse to `Null`.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (categorical attributes, user ids, ...).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload; integers are widened so numeric columns interoperate.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Name of the payload type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }

    /// Parse a CSV field into the most specific value type.
    ///
    /// Empty fields and the literals `NaN`/`nan`/`null`/`NA` become `Null`;
    /// `true`/`false` become `Bool`; otherwise integers are tried before
    /// floats, and anything left is a string.
    pub fn parse_lossy(field: &str) -> Value {
        if field.is_empty() {
            return Value::Null;
        }
        match field {
            "null" | "NULL" | "NaN" | "nan" | "NA" | "na" => return Value::Null,
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = field.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = field.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(field.to_string())
    }

    /// Total order used by sorts: Null < Bool < Int/Float < Str, with
    /// numerics compared cross-type and NaN sorted last among floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_lossy_types() {
        assert_eq!(Value::parse_lossy(""), Value::Null);
        assert_eq!(Value::parse_lossy("NaN"), Value::Null);
        assert_eq!(Value::parse_lossy("42"), Value::Int(42));
        assert_eq!(Value::parse_lossy("-7"), Value::Int(-7));
        assert_eq!(Value::parse_lossy("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse_lossy("true"), Value::Bool(true));
        assert_eq!(Value::parse_lossy("v100"), Value::Str("v100".into()));
    }

    #[test]
    fn parse_lossy_prefers_int_over_float() {
        assert_eq!(Value::parse_lossy("100"), Value::Int(100));
        assert_eq!(Value::parse_lossy("100.0"), Value::Float(100.0));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn total_cmp_cross_numeric() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(9)),
            Ordering::Greater
        );
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for v in [Value::Int(17), Value::Float(2.25), Value::Bool(false)] {
            assert_eq!(Value::parse_lossy(&v.to_string()), v);
        }
    }
}
