//! Declarative frame schemas.
//!
//! Trace files arrive from several collectors; validating each file against
//! an expected schema up front turns silent column drift (renamed fields,
//! wrong units parsed as strings) into immediate errors.

use crate::column::DType;
use crate::error::{DataError, Result};
use crate::frame::Frame;

/// One expected column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Required data type.
    pub dtype: DType,
    /// Whether null cells are allowed.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn required(name: &str, dtype: DType) -> Field {
        Field {
            name: name.to_string(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: &str, dtype: DType) -> Field {
        Field {
            name: name.to_string(),
            dtype,
            nullable: true,
        }
    }
}

/// An ordered set of expected columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The expected fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Checks that `frame` contains every field with the right type and
    /// nullability. Extra columns in the frame are permitted (collectors add
    /// site-specific fields); missing or mistyped ones are errors.
    pub fn validate(&self, frame: &Frame) -> Result<()> {
        for field in &self.fields {
            let col = frame.column(&field.name).map_err(|_| {
                DataError::Schema(format!("missing required column `{}`", field.name))
            })?;
            // Int data satisfies a Float field: CSV inference narrows
            // float-valued columns whose sample happens to be integral.
            let dtype_ok = col.dtype() == field.dtype
                || (field.dtype == DType::Float && col.dtype() == DType::Int);
            if !dtype_ok {
                return Err(DataError::Schema(format!(
                    "column `{}` has type {}, expected {}",
                    field.name,
                    col.dtype().name(),
                    field.dtype.name()
                )));
            }
            if !field.nullable && col.null_count() > 0 {
                return Err(DataError::Schema(format!(
                    "column `{}` contains {} null(s) but is not nullable",
                    field.name,
                    col.null_count()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_csv_str;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("job_id", DType::Int),
            Field::required("user", DType::Str),
            Field::nullable("sm_util", DType::Float),
        ])
    }

    #[test]
    fn accepts_valid_frame() {
        let f = read_csv_str("job_id,user,sm_util,extra\n1,a,0.5,x\n2,b,,y\n").unwrap();
        schema().validate(&f).unwrap();
    }

    #[test]
    fn int_satisfies_float_field() {
        let f = read_csv_str("job_id,user,sm_util\n1,a,3\n").unwrap();
        schema().validate(&f).unwrap();
    }

    #[test]
    fn missing_column_rejected() {
        let f = read_csv_str("job_id,user\n1,a\n").unwrap();
        assert!(schema().validate(&f).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let f = read_csv_str("job_id,user,sm_util\nabc,a,0.5\n").unwrap();
        assert!(schema().validate(&f).is_err());
    }

    #[test]
    fn null_in_required_rejected() {
        let f = read_csv_str("job_id,user,sm_util\n1,,0.5\n").unwrap();
        assert!(schema().validate(&f).is_err());
    }
}
