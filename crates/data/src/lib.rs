//! # irma-data — trace data model
//!
//! Column-oriented tables, hand-rolled CSV I/O, schemas, and key joins for
//! the IRMA reproduction of *Interpretable Analysis of Production GPU
//! Clusters Monitoring Data via Association Rule Mining* (IPPS'24).
//!
//! Production GPU-cluster traces arrive as several CSV files per system —
//! a scheduler-level job log plus node-level monitoring reductions. This
//! crate provides exactly the substrate the paper's preprocessing step
//! needs: parse each file ([`read_csv_path`]), validate it ([`Schema`]),
//! and merge everything into one per-job [`Frame`] ([`inner_join`]).
//!
//! ```
//! use irma_data::{read_csv_str, inner_join};
//!
//! let sched = read_csv_str("job_id,user,status\n1,alice,pass\n2,bob,fail\n").unwrap();
//! let gpu = read_csv_str("job_id,sm_util\n1,0.0\n2,92.5\n").unwrap();
//! let merged = inner_join(&sched, &gpu, "job_id").unwrap();
//! assert_eq!(merged.n_rows(), 2);
//! assert_eq!(merged.names(), &["job_id", "user", "status", "sm_util"]);
//! ```

#![warn(missing_docs)]
// The parse path is fed raw production CSV/sacct text: every failure
// must come back as a typed `DataError`, never a panic. Tests are
// exempt — an `unwrap` there is an assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod column;
mod csv;
mod error;
mod frame;
mod join;
mod reduce;
mod schema;
mod slurm;
mod value;

pub use column::{Column, DType, StrStorage};
pub use csv::{
    parse_records, read_csv, read_csv_path, read_csv_str, write_csv, write_csv_path,
    write_csv_string,
};
pub use error::{DataError, Result};
pub use frame::Frame;
pub use join::{inner_join, left_join};
pub use reduce::{group_stats, reduce_by_key, GroupStats, Reduction};
pub use schema::{Field, Schema};
pub use slurm::{
    format_sacct_duration, format_size_gb, parse_sacct_duration, parse_size_gb, read_sacct_str,
    write_sacct_string,
};
pub use value::Value;
