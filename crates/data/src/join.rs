//! Key-based joins between frames.
//!
//! The paper's first preprocessing step merges features collected at
//! different levels (scheduler log, node-level GPU reductions) into a single
//! per-job table; [`inner_join`] / [`left_join`] implement that merge keyed
//! on the job id.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::frame::Frame;
use crate::value::Value;

/// A hashable join key extracted from a column cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Int(i64),
    Str(String),
    Bool(bool),
}

fn key_at(col: &Column, row: usize) -> Result<Option<Key>> {
    Ok(match col {
        Column::Int(v) => v[row].map(Key::Int),
        Column::Str(v) => v.get(row).map(|s| Key::Str(s.to_string())),
        Column::Bool(v) => v[row].map(Key::Bool),
        Column::Float(_) => {
            return Err(DataError::Join("cannot join on a float column".to_string()))
        }
    })
}

/// Builds key -> row-indices for the right frame.
fn build_index(frame: &Frame, key: &str) -> Result<HashMap<Key, Vec<usize>>> {
    let col = frame.column(key)?;
    let mut index: HashMap<Key, Vec<usize>> = HashMap::with_capacity(frame.n_rows());
    for row in 0..frame.n_rows() {
        if let Some(k) = key_at(col, row)? {
            index.entry(k).or_default().push(row);
        }
    }
    Ok(index)
}

fn join_impl(left: &Frame, right: &Frame, key: &str, keep_unmatched_left: bool) -> Result<Frame> {
    let index = build_index(right, key)?;
    let left_key = left.column(key)?;

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for row in 0..left.n_rows() {
        match key_at(left_key, row)?.and_then(|k| index.get(&k)) {
            Some(matches) => {
                for &r in matches {
                    left_rows.push(row);
                    right_rows.push(Some(r));
                }
            }
            None => {
                if keep_unmatched_left {
                    left_rows.push(row);
                    right_rows.push(None);
                }
            }
        }
    }

    let mut out = left.take(&left_rows);
    for (name, col) in right.names().iter().zip(right.columns()) {
        if name == key {
            continue;
        }
        let out_name = if out.has_column(name) {
            format!("{name}_right")
        } else {
            name.clone()
        };
        let mut new_col = Column::with_capacity(col.dtype(), right_rows.len());
        for r in &right_rows {
            let v = match r {
                Some(r) => col.get(*r),
                None => Value::Null,
            };
            new_col.push_value(&out_name, v)?;
        }
        out.add_column(&out_name, new_col)?;
    }
    Ok(out)
}

/// Inner join: keeps left rows with at least one key match in `right`;
/// multiple matches multiply rows (needed for one-to-many log merges).
pub fn inner_join(left: &Frame, right: &Frame, key: &str) -> Result<Frame> {
    join_impl(left, right, key, false)
}

/// Left join: like [`inner_join`] but unmatched left rows survive with
/// nulls in the right-hand columns.
pub fn left_join(left: &Frame, right: &Frame, key: &str) -> Result<Frame> {
    join_impl(left, right, key, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_csv_str;

    fn sched() -> Frame {
        read_csv_str("job_id,user,status\n1,alice,pass\n2,bob,fail\n3,carol,pass\n").unwrap()
    }

    fn gpu() -> Frame {
        read_csv_str("job_id,sm_util\n1,0.0\n2,87.5\n9,50.0\n").unwrap()
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let j = inner_join(&sched(), &gpu(), "job_id").unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.get(0, "user").unwrap(), Value::Str("alice".into()));
        assert_eq!(j.get(0, "sm_util").unwrap(), Value::Float(0.0));
        assert_eq!(j.get(1, "sm_util").unwrap(), Value::Float(87.5));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = left_join(&sched(), &gpu(), "job_id").unwrap();
        assert_eq!(j.n_rows(), 3);
        assert_eq!(j.get(2, "user").unwrap(), Value::Str("carol".into()));
        assert_eq!(j.get(2, "sm_util").unwrap(), Value::Null);
    }

    #[test]
    fn one_to_many_multiplies_rows() {
        let right = read_csv_str("job_id,attempt\n1,1\n1,2\n").unwrap();
        let j = inner_join(&sched(), &right, "job_id").unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.get(0, "attempt").unwrap(), Value::Int(1));
        assert_eq!(j.get(1, "attempt").unwrap(), Value::Int(2));
    }

    #[test]
    fn name_collision_gets_suffix() {
        let right = read_csv_str("job_id,user\n1,server-a\n").unwrap();
        let j = inner_join(&sched(), &right, "job_id").unwrap();
        assert!(j.has_column("user_right"));
        assert_eq!(
            j.get(0, "user_right").unwrap(),
            Value::Str("server-a".into())
        );
    }

    #[test]
    fn join_on_string_key() {
        let left = read_csv_str("user,a\nalice,1\nbob,2\n").unwrap();
        let right = read_csv_str("user,b\nbob,9\n").unwrap();
        let j = inner_join(&left, &right, "user").unwrap();
        assert_eq!(j.n_rows(), 1);
        assert_eq!(j.get(0, "b").unwrap(), Value::Int(9));
    }

    #[test]
    fn join_on_float_rejected() {
        let left = read_csv_str("k,a\n1.5,1\n").unwrap();
        let right = read_csv_str("k,b\n1.5,2\n").unwrap();
        assert!(inner_join(&left, &right, "k").is_err());
    }

    #[test]
    fn null_keys_never_match() {
        let left = read_csv_str("k,a\n,1\n2,2\n").unwrap();
        let right = read_csv_str("k,b\n,9\n2,8\n").unwrap();
        let j = inner_join(&left, &right, "k").unwrap();
        assert_eq!(j.n_rows(), 1);
        assert_eq!(j.get(0, "b").unwrap(), Value::Int(8));
    }
}
