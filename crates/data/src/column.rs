//! Dense typed columns.
//!
//! Each column stores one attribute for every job record. Numeric columns
//! are plain `Vec`s with a validity bitmap folded into `Option`-free storage
//! (a separate null mask would complicate every kernel for no gain at the
//! scales involved); string columns are dictionary-encoded so that
//! categorical attributes with thousands of repeated values (user ids, GPU
//! types, frameworks) cost four bytes per row.

use std::collections::HashMap;

use crate::error::{DataError, Result};
use crate::value::Value;

/// Data type tag for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Dictionary-encoded UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl DType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }
}

/// Sentinel dictionary code representing a null string cell.
const STR_NULL: u32 = u32::MAX;

/// Dictionary-encoded string storage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrStorage {
    /// Per-row dictionary codes; [`STR_NULL`] marks nulls.
    codes: Vec<u32>,
    /// Distinct values, indexed by code.
    dict: Vec<String>,
    /// Reverse lookup for interning.
    lookup: HashMap<String, u32>,
}

impl StrStorage {
    /// Interns `value` and returns its code.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.lookup.get(value) {
            return code;
        }
        let code = self.dict.len() as u32;
        assert!(code != STR_NULL, "string dictionary overflow");
        self.dict.push(value.to_string());
        self.lookup.insert(value.to_string(), code);
        code
    }

    /// Appends a value (or null).
    pub fn push(&mut self, value: Option<&str>) {
        let code = match value {
            Some(v) => self.intern(v),
            None => STR_NULL,
        };
        self.codes.push(code);
    }

    /// The string at `row`, or `None` for null.
    pub fn get(&self, row: usize) -> Option<&str> {
        let code = self.codes[row];
        if code == STR_NULL {
            None
        } else {
            Some(&self.dict[code as usize])
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct non-null values seen so far.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Raw per-row codes (null = `u32::MAX`); used by group-by kernels.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Dictionary slice, indexed by code.
    pub fn dict(&self) -> &[String] {
        &self.dict
    }
}

/// A single typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column; `None` marks nulls.
    Int(Vec<Option<i64>>),
    /// Float column; nulls are stored as `None` (NaN is a legal value).
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded string column.
    Str(StrStorage),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn empty(dtype: DType) -> Column {
        match dtype {
            DType::Int => Column::Int(Vec::new()),
            DType::Float => Column::Float(Vec::new()),
            DType::Str => Column::Str(StrStorage::default()),
            DType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// Creates an empty column with capacity for `cap` rows.
    pub fn with_capacity(dtype: DType, cap: usize) -> Column {
        match dtype {
            DType::Int => Column::Int(Vec::with_capacity(cap)),
            DType::Float => Column::Float(Vec::with_capacity(cap)),
            DType::Str => Column::Str(StrStorage {
                codes: Vec::with_capacity(cap),
                ..StrStorage::default()
            }),
            DType::Bool => Column::Bool(Vec::with_capacity(cap)),
        }
    }

    /// Builds an int column from an iterator.
    pub fn from_ints<I: IntoIterator<Item = i64>>(values: I) -> Column {
        Column::Int(values.into_iter().map(Some).collect())
    }

    /// Builds a float column from an iterator.
    pub fn from_floats<I: IntoIterator<Item = f64>>(values: I) -> Column {
        Column::Float(values.into_iter().map(Some).collect())
    }

    /// Builds a string column from an iterator.
    pub fn from_strs<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Column {
        let mut st = StrStorage::default();
        for v in values {
            st.push(Some(v));
        }
        Column::Str(st)
    }

    /// Builds a bool column from an iterator.
    pub fn from_bools<I: IntoIterator<Item = bool>>(values: I) -> Column {
        Column::Bool(values.into_iter().map(Some).collect())
    }

    /// Builds an int column with nulls.
    pub fn from_opt_ints<I: IntoIterator<Item = Option<i64>>>(values: I) -> Column {
        Column::Int(values.into_iter().collect())
    }

    /// Builds a float column with nulls.
    pub fn from_opt_floats<I: IntoIterator<Item = Option<f64>>>(values: I) -> Column {
        Column::Float(values.into_iter().collect())
    }

    /// Builds a string column with nulls.
    pub fn from_opt_strs<'a, I: IntoIterator<Item = Option<&'a str>>>(values: I) -> Column {
        let mut st = StrStorage::default();
        for v in values {
            st.push(v);
        }
        Column::Str(st)
    }

    /// The column's data type tag.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Int(_) => DType::Int,
            Column::Float(_) => DType::Float,
            Column::Str(_) => DType::Str,
            Column::Bool(_) => DType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at `row` as a dynamic [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(v) => v
                .get(row)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Appends a dynamic value, coercing `Int -> Float` where needed.
    ///
    /// The `column` name is only used for error reporting.
    pub fn push_value(&mut self, column: &str, value: Value) -> Result<()> {
        let mismatch = |col: &Column, v: &Value| DataError::TypeMismatch {
            column: column.to_string(),
            expected: col.dtype().name(),
            actual: format!("{} ({})", v, v.type_name()),
        };
        match (&mut *self, value) {
            (_, Value::Null) => self.push_null(),
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Str(v), Value::Str(x)) => v.push(Some(&x)),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (col, v) => return Err(mismatch(col, &v)),
        }
        Ok(())
    }

    /// Appends a null cell.
    pub fn push_null(&mut self) {
        match self {
            Column::Int(v) => v.push(None),
            Column::Float(v) => v.push(None),
            Column::Str(v) => v.push(None),
            Column::Bool(v) => v.push(None),
        }
    }

    /// Count of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.codes().iter().filter(|&&c| c == STR_NULL).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Typed view of an int column.
    pub fn as_ints(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of a float column.
    pub fn as_floats(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of a string column.
    pub fn as_strs(&self) -> Option<&StrStorage> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of a bool column.
    pub fn as_bools(&self) -> Option<&[Option<bool>]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view: yields `Some(f64)` per row for Int and Float columns.
    ///
    /// Returns `None` for non-numeric columns.
    pub fn numeric(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v[row].map(|x| x as f64),
            Column::Float(v) => v[row],
            _ => None,
        }
    }

    /// Whether this column type can be read through [`Column::numeric`].
    pub fn is_numeric(&self) -> bool {
        matches!(self, Column::Int(_) | Column::Float(_))
    }

    /// Materializes the subset of rows given by `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => {
                let mut out = StrStorage::default();
                for &i in indices {
                    out.push(v.get(i));
                }
                Column::Str(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_storage_interns() {
        let mut st = StrStorage::default();
        st.push(Some("a"));
        st.push(Some("b"));
        st.push(Some("a"));
        st.push(None);
        assert_eq!(st.len(), 4);
        assert_eq!(st.cardinality(), 2);
        assert_eq!(st.get(0), Some("a"));
        assert_eq!(st.get(2), Some("a"));
        assert_eq!(st.get(3), None);
        assert_eq!(st.codes()[0], st.codes()[2]);
    }

    #[test]
    fn push_value_coerces_int_to_float() {
        let mut col = Column::empty(DType::Float);
        col.push_value("x", Value::Int(3)).unwrap();
        col.push_value("x", Value::Float(1.5)).unwrap();
        assert_eq!(col.as_floats().unwrap(), &[Some(3.0), Some(1.5)]);
    }

    #[test]
    fn push_value_rejects_mismatch() {
        let mut col = Column::empty(DType::Int);
        let err = col
            .push_value("gpus", Value::Str("eight".into()))
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
    }

    #[test]
    fn null_handling() {
        let mut col = Column::empty(DType::Int);
        col.push_value("x", Value::Null).unwrap();
        col.push_value("x", Value::Int(1)).unwrap();
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(0), Value::Null);
        assert_eq!(col.get(1), Value::Int(1));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let col = Column::from_strs(["x", "y", "z"]);
        let taken = col.take(&[2, 0, 2]);
        let st = taken.as_strs().unwrap();
        assert_eq!(st.get(0), Some("z"));
        assert_eq!(st.get(1), Some("x"));
        assert_eq!(st.get(2), Some("z"));
    }

    #[test]
    fn numeric_view_widens_ints() {
        let col = Column::from_ints([1, 2]);
        assert_eq!(col.numeric(1), Some(2.0));
        assert!(col.is_numeric());
        let s = Column::from_strs(["a"]);
        assert_eq!(s.numeric(0), None);
        assert!(!s.is_numeric());
    }
}
