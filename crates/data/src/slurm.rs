//! Slurm `sacct`-style accounting logs.
//!
//! SuperCloud's scheduler-level data comes from Slurm (§II); real sites
//! export it via `sacct --parsable2`: pipe-separated fields with a header,
//! durations as `[days-]HH:MM:SS`, and sizes with binary-ish unit suffixes
//! (`32G`, `512M`). This module parses that dialect into a [`Frame`]
//! (durations to seconds, sizes to GB) and writes frames back out, so the
//! pipeline can ingest accounting exports directly instead of requiring
//! pre-cleaned CSVs.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::frame::Frame;
use crate::value::Value;

/// Parses `[days-]HH:MM:SS[.fff]` (also `MM:SS`) into seconds.
pub fn parse_sacct_duration(text: &str) -> Option<f64> {
    let text = text.trim();
    if text.is_empty() {
        return None;
    }
    let (days, rest) = match text.split_once('-') {
        Some((d, rest)) => (d.parse::<u64>().ok()?, rest),
        None => (0, text),
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let (h, m, s): (u64, u64, f64) = match parts.as_slice() {
        [h, m, s] => (h.parse().ok()?, m.parse().ok()?, s.parse().ok()?),
        [m, s] => (0, m.parse().ok()?, s.parse().ok()?),
        _ => return None,
    };
    if m >= 60 || s >= 60.0 {
        return None;
    }
    Some(days as f64 * 86_400.0 + h as f64 * 3_600.0 + m as f64 * 60.0 + s)
}

/// Formats seconds as `[days-]HH:MM:SS` (sacct style, whole seconds).
pub fn format_sacct_duration(seconds: f64) -> String {
    let total = seconds.max(0.0).round() as u64;
    let days = total / 86_400;
    let h = (total % 86_400) / 3_600;
    let m = (total % 3_600) / 60;
    let s = total % 60;
    if days > 0 {
        format!("{days}-{h:02}:{m:02}:{s:02}")
    } else {
        format!("{h:02}:{m:02}:{s:02}")
    }
}

/// Parses a Slurm size string (`32G`, `512M`, `1.5T`, `1024K`, plain
/// bytes) into gigabytes.
///
/// Slurm unit suffixes are binary — `32G` means 32 GiB, `512M` means
/// 0.5 GiB — so conversion uses 1024-based factors, not decimal ones.
/// Negative and non-finite sizes are rejected (a size can't be `-5G`).
pub fn parse_size_gb(text: &str) -> Option<f64> {
    let text = text.trim();
    if text.is_empty() {
        return None;
    }
    let (number, unit) = match text.char_indices().next_back() {
        Some((idx, c)) if c.is_ascii_alphabetic() => (&text[..idx], c.to_ascii_uppercase()),
        _ => (text, 'B'),
    };
    let value: f64 = number.parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    let gb = match unit {
        'B' => value / (1u64 << 30) as f64,
        'K' => value / (1u64 << 20) as f64,
        'M' => value / 1024.0,
        'G' => value,
        'T' => value * 1024.0,
        _ => return None,
    };
    Some(gb)
}

/// Formats gigabytes (GiB) as a Slurm size string with the `G` suffix.
///
/// Inverse of [`parse_size_gb`] for finite, non-negative inputs (`G` is
/// the identity unit, and Rust's shortest-round-trip float formatting
/// guarantees `parse(format(x)) == x`); `None` for negative or
/// non-finite values, which have no sacct representation.
pub fn format_size_gb(gb: f64) -> Option<String> {
    if !gb.is_finite() || gb < 0.0 {
        return None;
    }
    Some(format!("{gb}G"))
}

/// Column-name suffix conventions used when typing sacct fields.
fn parse_field(name: &str, raw: &str) -> Value {
    if raw.is_empty() {
        return Value::Null;
    }
    let lower = name.to_ascii_lowercase();
    if lower.contains("elapsed") || lower.contains("time") {
        if let Some(secs) = parse_sacct_duration(raw) {
            return Value::Float(secs);
        }
    }
    if lower.contains("mem") {
        if let Some(gb) = parse_size_gb(raw) {
            return Value::Float(gb);
        }
    }
    Value::parse_lossy(raw)
}

/// Reads `sacct --parsable2` output (pipe-separated, header row) into a
/// frame. `Elapsed`/`*Time` fields become seconds, `*Mem*` fields become
/// GB; everything else goes through normal type inference.
pub fn read_sacct_str(text: &str) -> Result<Frame> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing sacct header".to_string(),
    })?;
    let header: Vec<&str> = header_line.split('|').collect();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != header.len() {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!("expected {} fields, found {}", header.len(), fields.len()),
            });
        }
        rows.push(
            header
                .iter()
                .zip(&fields)
                .map(|(name, raw)| parse_field(name, raw))
                .collect(),
        );
    }

    // Column types: float if any float, else int if any int, else str/bool.
    let mut frame = Frame::new();
    for (c, name) in header.iter().enumerate() {
        let mut has_float = false;
        let mut has_int = false;
        let mut has_str = false;
        let mut has_bool = false;
        for row in &rows {
            match &row[c] {
                Value::Float(_) => has_float = true,
                Value::Int(_) => has_int = true,
                Value::Str(_) => has_str = true,
                Value::Bool(_) => has_bool = true,
                Value::Null => {}
            }
        }
        let dtype = if has_str || (has_bool && (has_int || has_float)) {
            crate::column::DType::Str
        } else if has_float {
            crate::column::DType::Float
        } else if has_int {
            crate::column::DType::Int
        } else if has_bool {
            crate::column::DType::Bool
        } else {
            crate::column::DType::Str
        };
        let mut col = Column::with_capacity(dtype, rows.len());
        for row in &rows {
            let v = match (&row[c], dtype) {
                (Value::Null, _) => Value::Null,
                (Value::Int(x), crate::column::DType::Float) => Value::Float(*x as f64),
                (v, crate::column::DType::Str) => Value::Str(v.to_string()),
                (v, _) => v.clone(),
            };
            col.push_value(name, v)?;
        }
        frame.add_column(name, col)?;
    }
    Ok(frame)
}

/// How a column is rendered by [`write_sacct_string`], mirroring the
/// suffix conventions [`read_sacct_str`] applies on the way in.
#[derive(Clone, Copy)]
enum FieldStyle {
    Plain,
    Duration,
    Size,
}

/// Writes a frame as `sacct --parsable2`-style text. Columns whose name
/// contains `Elapsed`/`Time` are formatted as durations; `*Mem*` columns
/// are formatted as sizes with the `G` suffix (without it, a re-read
/// would misinterpret the bare number as bytes).
pub fn write_sacct_string(frame: &Frame) -> String {
    let mut out = String::new();
    out.push_str(&frame.names().join("|"));
    out.push('\n');
    let styles: Vec<FieldStyle> = frame
        .names()
        .iter()
        .map(|n| {
            let lower = n.to_ascii_lowercase();
            if lower.contains("elapsed") || lower.contains("time") {
                FieldStyle::Duration
            } else if lower.contains("mem") {
                FieldStyle::Size
            } else {
                FieldStyle::Plain
            }
        })
        .collect();
    for row in 0..frame.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(frame.n_cols());
        for (col, style) in frame.columns().iter().zip(&styles) {
            let value = col.get(row);
            let text = match (&value, style) {
                (Value::Null, _) => String::new(),
                (v, FieldStyle::Duration) => match v.as_float() {
                    Some(secs) => format_sacct_duration(secs),
                    None => v.to_string(),
                },
                (v, FieldStyle::Size) => match v.as_float().and_then(format_size_gb) {
                    Some(size) => size,
                    None => v.to_string(),
                },
                (v, FieldStyle::Plain) => v.to_string(),
            };
            fields.push(text);
        }
        out.push_str(&fields.join("|"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_sacct_duration("00:00:10"), Some(10.0));
        assert_eq!(parse_sacct_duration("01:02:03"), Some(3723.0));
        assert_eq!(parse_sacct_duration("1-02:03:04"), Some(93_784.0));
        assert_eq!(parse_sacct_duration("05:30"), Some(330.0));
        assert_eq!(parse_sacct_duration("00:00:10.5"), Some(10.5));
        assert_eq!(parse_sacct_duration(""), None);
        assert_eq!(parse_sacct_duration("99:99:99"), None);
        assert_eq!(parse_sacct_duration("abc"), None);
    }

    #[test]
    fn duration_round_trip() {
        for secs in [0.0, 59.0, 3600.0, 86_399.0, 93_784.0, 1_814_400.0] {
            let text = format_sacct_duration(secs);
            assert_eq!(parse_sacct_duration(&text), Some(secs), "{text}");
        }
        assert_eq!(format_sacct_duration(93_784.0), "1-02:03:04");
        assert_eq!(format_sacct_duration(10.0), "00:00:10");
    }

    #[test]
    fn size_parsing_uses_binary_factors() {
        // Regression: sacct sizes are 1024-based. The pre-fix parser used
        // decimal factors, so 512M came back as 0.512 instead of 0.5.
        assert_eq!(parse_size_gb("32G"), Some(32.0));
        assert_eq!(parse_size_gb("512M"), Some(0.5));
        assert_eq!(parse_size_gb("1.5T"), Some(1536.0));
        assert_eq!(parse_size_gb("1048576K"), Some(1.0));
        assert_eq!(parse_size_gb("1073741824"), Some(1.0));
        assert_eq!(parse_size_gb("2g"), Some(2.0));
        assert_eq!(parse_size_gb(""), None);
        assert_eq!(parse_size_gb("12X"), None);
    }

    #[test]
    fn size_parsing_rejects_negative_and_non_finite() {
        // Regression: `-5G` was silently accepted as a negative size.
        assert_eq!(parse_size_gb("-5G"), None);
        assert_eq!(parse_size_gb("-0.1M"), None);
        assert_eq!(parse_size_gb("-1024"), None);
        assert_eq!(parse_size_gb("inf"), None);
        assert_eq!(parse_size_gb("nan"), None);
    }

    #[test]
    fn size_format_round_trips() {
        for gb in [0.0, 0.5, 1.0, 32.0, 0.123456789, 1536.0] {
            let text = format_size_gb(gb).unwrap();
            assert_eq!(parse_size_gb(&text), Some(gb), "{text}");
        }
        assert_eq!(format_size_gb(32.0).as_deref(), Some("32G"));
        assert_eq!(format_size_gb(-1.0), None);
        assert_eq!(format_size_gb(f64::NAN), None);
        assert_eq!(format_size_gb(f64::INFINITY), None);
    }

    #[test]
    fn read_sacct_types_fields() {
        let text = concat!(
            "JobID|User|State|Elapsed|AllocCPUS|ReqMem\n",
            "1001|alice|COMPLETED|01:00:00|8|32G\n",
            "1002|bob|FAILED|1-00:00:00|4|512M\n",
            "1003|carol|CANCELLED|00:05:30|2|\n",
        );
        let frame = read_sacct_str(text).unwrap();
        assert_eq!(frame.n_rows(), 3);
        assert_eq!(frame.get(0, "Elapsed").unwrap().as_float(), Some(3600.0));
        assert_eq!(frame.get(1, "Elapsed").unwrap().as_float(), Some(86_400.0));
        assert_eq!(frame.get(0, "ReqMem").unwrap().as_float(), Some(32.0));
        assert_eq!(frame.get(1, "ReqMem").unwrap().as_float(), Some(0.5));
        assert_eq!(frame.get(2, "ReqMem").unwrap(), Value::Null);
        assert_eq!(frame.get(1, "State").unwrap().as_str(), Some("FAILED"));
        assert_eq!(frame.get(2, "AllocCPUS").unwrap().as_int(), Some(2));
    }

    #[test]
    fn read_sacct_rejects_ragged_rows() {
        assert!(read_sacct_str("a|b\n1\n").is_err());
        assert!(read_sacct_str("").is_err());
    }

    #[test]
    fn write_then_read_round_trips() {
        let text = concat!(
            "JobID|User|Elapsed|ReqMem\n",
            "1|alice|02:00:00|32G\n",
            "2|bob|3-01:02:03|512M\n",
        );
        let frame = read_sacct_str(text).unwrap();
        let written = write_sacct_string(&frame);
        let again = read_sacct_str(&written).unwrap();
        assert_eq!(frame, again);
        assert!(written.contains("3-01:02:03"));
        // Mem columns must carry a unit suffix on the way out, or a
        // re-read would treat the bare number as bytes.
        assert!(written.contains("32G"), "{written}");
        assert!(written.contains("0.5G"), "{written}");
    }
}
