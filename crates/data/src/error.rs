//! Error types for the data layer.

use std::fmt;

/// Errors produced by frame construction, CSV parsing, and joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was referenced that does not exist in the frame.
    UnknownColumn(String),
    /// Two columns (or a column and the frame) disagree on row count.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length the frame expected.
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// A value of the wrong type was pushed into a typed column.
    TypeMismatch {
        /// Column that rejected the value.
        column: String,
        /// Data type of the column.
        expected: &'static str,
        /// Description of the offending value.
        actual: String,
    },
    /// A column with the same name was added twice.
    DuplicateColumn(String),
    /// CSV text could not be parsed.
    Csv {
        /// 1-based line where the error occurred.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error occurred while reading or writing CSV.
    Io(String),
    /// A schema validation failure.
    Schema(String),
    /// A join key was invalid (missing column, unjoinable type, ...).
    Join(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has {actual} rows, frame expects {expected}"
            ),
            DataError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` holds {expected} values, got `{actual}`"
            ),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::Schema(msg) => write!(f, "schema error: {msg}"),
            DataError::Join(msg) => write!(f, "join error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err.to_string())
    }
}

/// Convenience alias used throughout the data layer.
pub type Result<T> = std::result::Result<T, DataError>;
