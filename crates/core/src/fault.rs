//! Fault-tolerant pipeline entry points.
//!
//! [`crate::analyze`] is the paper's one-shot offline workflow: any
//! corrupt input or pathological configuration panics, which is fine at a
//! research prompt and fatal behind a service. This module adds the
//! production entry points the ROADMAP's north star needs:
//!
//! * [`try_analyze`] / [`try_analyze_traced`] — the same pipeline, but
//!   every stage runs under `catch_unwind` and every failure comes back
//!   as a stage-tagged [`PipelineError`] instead of unwinding the caller;
//! * an execution budget ([`irma_mine::ExecBudget`], carried on
//!   [`AnalysisConfig::budget`]) bounding mined itemsets, estimated
//!   FP-tree memory, and wall-clock time via a cooperative
//!   [`irma_mine::CancelToken`] checked inside all three miners'
//!   recursions;
//! * a **degradation ladder**: when mining breaches the budget the
//!   workflow retries with the paper's own knobs turned the cheap way —
//!   min-support doubled, max itemset length decremented — and the
//!   resulting [`Analysis`] carries a [`Degradation`] report (also
//!   flagged in the obs snapshot via [`irma_obs::Metrics::mark_degraded`])
//!   so a best-effort answer can never masquerade as a complete one.
//!
//! The deadline is **run-wide**: ladder retries share the original
//! attempt's [`irma_mine::CancelToken`], so retrying never wins back
//! already-spent wall-clock time and a tiny `--deadline` exhausts the
//! ladder deterministically instead of looping.
//!
//! [`StageHooks`] exists for the fault-injection harness in
//! `irma-check`: it fires a callback at each stage entry *inside* that
//! stage's `catch_unwind`, so an injected panic exercises exactly the
//! containment path a real bug would.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use irma_data::Frame;
use irma_mine::{BudgetBreach, BudgetGuard, MineError, MinerConfig};
use irma_obs::{Metrics, Provenance};
use irma_prep::{encode_with, EncoderSpec};
use irma_rules::generate_rules_traced;

use crate::workflow::{Analysis, AnalysisConfig};

/// Maximum number of ladder retries after the initial attempt.
pub const MAX_DEGRADATION_RETRIES: usize = 3;

/// A typed, stage-tagged pipeline failure: every way [`try_analyze`] can
/// not produce an [`Analysis`], none of which unwinds the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The input text could not be parsed into a [`Frame`]
    /// (see [`try_analyze_csv`]).
    Parse(String),
    /// The encode stage panicked (e.g. a spec names a missing column).
    Encode(String),
    /// The mine stage failed: invalid miner config, or a panic the
    /// per-stage `catch_unwind` contained.
    Mine(String),
    /// The rule-generation stage panicked.
    Rules(String),
    /// The execution budget was breached and the degradation ladder ran
    /// out of knobs to relax (or of retries).
    BudgetExceeded {
        /// The breach that ended the final attempt.
        breach: BudgetBreach,
        /// Total attempts made (initial + retries).
        attempts: u32,
    },
    /// A parallel worker panicked; the panic was contained (per-rank in
    /// FP-Growth, per-stage otherwise) instead of aborting the process.
    WorkerPanic {
        /// Pipeline stage the worker belonged to.
        stage: &'static str,
        /// Rendered panic payload.
        message: String,
    },
}

impl PipelineError {
    /// Short stage tag (`parse`, `encode`, `mine`, `rules`, `budget`,
    /// `worker_panic`) for logs and exit-code mapping.
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Parse(_) => "parse",
            PipelineError::Encode(_) => "encode",
            PipelineError::Mine(_) => "mine",
            PipelineError::Rules(_) => "rules",
            PipelineError::BudgetExceeded { .. } => "budget",
            PipelineError::WorkerPanic { .. } => "worker_panic",
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Parse(msg) => write!(f, "parse error: {msg}"),
            PipelineError::Encode(msg) => write!(f, "encode stage failed: {msg}"),
            PipelineError::Mine(msg) => write!(f, "mine stage failed: {msg}"),
            PipelineError::Rules(msg) => write!(f, "rules stage failed: {msg}"),
            PipelineError::BudgetExceeded { breach, attempts } => {
                write!(f, "budget exceeded after {attempts} attempt(s): {breach}")
            }
            PipelineError::WorkerPanic { stage, message } => {
                write!(f, "worker panicked in {stage} stage: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One rung of the degradation ladder: the budget breach that failed an
/// attempt, and the knobs that attempt ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationStep {
    /// Why the attempt was abandoned.
    pub breach: BudgetBreach,
    /// The min-support the failed attempt used.
    pub failed_min_support: f64,
    /// The max itemset length the failed attempt used.
    pub failed_max_len: usize,
}

/// The record a degraded [`Analysis`] always carries: every failed
/// attempt plus the relaxed knobs that finally fit the budget. Presence
/// of this record is the contract — a budget-laddered answer is never
/// silently complete.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Failed attempts, in order.
    pub steps: Vec<DegradationStep>,
    /// Min-support of the successful attempt.
    pub final_min_support: f64,
    /// Max itemset length of the successful attempt.
    pub final_max_len: usize,
}

impl Degradation {
    /// Total attempts made, counting the successful one.
    pub fn attempts(&self) -> usize {
        self.steps.len() + 1
    }
}

/// A shared stage-entry callback (receives the stage name).
type StageHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Test-only seams for the fault-injection harness: a callback fired at
/// each stage entry (`encode`, `mine`, `rules`), *inside* that stage's
/// `catch_unwind`. Production callers use [`StageHooks::default`], which
/// fires nothing.
#[derive(Clone, Default)]
pub struct StageHooks {
    on_stage: Option<StageHook>,
}

impl std::fmt::Debug for StageHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageHooks")
            .field("on_stage", &self.on_stage.is_some())
            .finish()
    }
}

impl StageHooks {
    /// A hook invoked with the stage name at each stage entry. Panicking
    /// from the hook simulates a bug inside that stage.
    pub fn on_stage(hook: impl Fn(&str) + Send + Sync + 'static) -> StageHooks {
        StageHooks {
            on_stage: Some(Arc::new(hook)),
        }
    }

    fn fire(&self, stage: &str) {
        if let Some(hook) = &self.on_stage {
            hook(stage);
        }
    }
}

/// Renders a `catch_unwind` payload into a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps a contained stage panic to its typed error. A payload from the
/// thread-pool join ("parallel worker panicked") means the panic started
/// on a worker thread, which gets the dedicated variant.
fn panic_to_error(stage: &'static str, payload: Box<dyn std::any::Any + Send>) -> PipelineError {
    let message = panic_message(payload);
    if message.contains("parallel worker panicked") {
        return PipelineError::WorkerPanic { stage, message };
    }
    match stage {
        "encode" => PipelineError::Encode(message),
        "mine" => PipelineError::Mine(message),
        _ => PipelineError::Rules(message),
    }
}

/// Fault-tolerant [`crate::analyze`]: returns a typed [`PipelineError`]
/// instead of panicking, enforces [`AnalysisConfig::budget`], and retries
/// over the degradation ladder on budget breaches.
pub fn try_analyze(
    frame: &Frame,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
) -> Result<Analysis, PipelineError> {
    try_analyze_traced(
        frame,
        spec,
        config,
        &Metrics::disabled(),
        &Provenance::disabled(),
    )
}

/// [`try_analyze`] over raw CSV text: parse failures become
/// [`PipelineError::Parse`] instead of an `unwrap` at the call site.
pub fn try_analyze_csv(
    csv: &str,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
) -> Result<Analysis, PipelineError> {
    let frame = irma_data::read_csv_str(csv).map_err(|e| PipelineError::Parse(e.to_string()))?;
    try_analyze(&frame, spec, config)
}

/// [`try_analyze`] with observability + provenance, mirroring
/// [`crate::analyze_traced`]. A degraded success marks the metrics
/// registry ([`Metrics::mark_degraded`]) and counts ladder steps under
/// `core.degradation_steps`.
pub fn try_analyze_traced(
    frame: &Frame,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
    metrics: &Metrics,
    provenance: &Provenance,
) -> Result<Analysis, PipelineError> {
    try_analyze_traced_hooked(
        frame,
        spec,
        config,
        metrics,
        provenance,
        &StageHooks::default(),
    )
}

/// [`try_analyze_traced`] with fault-injection seams; see [`StageHooks`].
pub fn try_analyze_traced_hooked(
    frame: &Frame,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
    metrics: &Metrics,
    provenance: &Provenance,
    hooks: &StageHooks,
) -> Result<Analysis, PipelineError> {
    let mut root = metrics.span("core.analyze");

    // Validate the pruning margins up front: keyword pruning runs as a
    // later query against the returned `Analysis`, and by then the
    // infallible `prune_rules_traced` path would panic instead of
    // reporting a typed error.
    if let Err(error) = config.prune.validate() {
        return Err(PipelineError::Rules(format!(
            "invalid prune params: {error}"
        )));
    }

    // Encode once — its cost does not depend on the mining knobs, so the
    // ladder never needs to redo it.
    let encoded = catch_unwind(AssertUnwindSafe(|| {
        hooks.fire("encode");
        encode_with(frame, spec, metrics)
    }))
    .map_err(|payload| panic_to_error("encode", payload))?;

    // One guard per attempt, all sharing one token: itemset/tree-byte
    // counters reset per rung, the wall-clock deadline never does.
    let first_guard = BudgetGuard::new(&config.budget);
    let mut miner: MinerConfig = config.miner.clone();
    let mut steps: Vec<DegradationStep> = Vec::new();
    let (frequent, rules) = loop {
        let guard = if steps.is_empty() {
            BudgetGuard::with_token(&config.budget, first_guard.token().clone())
        } else {
            first_guard.renew(&config.budget)
        };
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            hooks.fire("mine");
            config
                .algorithm
                .try_mine_with(&encoded.db, &miner, metrics, &guard)
        }))
        .map_err(|payload| panic_to_error("mine", payload))?;

        match attempt {
            Ok(frequent) => {
                let rules = catch_unwind(AssertUnwindSafe(|| {
                    hooks.fire("rules");
                    generate_rules_traced(&frequent, &config.rules, metrics, provenance)
                }))
                .map_err(|payload| panic_to_error("rules", payload))?;
                break (frequent, rules);
            }
            Err(MineError::InvalidConfig(msg)) => {
                return Err(PipelineError::Mine(format!("invalid miner config: {msg}")));
            }
            Err(MineError::WorkerPanic { message }) => {
                return Err(PipelineError::WorkerPanic {
                    stage: "mine",
                    message,
                });
            }
            Err(MineError::Budget(breach)) => {
                steps.push(DegradationStep {
                    breach: breach.clone(),
                    failed_min_support: miner.min_support,
                    failed_max_len: miner.max_len,
                });
                metrics.incr("core.degradation_steps", 1);
                // The paper's own knobs, turned the cheap way: doubling
                // min-support shrinks the frequent family geometrically,
                // dropping max_len caps enumeration depth.
                let next_support = (miner.min_support * 2.0).min(1.0);
                let next_len = miner.max_len.saturating_sub(1).max(1);
                let knobs_changed = next_support > miner.min_support || next_len < miner.max_len;
                if !knobs_changed || steps.len() > MAX_DEGRADATION_RETRIES {
                    return Err(PipelineError::BudgetExceeded {
                        breach,
                        attempts: steps.len() as u32,
                    });
                }
                miner.min_support = next_support;
                miner.max_len = next_len;
            }
        }
    };

    let degradation = if steps.is_empty() {
        None
    } else {
        metrics.mark_degraded();
        Some(Degradation {
            steps,
            final_min_support: miner.min_support,
            final_max_len: miner.max_len,
        })
    };

    root.field("jobs", encoded.db.len() as u64);
    root.field("rules", rules.len() as u64);
    if let Some(d) = &degradation {
        root.field("degradation_steps", d.steps.len() as u64);
    }
    let rule_trie = irma_rules::RuleTrie::over_antecedents(&rules);
    Ok(Analysis {
        encoded,
        frequent,
        rules,
        rule_trie,
        config: AnalysisConfig {
            miner,
            ..config.clone()
        },
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::analyze;
    use irma_data::read_csv_str;
    use irma_mine::ExecBudget;
    use irma_prep::{FeatureSpec, ZeroBin};
    use std::sync::Once;
    use std::time::Duration;

    /// The contained-panic tests would spray backtraces over test output;
    /// silence the default hook once for this binary.
    fn quiet_panics() {
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload_is_injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected"));
                if !payload_is_injected {
                    previous(info);
                }
            }));
        });
    }

    fn tiny_frame() -> (Frame, EncoderSpec) {
        let mut csv = String::from("runtime,sm\n");
        for i in 0..20 {
            let (rt, sm) = if i < 8 { (10.0, 0.0) } else { (5_000.0, 70.0) };
            csv.push_str(&format!("{},{}\n", rt + i as f64, sm));
        }
        let frame = read_csv_str(&csv).unwrap();
        let spec = EncoderSpec::new(vec![
            FeatureSpec::numeric("runtime", "Runtime"),
            FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
        ]);
        (frame, spec)
    }

    fn base_config() -> AnalysisConfig {
        let mut config = AnalysisConfig::default();
        config.rules.min_lift = 1.2;
        config
    }

    #[test]
    fn unbudgeted_run_matches_analyze_exactly() {
        let (frame, spec) = tiny_frame();
        let config = base_config();
        let fallible = try_analyze(&frame, &spec, &config).expect("clean input");
        let infallible = analyze(&frame, &spec, &config);
        assert!(fallible.degradation.is_none());
        assert_eq!(fallible.rules, infallible.rules);
        assert_eq!(fallible.frequent.as_slice(), infallible.frequent.as_slice());
        assert_eq!(fallible.config, infallible.config);
        assert_eq!(fallible.summary(), infallible.summary());
    }

    #[test]
    fn itemset_budget_trips_then_ladder_recovers() {
        let (frame, spec) = tiny_frame();
        let mut config = base_config();
        config.miner.min_support = 0.05;
        config.budget = ExecBudget {
            max_itemsets: Some(10),
            ..ExecBudget::default()
        };
        let metrics = Metrics::enabled();
        let analysis =
            try_analyze_traced(&frame, &spec, &config, &metrics, &Provenance::disabled())
                .expect("ladder should recover");
        let degradation = analysis.degradation.as_ref().expect("degradation recorded");
        assert!(!degradation.steps.is_empty());
        assert!(degradation.final_min_support > 0.05);
        assert!(matches!(
            degradation.steps[0].breach,
            BudgetBreach::Itemsets { cap: 10, .. }
        ));
        // The effective knobs land in the analysis config too.
        assert_eq!(
            analysis.config.miner.min_support,
            degradation.final_min_support
        );
        // And the obs snapshot flags the run.
        let snap = metrics.snapshot();
        assert!(snap.degraded);
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == "core.degradation_steps" && *v > 0));
    }

    #[test]
    fn zero_deadline_exhausts_the_ladder() {
        let (frame, spec) = tiny_frame();
        let mut config = base_config();
        config.budget = ExecBudget {
            deadline: Some(Duration::ZERO),
            ..ExecBudget::default()
        };
        let err = try_analyze(&frame, &spec, &config).unwrap_err();
        match err {
            PipelineError::BudgetExceeded { breach, attempts } => {
                assert!(matches!(breach, BudgetBreach::Deadline { .. }));
                assert_eq!(attempts as usize, MAX_DEGRADATION_RETRIES + 1);
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn missing_column_is_an_encode_error_not_a_panic() {
        quiet_panics();
        let (frame, _) = tiny_frame();
        let spec = EncoderSpec::new(vec![FeatureSpec::numeric("no_such_column", "X")]);
        let err = try_analyze(&frame, &spec, &base_config()).unwrap_err();
        assert_eq!(err.stage(), "encode");
    }

    #[test]
    fn injected_stage_panics_are_typed() {
        quiet_panics();
        let (frame, spec) = tiny_frame();
        let config = base_config();
        for (stage, expected) in [("encode", "encode"), ("mine", "mine"), ("rules", "rules")] {
            let hooks = StageHooks::on_stage(move |s: &str| {
                if s == stage {
                    panic!("injected {stage} failure");
                }
            });
            let err = try_analyze_traced_hooked(
                &frame,
                &spec,
                &config,
                &Metrics::disabled(),
                &Provenance::disabled(),
                &hooks,
            )
            .unwrap_err();
            assert_eq!(err.stage(), expected, "{err}");
            assert!(err.to_string().contains("injected"), "{err}");
        }
    }

    #[test]
    fn worker_panic_is_contained_and_attributed() {
        quiet_panics();
        let (frame, spec) = tiny_frame();
        let mut config = base_config();
        config.miner.parallel = true;
        config.budget = ExecBudget {
            panic_after_emits: Some(1),
            ..ExecBudget::default()
        };
        let err = try_analyze(&frame, &spec, &config).unwrap_err();
        match err {
            PipelineError::WorkerPanic { stage, message } => {
                assert_eq!(stage, "mine");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn garbage_csv_is_a_parse_error() {
        let spec = EncoderSpec::new(vec![FeatureSpec::numeric("a", "A")]);
        let err = try_analyze_csv("a,b\n\"unclosed", &spec, &base_config()).unwrap_err();
        assert_eq!(err.stage(), "parse");
    }

    #[test]
    fn invalid_miner_config_is_a_mine_error() {
        let (frame, spec) = tiny_frame();
        let mut config = base_config();
        config.miner.min_support = -0.5;
        let err = try_analyze(&frame, &spec, &config).unwrap_err();
        assert_eq!(err.stage(), "mine");
    }

    #[test]
    fn invalid_prune_params_are_a_rules_error() {
        let (frame, spec) = tiny_frame();
        let mut config = base_config();
        config.prune.c_lift = 0.5;
        let err = try_analyze(&frame, &spec, &config).unwrap_err();
        assert_eq!(err.stage(), "rules");
        assert!(err.to_string().contains(">= 1"), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        let err = PipelineError::BudgetExceeded {
            breach: BudgetBreach::Itemsets {
                emitted: 11,
                cap: 10,
            },
            attempts: 4,
        };
        let text = err.to_string();
        assert!(text.contains("4 attempt"), "{text}");
        assert!(text.contains("cap 10"), "{text}");
    }
}
