//! Dataset fingerprints and normalized config cache keys.
//!
//! The serving layer (`irma-serve`) caches analysis results keyed by
//! *(dataset fingerprint, normalized config)*. Both halves live here so
//! the CLI, the server, and the chaos harness agree on them:
//!
//! * [`dataset_fingerprint`] hashes the raw CSV bytes (FNV-1a 64) into a
//!   16-hex-digit handle a client can replay (`fp:<hex>` bodies) instead
//!   of re-uploading the dataset.
//! * [`config_cache_key`] renders the analysis knobs that *change the
//!   output* into a canonical string. Knobs that provably do not —
//!   `MinerConfig::parallel` (byte-identical output at any width, pinned
//!   by the differential harness) and the whole [`ExecBudget`] (cached
//!   entries are full-fidelity, never degraded, so the budget that
//!   produced them is irrelevant) — are deliberately excluded, so a
//!   client retrying with a longer deadline still hits the cache.
//!
//! Floats are keyed by their exact bit pattern ([`f64::to_bits`]): no
//! formatting round-trip, no false sharing between configs that differ
//! in a late decimal.

use crate::workflow::AnalysisConfig;

/// Fingerprints a dataset's raw bytes: FNV-1a 64, rendered as 16 lowercase
/// hex digits. Stable across runs and platforms.
pub fn dataset_fingerprint(bytes: &[u8]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

/// Renders the output-affecting analysis knobs into a canonical cache-key
/// string. `keyword` is the optional keyword-analysis target (a column
/// label); `top` caps how many rules/causes the caller renders and is
/// *included* because it changes the response body.
pub fn config_cache_key(config: &AnalysisConfig, keyword: Option<&str>, top: usize) -> String {
    format!(
        "alg={};ms={:016x};ml={};rl={:016x};rc={:016x};rs={:016x};cl={:016x};cs={:016x};kw={};top={}",
        config.algorithm.name(),
        config.miner.min_support.to_bits(),
        config.miner.max_len,
        config.rules.min_lift.to_bits(),
        config.rules.min_confidence.to_bits(),
        config.rules.min_support.to_bits(),
        config.prune.c_lift.to_bits(),
        config.prune.c_supp.to_bits(),
        keyword.unwrap_or(""),
        top,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_mine::ExecBudget;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = dataset_fingerprint(b"runtime,sm\n1,2\n");
        assert_eq!(a.len(), 16);
        assert_eq!(a, dataset_fingerprint(b"runtime,sm\n1,2\n"));
        assert_ne!(a, dataset_fingerprint(b"runtime,sm\n1,3\n"));
        // Pinned value: clients may persist fingerprints across versions.
        assert_eq!(dataset_fingerprint(b""), "cbf29ce484222325");
    }

    #[test]
    fn cache_key_ignores_parallel_and_budget() {
        let base = AnalysisConfig::default();
        let mut parallel_off = base.clone();
        parallel_off.miner.parallel = !base.miner.parallel;
        let mut budgeted = base.clone();
        budgeted.budget = ExecBudget {
            max_itemsets: Some(10),
            ..ExecBudget::default()
        };
        let key = config_cache_key(&base, None, 10);
        assert_eq!(key, config_cache_key(&parallel_off, None, 10));
        assert_eq!(key, config_cache_key(&budgeted, None, 10));
    }

    #[test]
    fn cache_key_sees_output_affecting_knobs() {
        let base = AnalysisConfig::default();
        let key = config_cache_key(&base, None, 10);
        let mut support = base.clone();
        support.miner.min_support += 1e-9;
        assert_ne!(key, config_cache_key(&support, None, 10));
        let mut lift = base.clone();
        lift.rules.min_lift = 2.0;
        assert_ne!(key, config_cache_key(&lift, None, 10));
        assert_ne!(key, config_cache_key(&base, Some("State=Failed"), 10));
        assert_ne!(key, config_cache_key(&base, None, 5));
    }
}
