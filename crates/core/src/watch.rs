//! `irma watch` — the long-running streaming analysis daemon.
//!
//! [`watch_feed`] wires the whole streaming story together: a producer
//! thread parses trace records from any [`BufRead`] feed and hands them
//! through a bounded lock-free [`SpscRing`] to the mining loop, which
//! maintains a [`SlidingWindowMiner`] incrementally (O(|txn|) per
//! arrival, no rebuild-from-scratch) and re-emits failure rules plus an
//! OpenMetrics-ready snapshot whenever window drift crosses a threshold
//! or a cadence of arrivals elapses.
//!
//! Two mechanisms keep the daemon healthy when reality misbehaves:
//!
//! * **Backpressure + adaptive sampling.** The ring is bounded; when the
//!   producer outruns the miner it first spins (counted as
//!   `watch.backpressure_waits`), and the [`AdaptiveSampler`] degrades
//!   the admission rate (keep every k-th record, k doubling while ring
//!   occupancy stays above its high watermark) so a sustained burst
//!   costs bounded staleness instead of unbounded memory. Every dropped
//!   record is counted (`watch.sampled_out`) — degradation is always
//!   visible, never silent.
//! * **Budgeted mining with the degradation ladder.** Every re-mine runs
//!   under an [`ExecBudget`] through [`SlidingWindowMiner::try_mine_with`],
//!   wrapped in the same relax-and-retry ladder the batch pipeline uses
//!   (double `min_support`, shrink `max_len`, at most
//!   [`MAX_DEGRADATION_RETRIES`] rungs). A poisoned window — budget
//!   breach, even a worker panic — costs one failed emission
//!   (`watch.emission_failures`), never the process.
//!
//! Garbled feed lines are counted (`watch.garbled_lines`) and skipped;
//! trace-log write failures are already absorbed and counted by the
//! metrics registry. The daemon's only unrecoverable input is EOF.

use std::cell::{Cell, UnsafeCell};
use std::io::BufRead;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use irma_mine::{
    BudgetGuard, ExecBudget, FrequentItemsets, ItemId, MineError, MinerConfig, SlidingWindowMiner,
};
use irma_obs::{Metrics, Provenance};
use irma_rules::{generate_rules_traced, KeywordAnalysis, PruneParams, Rule, RuleConfig};

use crate::fault::MAX_DEGRADATION_RETRIES;

/// Arrivals the mining loop waits after a failed emission before
/// re-arming the triggers, so a window that keeps tripping the ladder
/// does not re-run it on every arrival.
const FAILURE_COOLDOWN: usize = 64;

// ---------------------------------------------------------------------
// SPSC ring buffer
// ---------------------------------------------------------------------

/// A cache-line-aligned atomic so the producer's tail and the consumer's
/// head never share a line (classic false-sharing hazard in SPSC rings).
#[repr(align(64))]
struct PaddedAtomicUsize(AtomicUsize);

/// A bounded single-producer single-consumer ring buffer.
///
/// Indices grow monotonically (wrapping `usize` arithmetic) and are
/// masked into the power-of-two slot array, so `tail - head` is always
/// the live element count. The producer owns `tail` (stores with
/// `Release` after writing the slot), the consumer owns `head` (stores
/// with `Release` after reading the slot out); each side `Acquire`-loads
/// the other's index, which is exactly the synchronizes-with edge that
/// publishes slot contents across the threads.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next index to pop (consumer-owned).
    head: PaddedAtomicUsize,
    /// Next index to push (producer-owned).
    tail: PaddedAtomicUsize,
}

// SAFETY: the ring hands each value from exactly one thread to exactly
// one other thread (the head/tail protocol above guarantees a slot is
// never read and written concurrently), so sharing the ring is sound
// whenever moving `T` between threads is.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at least `capacity` elements (rounded up to the
    /// next power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> SpscRing<T> {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            slots,
            mask: capacity - 1,
            head: PaddedAtomicUsize(AtomicUsize::new(0)),
            tail: PaddedAtomicUsize(AtomicUsize::new(0)),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current element count (racy by nature; exact when called from
    /// either endpoint thread between its own operations).
    pub fn len(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring is currently empty (racy, like [`SpscRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: appends `value`, or returns it back when the ring
    /// is full. Must only be called from one thread at a time.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(value);
        }
        // SAFETY: `tail - head < capacity`, so this slot is not live and
        // the consumer will not touch it until the Release store below.
        unsafe { (*self.slots[tail & self.mask].get()).write(value) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: removes the oldest element, if any. Must only be
    /// called from one thread at a time.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` means this slot holds an initialized
        // value the producer published with its Release store, and the
        // producer will not overwrite it until the Release store below.
        let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Undrained elements still own resources; pop them so they drop.
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------
// Adaptive sampler
// ---------------------------------------------------------------------

/// Deterministic keep-every-k admission control for the feed producer.
///
/// While ring occupancy sits above the high watermark the keep interval
/// doubles (admit 1 in 2, 1 in 4, ...); once occupancy falls below the
/// low watermark it halves back toward admitting everything. Watermarks
/// are only consulted every [`AdaptiveSampler::ADJUST_STRIDE`] arrivals
/// so a single occupancy spike cannot slam the rate to the floor.
/// Admission is `tick % keep_every == 0` — deterministic, so tests and
/// replays see identical drop schedules for identical load patterns.
#[derive(Debug)]
pub struct AdaptiveSampler {
    keep_every: u32,
    tick: u64,
}

impl AdaptiveSampler {
    /// Arrivals between watermark checks.
    pub const ADJUST_STRIDE: u64 = 32;
    /// Ceiling on the keep interval (1 in 65536 records).
    pub const MAX_KEEP_EVERY: u32 = 1 << 16;
    /// Occupancy above which the sampler degrades.
    pub const HIGH_WATERMARK: f64 = 0.75;
    /// Occupancy below which the sampler recovers.
    pub const LOW_WATERMARK: f64 = 0.25;

    /// A sampler that starts by admitting everything.
    pub fn new() -> AdaptiveSampler {
        AdaptiveSampler {
            keep_every: 1,
            tick: 0,
        }
    }

    /// Current keep interval (1 = no sampling).
    pub fn keep_every(&self) -> u32 {
        self.keep_every
    }

    /// Decides whether the next record is admitted, given current ring
    /// occupancy in `[0, 1]`.
    pub fn admit(&mut self, occupancy: f64) -> bool {
        if self.tick.is_multiple_of(AdaptiveSampler::ADJUST_STRIDE) {
            if occupancy > AdaptiveSampler::HIGH_WATERMARK
                && self.keep_every < AdaptiveSampler::MAX_KEEP_EVERY
            {
                self.keep_every <<= 1;
            } else if occupancy < AdaptiveSampler::LOW_WATERMARK && self.keep_every > 1 {
                self.keep_every >>= 1;
            }
        }
        let admitted = self.tick.is_multiple_of(u64::from(self.keep_every));
        self.tick = self.tick.wrapping_add(1);
        admitted
    }
}

impl Default for AdaptiveSampler {
    fn default() -> AdaptiveSampler {
        AdaptiveSampler::new()
    }
}

// ---------------------------------------------------------------------
// Configuration and outputs
// ---------------------------------------------------------------------

/// Tuning for one [`watch_feed`] run.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Sliding-window capacity (transactions).
    pub window: usize,
    /// Mining thresholds each emission starts from (the ladder relaxes a
    /// copy; the configured values are restored for the next emission).
    pub miner: MinerConfig,
    /// Rule-generation thresholds.
    pub rules: RuleConfig,
    /// Keyword-pruning parameters (used when [`WatchConfig::keyword`] is set).
    pub prune: PruneParams,
    /// Execution budget each mining attempt runs under.
    pub budget: ExecBudget,
    /// Window L1 drift (vs. the last mined baseline) that triggers a
    /// re-emission.
    pub drift_threshold: f64,
    /// Re-emit after this many arrivals even without drift (0 disables
    /// the cadence trigger; drift alone then drives emissions).
    pub cadence: usize,
    /// Skip triggers until the window holds at least this many
    /// transactions (clamped to the window capacity).
    pub warmup: usize,
    /// Stop after this many admitted arrivals (`None` = run to EOF).
    pub max_arrivals: Option<u64>,
    /// When set, emissions carry the keyword's pruned cause rules;
    /// otherwise the top rules by lift.
    pub keyword: Option<ItemId>,
    /// Rules carried per emission.
    pub top: usize,
    /// Feed ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Cooperative shutdown flag (e.g. set from a SIGTERM handler). When
    /// it flips to `true` the mining loop stops admitting arrivals,
    /// flushes a final emission, and returns — even if the feed producer
    /// is still blocked reading a quiet source.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            window: 2_000,
            miner: MinerConfig::default(),
            rules: RuleConfig::with_min_lift(1.5),
            prune: PruneParams::default(),
            budget: ExecBudget::default(),
            drift_threshold: 0.35,
            cadence: 1_000,
            warmup: 256,
            max_arrivals: None,
            keyword: None,
            top: 5,
            ring_capacity: 1_024,
            shutdown: None,
        }
    }
}

/// One re-emission from the mining loop.
#[derive(Debug, Clone)]
pub struct Emission {
    /// 1-based emission sequence number.
    pub seq: u64,
    /// Admitted arrivals processed when this emission fired.
    pub arrivals: u64,
    /// Window length at emission time.
    pub window: usize,
    /// Drift vs. the previous baseline at emission time (infinite for
    /// the first emission).
    pub drift: f64,
    /// Ladder rungs this emission needed (0 = mined within budget at the
    /// configured thresholds).
    pub degradation_steps: usize,
    /// The selected rules (keyword causes, or top by lift).
    pub rules: Vec<Rule>,
}

/// End-of-run accounting for one [`watch_feed`] call.
#[derive(Debug, Clone, Default)]
pub struct WatchSummary {
    /// Transactions admitted into the window.
    pub arrivals: u64,
    /// Successful rule re-emissions.
    pub emissions: u64,
    /// Emissions abandoned after the ladder was exhausted (or a worker
    /// panicked); the daemon kept running.
    pub failed_emissions: u64,
    /// Successful emissions that needed at least one ladder rung.
    pub degraded_emissions: u64,
    /// Feed lines that failed to parse and were skipped.
    pub garbled_lines: u64,
    /// Records dropped by the adaptive sampler under load.
    pub sampled_out: u64,
    /// Producer spins while the ring was full.
    pub backpressure_waits: u64,
    /// Window length when the feed ended.
    pub final_window: usize,
    /// Human-readable reason for the most recent failed emission.
    pub last_error: Option<String>,
}

/// Parses one feed line: comma-separated decimal item ids. Returns
/// `None` for anything else (the caller counts it as garbled).
fn parse_line(line: &str) -> Option<Vec<ItemId>> {
    let mut txn = Vec::new();
    for token in line.split(',') {
        txn.push(token.trim().parse::<ItemId>().ok()?);
    }
    Some(txn)
}

/// One budgeted mine through the degradation ladder: retry with relaxed
/// thresholds on budget breaches, contain worker panics, give up after
/// [`MAX_DEGRADATION_RETRIES`] rungs. Returns the itemsets plus the
/// number of rungs taken, or a description of why mining was abandoned.
fn laddered_mine(
    miner: &mut SlidingWindowMiner,
    base: &MinerConfig,
    budget: &ExecBudget,
    run_guard: &BudgetGuard,
    metrics: &Metrics,
) -> Result<(FrequentItemsets, usize), String> {
    let mut knobs = base.clone();
    let mut steps = 0usize;
    loop {
        let guard = run_guard.renew(budget);
        let outcome = catch_unwind(AssertUnwindSafe(|| miner.try_mine_with(&knobs, &guard)));
        match outcome {
            Ok(Ok(frequent)) => {
                if steps > 0 {
                    metrics.mark_degraded();
                }
                return Ok((frequent, steps));
            }
            Ok(Err(MineError::Budget(breach))) => {
                steps += 1;
                metrics.incr("core.degradation_steps", 1);
                let next_support = (knobs.min_support * 2.0).min(1.0);
                let next_len = knobs.max_len.saturating_sub(1).max(1);
                let knobs_changed = next_support > knobs.min_support || next_len < knobs.max_len;
                if !knobs_changed || steps > MAX_DEGRADATION_RETRIES {
                    return Err(format!(
                        "budget exhausted after {steps} degradation step(s): {breach:?}"
                    ));
                }
                knobs.min_support = next_support;
                knobs.max_len = next_len;
            }
            Ok(Err(err)) => return Err(format!("mining failed: {err:?}")),
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                return Err(format!("mining worker panicked: {message}"));
            }
        }
    }
}

/// Keyword causes when a keyword is configured, otherwise the top rules
/// by lift; always at most `config.top`, deterministically ordered.
fn select_rules(rules: Vec<Rule>, config: &WatchConfig, metrics: &Metrics) -> Vec<Rule> {
    let mut kept = match config.keyword {
        Some(keyword) => KeywordAnalysis::run_with(&rules, keyword, &config.prune, metrics).causes,
        None => rules,
    };
    kept.sort_by(|a, b| {
        b.lift
            .total_cmp(&a.lift)
            .then_with(|| a.antecedent.items().cmp(b.antecedent.items()))
            .then_with(|| a.consequent.items().cmp(b.consequent.items()))
    });
    kept.truncate(config.top);
    kept
}

/// Feed-side state shared between the producer thread and the mining
/// loop. `Arc`-held (not scope-borrowed) so the mining loop can return
/// on a shutdown request even while the producer is still blocked
/// reading a quiet feed — the straggler exits on its next line (or EOF)
/// when it observes `consumer_stopped`, and the `Arc` keeps this state
/// alive until then.
struct FeedShared {
    ring: SpscRing<Vec<ItemId>>,
    producer_done: AtomicBool,
    consumer_stopped: AtomicBool,
    garbled: AtomicU64,
    sampled_out: AtomicU64,
    backpressure_waits: AtomicU64,
}

/// Runs the streaming daemon over `feed` until EOF (or
/// [`WatchConfig::max_arrivals`], or [`WatchConfig::shutdown`] flips),
/// invoking `on_emit` for every successful re-emission. See the module
/// docs for the architecture; this function never panics on bad input —
/// garbled lines, budget trips, and worker panics all degrade into
/// counters.
pub fn watch_feed<R, F>(
    feed: R,
    config: &WatchConfig,
    metrics: &Metrics,
    mut on_emit: F,
) -> WatchSummary
where
    R: BufRead + Send + 'static,
    F: FnMut(&Emission),
{
    let started = Instant::now();
    let last_emission: Cell<Option<Instant>> = Cell::new(None);
    let warmup = config.warmup.clamp(1, config.window);
    let shared = Arc::new(FeedShared {
        ring: SpscRing::with_capacity(config.ring_capacity),
        producer_done: AtomicBool::new(false),
        consumer_stopped: AtomicBool::new(false),
        garbled: AtomicU64::new(0),
        sampled_out: AtomicU64::new(0),
        backpressure_waits: AtomicU64::new(0),
    });
    let shutdown_requested = || {
        config
            .shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    };

    let mut summary = WatchSummary::default();

    let producer = {
        let shared = Arc::clone(&shared);
        let metrics = metrics.clone();
        std::thread::Builder::new()
            .name("irma-watch-feed".to_string())
            .spawn(move || {
                let mut sampler = AdaptiveSampler::new();
                let mut last_keep_every = sampler.keep_every();
                'feed: for line in feed.lines() {
                    if shared.consumer_stopped.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(line) = line else {
                        // An I/O error mid-feed is indistinguishable from
                        // a truncated record: count it, stop reading.
                        shared.garbled.fetch_add(1, Ordering::Relaxed);
                        break;
                    };
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some(txn) = parse_line(line) else {
                        shared.garbled.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let occupancy = shared.ring.len() as f64 / shared.ring.capacity() as f64;
                    if !sampler.admit(occupancy) {
                        shared.sampled_out.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if sampler.keep_every() != last_keep_every {
                        last_keep_every = sampler.keep_every();
                        metrics.gauge("watch.sample_keep_every", f64::from(last_keep_every));
                    }
                    let mut pending = txn;
                    loop {
                        match shared.ring.push(pending) {
                            Ok(()) => break,
                            Err(back) => {
                                if shared.consumer_stopped.load(Ordering::Relaxed) {
                                    break 'feed;
                                }
                                pending = back;
                                shared.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                shared.producer_done.store(true, Ordering::Release);
            })
            .expect("spawning watch feed producer")
    };

    {
        let mut miner = SlidingWindowMiner::new(config.window, config.miner.clone())
            .with_metrics(metrics.clone());
        let first_guard = BudgetGuard::new(&config.budget);
        let mut since_emit = 0usize;
        let mut cooldown = 0usize;

        let mut emit = |miner: &mut SlidingWindowMiner,
                        summary: &mut WatchSummary,
                        since_emit: &mut usize,
                        cooldown: &mut usize,
                        drift: f64| {
            match laddered_mine(miner, &config.miner, &config.budget, &first_guard, metrics) {
                Ok((frequent, steps)) => {
                    let rules = generate_rules_traced(
                        &frequent,
                        &config.rules,
                        metrics,
                        &Provenance::disabled(),
                    );
                    let rules = select_rules(rules, config, metrics);
                    summary.emissions += 1;
                    if steps > 0 {
                        summary.degraded_emissions += 1;
                    }
                    *since_emit = 0;
                    last_emission.set(Some(Instant::now()));
                    metrics.incr("watch.emissions", 1);
                    metrics.gauge(
                        "watch.window_fill",
                        miner.len() as f64 / config.window as f64,
                    );
                    metrics.gauge("watch.uptime_seconds", started.elapsed().as_secs_f64());
                    metrics.gauge("watch.last_emission_age_seconds", 0.0);
                    // Scheduler counters from whichever pool serves this
                    // loop (the installed one under `install`, the global
                    // registry otherwise).
                    crate::sched::record_sched_stats(metrics);
                    on_emit(&Emission {
                        seq: summary.emissions,
                        arrivals: summary.arrivals,
                        window: miner.len(),
                        drift,
                        degradation_steps: steps,
                        rules,
                    });
                }
                Err(reason) => {
                    summary.failed_emissions += 1;
                    summary.last_error = Some(reason);
                    *since_emit = 0;
                    *cooldown = FAILURE_COOLDOWN;
                    metrics.incr("watch.emission_failures", 1);
                    metrics.gauge("watch.uptime_seconds", started.elapsed().as_secs_f64());
                }
            }
        };

        'mine: loop {
            let txn = loop {
                if let Some(txn) = shared.ring.pop() {
                    break txn;
                }
                if shutdown_requested() {
                    shared.consumer_stopped.store(true, Ordering::Relaxed);
                    break 'mine;
                }
                if shared.producer_done.load(Ordering::Acquire) {
                    // `producer_done` is stored after the final push, so
                    // one more pop after observing it drains stragglers.
                    match shared.ring.pop() {
                        Some(txn) => break txn,
                        None => break 'mine,
                    }
                }
                std::thread::yield_now();
            };
            miner.push(txn);
            summary.arrivals += 1;
            since_emit += 1;
            cooldown = cooldown.saturating_sub(1);
            if shutdown_requested() {
                shared.consumer_stopped.store(true, Ordering::Relaxed);
                break;
            }
            if let Some(max) = config.max_arrivals {
                if summary.arrivals >= max {
                    shared.consumer_stopped.store(true, Ordering::Relaxed);
                    break;
                }
            }
            if miner.len() < warmup || cooldown > 0 {
                continue;
            }
            let drift = miner.drift();
            let cadence_due = config.cadence > 0 && since_emit >= config.cadence;
            if drift >= config.drift_threshold || cadence_due {
                emit(
                    &mut miner,
                    &mut summary,
                    &mut since_emit,
                    &mut cooldown,
                    drift,
                );
            }
        }
        // Final flush: whatever arrived since the last emission still
        // deserves one report before the daemon exits.
        if since_emit > 0 && !miner.is_empty() {
            let drift = miner.drift();
            emit(
                &mut miner,
                &mut summary,
                &mut since_emit,
                &mut cooldown,
                drift,
            );
        }
        summary.final_window = miner.len();
    }

    // Join the producer when it has finished (the common EOF path, where
    // the counters below are then exact). After a shutdown request it
    // gets a short grace period to notice `consumer_stopped`; a producer
    // still blocked on a quiet feed is left detached — it exits on its
    // next line or EOF, and the `Arc` keeps the shared state alive.
    let grace = Instant::now();
    while !shared.producer_done.load(Ordering::Acquire)
        && grace.elapsed() < Duration::from_millis(200)
    {
        std::thread::yield_now();
    }
    if shared.producer_done.load(Ordering::Acquire) {
        let _ = producer.join();
    }

    // Final health gauges: how long the daemon ran and how stale its
    // last report was at shutdown (a live scrape endpoint recomputes
    // these from wall clocks; the snapshot file keeps the exit values).
    metrics.gauge("watch.uptime_seconds", started.elapsed().as_secs_f64());
    if let Some(at) = last_emission.get() {
        metrics.gauge(
            "watch.last_emission_age_seconds",
            at.elapsed().as_secs_f64(),
        );
    }

    summary.garbled_lines = shared.garbled.load(Ordering::Relaxed);
    summary.sampled_out = shared.sampled_out.load(Ordering::Relaxed);
    summary.backpressure_waits = shared.backpressure_waits.load(Ordering::Relaxed);
    if summary.arrivals > 0 {
        metrics.incr("watch.arrivals", summary.arrivals);
    }
    if summary.garbled_lines > 0 {
        metrics.incr("watch.garbled_lines", summary.garbled_lines);
    }
    if summary.sampled_out > 0 {
        metrics.incr("watch.sampled_out", summary.sampled_out);
    }
    if summary.backpressure_waits > 0 {
        metrics.incr("watch.backpressure_waits", summary.backpressure_waits);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::Once;

    /// Silences the default panic hook for the chaos harness's injected
    /// panics (payloads containing "injected") so intentional faults do
    /// not spray backtraces over test output.
    fn quiet_panics() {
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload_is_injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected"));
                if !payload_is_injected {
                    previous(info);
                }
            }));
        });
    }

    fn counter(metrics: &Metrics, name: &str) -> u64 {
        metrics
            .snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    fn feed_of(txns: &[&[ItemId]]) -> Cursor<String> {
        let text = txns
            .iter()
            .map(|t| t.iter().map(u32::to_string).collect::<Vec<_>>().join(","))
            .collect::<Vec<_>>()
            .join("\n");
        Cursor::new(text)
    }

    /// Two alternating regimes with lift structure: rule {0}=>{1} (and
    /// {2}=>{3}) has confidence 1.0 over support 0.5, i.e. lift 2.0.
    fn two_regime_feed(n: usize) -> Cursor<String> {
        let txns: Vec<&[ItemId]> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    &[0u32, 1][..]
                } else {
                    &[2u32, 3][..]
                }
            })
            .collect();
        feed_of(&txns)
    }

    #[test]
    fn ring_roundtrips_in_order() {
        let ring = SpscRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99), "full ring must reject");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn ring_transfers_every_element_across_threads() {
        let ring: SpscRing<u64> = SpscRing::with_capacity(8);
        let n = 10_000u64;
        let received = std::thread::scope(|scope| {
            let producer = {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..n {
                        let mut v = i;
                        while let Err(back) = ring.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let mut received = Vec::with_capacity(n as usize);
            while received.len() < n as usize {
                match ring.pop() {
                    Some(v) => received.push(v),
                    None => std::thread::yield_now(),
                }
            }
            producer.join().unwrap();
            received
        });
        assert_eq!(received, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ring_drop_releases_undrained_elements() {
        let token = std::sync::Arc::new(());
        {
            let ring = SpscRing::with_capacity(8);
            for _ in 0..5 {
                ring.push(std::sync::Arc::clone(&token)).unwrap();
            }
            assert_eq!(std::sync::Arc::strong_count(&token), 6);
        }
        assert_eq!(std::sync::Arc::strong_count(&token), 1);
    }

    #[test]
    fn sampler_admits_everything_when_idle() {
        let mut sampler = AdaptiveSampler::new();
        for _ in 0..1_000 {
            assert!(sampler.admit(0.0));
        }
        assert_eq!(sampler.keep_every(), 1);
    }

    #[test]
    fn sampler_degrades_under_pressure_and_recovers() {
        let mut sampler = AdaptiveSampler::new();
        let mut admitted = 0usize;
        for _ in 0..4 * AdaptiveSampler::ADJUST_STRIDE as usize {
            if sampler.admit(0.95) {
                admitted += 1;
            }
        }
        assert!(sampler.keep_every() >= 8, "sustained pressure must degrade");
        assert!(
            admitted < 3 * AdaptiveSampler::ADJUST_STRIDE as usize,
            "degraded sampler must drop records"
        );
        for _ in 0..20 * AdaptiveSampler::ADJUST_STRIDE as usize {
            sampler.admit(0.0);
        }
        assert_eq!(sampler.keep_every(), 1, "idle ring must recover");
    }

    #[test]
    fn cadence_schedule_re_emits() {
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 8,
            drift_threshold: f64::INFINITY,
            ..WatchConfig::default()
        };
        let mut emissions = Vec::new();
        let summary = watch_feed(
            two_regime_feed(40),
            &config,
            &Metrics::disabled(),
            |e: &Emission| emissions.push((e.seq, e.arrivals, e.rules.len())),
        );
        assert_eq!(summary.arrivals, 40);
        assert_eq!(summary.garbled_lines, 0);
        assert_eq!(summary.failed_emissions, 0);
        // Bootstrap emission at warmup (drift starts infinite), cadence-8
        // re-emissions after it, and a final flush for the tail.
        assert_eq!(summary.emissions, 6);
        assert_eq!(
            emissions.iter().map(|&(_, a, _)| a).collect::<Vec<_>>(),
            vec![4, 12, 20, 28, 36, 40]
        );
        // The alternating regimes carry lift-2.0 rules.
        assert!(emissions.iter().any(|&(_, _, n)| n > 0));
    }

    #[test]
    fn health_gauges_land_in_the_snapshot() {
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 8,
            drift_threshold: f64::INFINITY,
            ..WatchConfig::default()
        };
        let metrics = Metrics::enabled();
        let summary = watch_feed(two_regime_feed(40), &config, &metrics, |_| ());
        assert!(summary.emissions > 0);
        let snapshot = metrics.snapshot();
        let gauge = |name: &str| {
            snapshot
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        let uptime = gauge("watch.uptime_seconds").expect("uptime gauge");
        assert!(uptime >= 0.0 && uptime.is_finite());
        let age = gauge("watch.last_emission_age_seconds").expect("age gauge");
        // The final flush emits last, so the shutdown age is tiny but
        // never negative; it can only trail the daemon's uptime.
        assert!((0.0..=uptime).contains(&age), "age {age}, uptime {uptime}");
    }

    #[test]
    fn drift_trigger_fires_on_regime_change() {
        let config = WatchConfig {
            window: 32,
            warmup: 8,
            cadence: 0,
            drift_threshold: 0.4,
            ..WatchConfig::default()
        };
        let txns: Vec<&[ItemId]> = (0..64)
            .map(|i| {
                if i < 32 {
                    &[0u32, 1][..]
                } else {
                    &[2u32, 3][..]
                }
            })
            .collect();
        let mut drifts = Vec::new();
        let summary = watch_feed(
            feed_of(&txns),
            &config,
            &Metrics::disabled(),
            |e: &Emission| drifts.push(e.drift),
        );
        // First emission as soon as warmup fills (drift starts infinite),
        // then the regime flip drives drift past the threshold again.
        assert!(summary.emissions >= 2, "summary: {summary:?}");
        assert!(drifts[0].is_infinite());
        assert!(drifts[1..].iter().any(|d| *d >= 0.4));
    }

    #[test]
    fn garbled_lines_are_counted_not_fatal() {
        let feed = Cursor::new("0,1\nnot,numbers\n2,3\n\n4,\n0,1\n");
        let config = WatchConfig {
            window: 8,
            warmup: 1,
            cadence: 2,
            drift_threshold: f64::INFINITY,
            ..WatchConfig::default()
        };
        let summary = watch_feed(feed, &config, &Metrics::disabled(), |_| {});
        assert_eq!(summary.garbled_lines, 2, "summary: {summary:?}");
        assert_eq!(summary.arrivals, 3);
        assert!(summary.emissions >= 1);
    }

    #[test]
    fn max_arrivals_bounds_an_unbounded_feed() {
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 64,
            drift_threshold: f64::INFINITY,
            max_arrivals: Some(200),
            ..WatchConfig::default()
        };
        let summary = watch_feed(
            two_regime_feed(100_000),
            &config,
            &Metrics::disabled(),
            |_| {},
        );
        assert_eq!(summary.arrivals, 200);
    }

    #[test]
    fn shutdown_flag_stops_a_blocked_feed_and_flushes() {
        // A reader that yields a few records and then blocks forever —
        // the shape of a quiet stdin. Without the detached producer the
        // daemon could never return: joining the producer would wait on
        // a read that never completes.
        struct QuietFeed {
            lines: Vec<u8>,
            served: usize,
            unblock: Arc<AtomicBool>,
        }
        impl std::io::Read for QuietFeed {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.served < self.lines.len() {
                    let n = buf.len().min(self.lines.len() - self.served);
                    buf[..n].copy_from_slice(&self.lines[self.served..self.served + n]);
                    self.served += n;
                    return Ok(n);
                }
                while !self.unblock.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Ok(0)
            }
        }
        let unblock = Arc::new(AtomicBool::new(false));
        let feed = std::io::BufReader::new(QuietFeed {
            lines: b"0,1\n2,3\n0,1\n2,3\n0,1\n2,3\n0,1\n2,3\n".to_vec(),
            served: 0,
            unblock: Arc::clone(&unblock),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 0,
            drift_threshold: f64::INFINITY,
            shutdown: Some(Arc::clone(&shutdown)),
            ..WatchConfig::default()
        };
        let trigger = Arc::clone(&shutdown);
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(100));
            trigger.store(true, Ordering::Relaxed);
        });
        let mut emitted_at = Vec::new();
        let summary = watch_feed(feed, &config, &Metrics::disabled(), |e: &Emission| {
            emitted_at.push(e.arrivals)
        });
        stopper.join().unwrap();
        // All buffered records were consumed and the shutdown still got
        // its final flush emission over the full window.
        assert_eq!(summary.arrivals, 8, "summary: {summary:?}");
        assert_eq!(emitted_at.last(), Some(&8), "emissions: {emitted_at:?}");
        assert_eq!(summary.final_window, 8);
        unblock.store(true, Ordering::Relaxed);
    }

    #[test]
    fn budget_trip_degrades_instead_of_dying() {
        // Window items: one always-on item (12), four at 0.25, eight at
        // 0.125. min_support 0.05 finds far more than 4 itemsets, so the
        // cap trips; the ladder doubles support until only {12} survives.
        let txns: Vec<Vec<ItemId>> = (0..64u32).map(|i| vec![i % 8, 8 + i % 4, 12]).collect();
        let refs: Vec<&[ItemId]> = txns.iter().map(Vec::as_slice).collect();
        let config = WatchConfig {
            window: 32,
            warmup: 16,
            cadence: 16,
            drift_threshold: f64::INFINITY,
            miner: MinerConfig {
                min_support: 0.05,
                ..MinerConfig::default()
            },
            budget: ExecBudget {
                max_itemsets: Some(4),
                ..ExecBudget::default()
            },
            ..WatchConfig::default()
        };
        let metrics = Metrics::enabled();
        let mut steps_seen = Vec::new();
        let summary = watch_feed(feed_of(&refs), &config, &metrics, |e: &Emission| {
            steps_seen.push(e.degradation_steps)
        });
        assert!(summary.emissions >= 1, "summary: {summary:?}");
        assert_eq!(summary.failed_emissions, 0, "summary: {summary:?}");
        assert!(summary.degraded_emissions >= 1);
        assert!(steps_seen.iter().any(|&s| s > 0));
        assert!(metrics.is_degraded());
        assert!(counter(&metrics, "core.degradation_steps") > 0);
    }

    #[test]
    fn exhausted_ladder_fails_the_emission_not_the_process() {
        // Both items appear in every transaction, so even support 1.0 /
        // max_len 1 yields two itemsets — the cap of 1 can never be met
        // and every rung of the ladder trips.
        let config = WatchConfig {
            window: 8,
            warmup: 4,
            cadence: 4,
            drift_threshold: f64::INFINITY,
            budget: ExecBudget {
                max_itemsets: Some(1),
                ..ExecBudget::default()
            },
            ..WatchConfig::default()
        };
        let txns: Vec<&[ItemId]> = (0..16).map(|_| &[0u32, 1][..]).collect();
        let metrics = Metrics::enabled();
        let summary = watch_feed(feed_of(&txns), &config, &metrics, |_| {
            panic!("no emission should succeed")
        });
        assert_eq!(summary.emissions, 0);
        assert!(summary.failed_emissions >= 1, "summary: {summary:?}");
        assert!(summary
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("budget exhausted")));
        assert!(counter(&metrics, "watch.emission_failures") > 0);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        quiet_panics();
        let config = WatchConfig {
            window: 8,
            warmup: 4,
            cadence: 4,
            drift_threshold: f64::INFINITY,
            miner: MinerConfig {
                parallel: false,
                ..MinerConfig::default()
            },
            budget: ExecBudget {
                panic_after_emits: Some(1),
                ..ExecBudget::default()
            },
            ..WatchConfig::default()
        };
        let summary = watch_feed(two_regime_feed(16), &config, &Metrics::disabled(), |_| {});
        assert_eq!(summary.emissions, 0);
        assert!(summary.failed_emissions >= 1, "summary: {summary:?}");
        assert!(summary
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("panicked")));
    }

    #[test]
    fn failing_trace_writer_degrades_but_daemon_survives() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let metrics =
            Metrics::enabled().with_event_sink(irma_obs::EventSink::from_writer(Box::new(Broken)));
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 8,
            drift_threshold: f64::INFINITY,
            ..WatchConfig::default()
        };
        let summary = watch_feed(two_regime_feed(40), &config, &metrics, |_| {});
        assert_eq!(summary.emissions, 6);
        assert!(metrics.trace_log_write_errors() > 0);
        assert!(metrics.is_degraded());
    }

    #[test]
    fn keyword_filter_keeps_only_cause_rules() {
        // Item 1 is the "failure" keyword; {0}=>{1} is its cause rule.
        let config = WatchConfig {
            window: 16,
            warmup: 4,
            cadence: 8,
            drift_threshold: f64::INFINITY,
            keyword: Some(1),
            rules: RuleConfig::with_min_lift(1.5),
            ..WatchConfig::default()
        };
        let mut all_rules = Vec::new();
        let summary = watch_feed(
            two_regime_feed(40),
            &config,
            &Metrics::disabled(),
            |e: &Emission| all_rules.extend(e.rules.iter().cloned()),
        );
        assert!(summary.emissions >= 1);
        assert!(!all_rules.is_empty());
        for rule in &all_rules {
            assert!(
                rule.consequent.items().contains(&1),
                "non-cause rule leaked through the keyword filter: {rule:?}"
            );
        }
    }
}
