//! # irma-core — the IRMA analysis workflow
//!
//! End-to-end reproduction of the paper's interpretable-analysis pipeline:
//! generate (or load) a trace, merge its collection-level files, encode
//! transactions ([`irma_prep`]), mine frequent itemsets ([`irma_mine`]),
//! generate and prune rules ([`irma_rules`]), and render the case-study
//! tables.
//!
//! * [`workflow`] — [`AnalysisConfig`] / [`analyze`] / [`Analysis`], the
//!   single-call pipeline with the paper's default thresholds;
//! * [`specs`] — the per-trace §III-E feature specifications;
//! * [`traces`] — one-call trace preparation ([`prepare`], [`prepare_all`]);
//! * [`experiments`] — one function per paper table and figure;
//! * [`stats`] / [`report`] — CDFs, box stats, and text rendering.
//!
//! ```no_run
//! use irma_core::{analyze, pai_spec, AnalysisConfig};
//! use irma_synth::{pai, TraceConfig};
//!
//! let bundle = pai(&TraceConfig::with_jobs(50_000));
//! let analysis = analyze(&bundle.merged(), &pai_spec(), &AnalysisConfig::default());
//! println!("{}", analysis.render_keyword("SM Util = 0%", 5));
//! ```

#![warn(missing_docs)]

pub mod chrome_trace;
pub mod experiments;
pub mod export;
pub mod fault;
pub mod fingerprint;
pub mod insights;
pub mod predict;
pub mod report;
pub mod sched;
pub mod specs;
pub mod stats;
pub mod traces;
pub mod watch;
pub mod workflow;

pub use chrome_trace::chrome_trace;
pub use fault::{
    try_analyze, try_analyze_csv, try_analyze_traced, try_analyze_traced_hooked, Degradation,
    DegradationStep, PipelineError, StageHooks, MAX_DEGRADATION_RETRIES,
};
pub use fingerprint::{config_cache_key, dataset_fingerprint};
pub use predict::{
    failure_prediction, prediction_experiment, PredictionExperiment, PredictionResult,
};
pub use sched::{record_sched_snapshot, record_sched_stats, sched_stats_to_obs};
pub use specs::{
    pai_spec, philly_spec, supercloud_spec, KW_FAILED, KW_KILLED, KW_MULTI_GPU, KW_SM_ZERO,
};
pub use traces::{prepare, prepare_all, ExperimentScale, TraceAnalysis};
pub use watch::{watch_feed, AdaptiveSampler, Emission, SpscRing, WatchConfig, WatchSummary};
pub use workflow::{analyze, analyze_traced, analyze_with, Analysis, AnalysisConfig};

// Budget types and observability handles, re-exported so workflow
// callers need not depend on `irma-mine`/`irma-obs` directly.
pub use irma_mine::{BudgetBreach, CancelToken, ExecBudget};
pub use irma_obs::{EventSink, Metrics, Provenance};
