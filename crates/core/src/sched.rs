//! Bridge from the work-stealing runtime's scheduler telemetry to the
//! metrics registry.
//!
//! The pool (the workspace `rayon` shim) counts per-worker scheduler
//! events — jobs executed, steal probe outcomes, injector traffic,
//! parks/wakes, deque high-water depth — on cache-line-padded relaxed
//! atomics; [`irma_obs`] carries the numbers but stays dependency-free,
//! so this module is where the two meet: it converts a
//! [`rayon::SchedSnapshot`] into an [`irma_obs::SchedStats`] and pushes
//! it into a [`Metrics`] handle for the JSON/OpenMetrics exporters
//! (`irma_sched_*` families with a `worker` label).

use irma_obs::{Metrics, SchedStats, SchedWorker};

/// Converts a pool snapshot into the exporter-facing shape.
pub fn sched_stats_to_obs(snapshot: &rayon::SchedSnapshot) -> SchedStats {
    SchedStats {
        injector_pushes: snapshot.injector_pushes,
        workers: snapshot
            .workers
            .iter()
            .enumerate()
            .map(|(worker, w)| SchedWorker {
                worker,
                jobs_executed: w.jobs_executed,
                local_pushes: w.local_pushes,
                steal_successes: w.steal_successes,
                steal_empty: w.steal_empty,
                steal_retries: w.steal_retries,
                injector_pops: w.injector_pops,
                parks: w.parks,
                wakes: w.wakes,
                deque_high_water: w.deque_high_water,
            })
            .collect(),
    }
}

/// Pushes `snapshot` into `metrics` via [`Metrics::set_sched`]
/// (last-write-wins). Snapshots with no workers — a sequential width-1
/// pool, or telemetry disabled — are skipped so the metrics snapshot
/// keeps `sched: null` instead of an empty shell.
pub fn record_sched_snapshot(metrics: &Metrics, snapshot: &rayon::SchedSnapshot) {
    if snapshot.workers.is_empty() {
        return;
    }
    metrics.set_sched(sched_stats_to_obs(snapshot));
}

/// Records the calling thread's pool telemetry ([`rayon::sched_stats`]:
/// the installed pool when running under [`rayon::ThreadPool::install`],
/// the global registry otherwise) into `metrics`. Cheap no-op on a
/// disabled handle.
pub fn record_sched_stats(metrics: &Metrics) {
    if !metrics.is_enabled() {
        return;
    }
    record_sched_snapshot(metrics, &rayon::sched_stats());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_preserves_every_counter() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool");
        // Run enough forked work that at least one job executes.
        let total = pool.install(|| {
            let (a, b) = rayon::join(|| 1u64, || 2u64);
            a + b
        });
        assert_eq!(total, 3);
        let snapshot = pool.sched_stats();
        let bridged = sched_stats_to_obs(&snapshot);
        assert_eq!(bridged.injector_pushes, snapshot.injector_pushes);
        assert_eq!(bridged.workers.len(), snapshot.workers.len());
        for (i, (ours, theirs)) in bridged.workers.iter().zip(&snapshot.workers).enumerate() {
            assert_eq!(ours.worker, i);
            assert_eq!(ours.jobs_executed, theirs.jobs_executed);
            assert_eq!(ours.local_pushes, theirs.local_pushes);
            assert_eq!(ours.steal_attempts(), theirs.steal_attempts());
            assert_eq!(ours.injector_pops, theirs.injector_pops);
            assert_eq!(ours.parks, theirs.parks);
            assert_eq!(ours.wakes, theirs.wakes);
            assert_eq!(ours.deque_high_water, theirs.deque_high_water);
        }
    }

    #[test]
    fn empty_snapshots_leave_sched_null() {
        let metrics = Metrics::enabled();
        record_sched_snapshot(&metrics, &rayon::SchedSnapshot::default());
        assert!(metrics.snapshot().sched.is_none());
    }

    #[test]
    fn installed_pool_lands_in_metrics() {
        let metrics = Metrics::enabled();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool");
        pool.install(|| {
            let _ = rayon::join(|| (), || ());
            record_sched_stats(&metrics);
        });
        let sched = metrics.snapshot().sched.expect("sched recorded");
        assert_eq!(sched.workers.len(), 2);
        assert!(sched.workers.iter().any(|w| w.jobs_executed > 0));
    }
}
