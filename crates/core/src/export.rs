//! CSV export of every reproduced artifact's underlying data.
//!
//! The experiments binary prints text renderings; replotting the paper's
//! figures (in gnuplot / matplotlib / anything) needs the raw series.
//! [`export_all`] writes one tidy CSV per artifact into a directory.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::experiments::{
    ablation_binning, ablation_pruning, failure_tables, fig1, fig3, fig4, fig5, misc_tables,
    table1, underutilization_tables, RuleTable,
};
use crate::traces::TraceAnalysis;

fn write(dir: &Path, name: &str, content: &str) -> std::io::Result<PathBuf> {
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Escapes a CSV field (quotes fields containing separators).
fn field(text: &str) -> String {
    if text.contains(',') || text.contains('"') || text.contains('\n') {
        format!("\"{}\"", text.replace('"', "\"\""))
    } else {
        text.to_string()
    }
}

fn rule_table_csv(tables: &[RuleTable]) -> String {
    let mut out = String::from("table,tag,antecedent,consequent,support,confidence,lift\n");
    for table in tables {
        for (tag, ante, cons, supp, conf, lift) in &table.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{supp:.4},{conf:.4},{lift:.4}",
                field(&table.title),
                tag,
                field(ante),
                field(cons),
            );
        }
    }
    out
}

/// Writes every artifact's data as CSV; returns the files written.
pub fn export_all(traces: &[TraceAnalysis], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    // Table I.
    let t1 = table1(traces);
    let mut csv = String::from("trace,jobs,users,zero_sm_share,failed_share\n");
    for (name, jobs, users, zero, failed) in &t1.rows {
        let _ = writeln!(csv, "{name},{jobs},{users},{zero:.4},{failed:.4}");
    }
    written.push(write(dir, "table1_overview.csv", &csv)?);

    // Fig. 1.
    let f1 = fig1(traces, &[0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5]);
    let mut csv = String::from("trace,min_support,n_itemsets\n");
    for (name, counts) in &f1.series {
        for (s, c) in f1.supports.iter().zip(counts) {
            let _ = writeln!(csv, "{name},{s},{c}");
        }
    }
    written.push(write(dir, "fig1_itemsets_vs_support.csv", &csv)?);

    // Fig. 3.
    let f3 = fig3(traces);
    let mut csv = String::from("lift_band,before,after\n");
    for (band, before, after) in &f3.bands {
        let _ = writeln!(csv, "{},{before},{after}", field(band));
    }
    written.push(write(dir, "fig3_pruning_bands.csv", &csv)?);

    // Fig. 4: one CDF file per trace.
    let f4 = fig4(traces);
    for (name, _, cdf) in &f4.rows {
        let mut csv = String::from("sm_util,cdf\n");
        for (x, y) in cdf.points(100) {
            let _ = writeln!(csv, "{x:.4},{y:.4}");
        }
        written.push(write(dir, &format!("fig4_cdf_{name}.csv"), &csv)?);
    }

    // Fig. 5.
    let f5 = fig5(traces);
    let mut csv = String::from("trace,status,share\n");
    for (name, shares) in &f5.rows {
        for (status, share) in shares {
            let _ = writeln!(csv, "{name},{},{share:.4}", field(status));
        }
    }
    written.push(write(dir, "fig5_exit_status.csv", &csv)?);

    // Rule tables.
    written.push(write(
        dir,
        "tables2_3_4_underutilization.csv",
        &rule_table_csv(&underutilization_tables(traces)),
    )?);
    written.push(write(
        dir,
        "tables5_6_7_failures.csv",
        &rule_table_csv(&failure_tables(traces)),
    )?);
    written.push(write(
        dir,
        "table8_misc.csv",
        &rule_table_csv(&misc_tables(traces)),
    )?);

    // Ablations.
    let ab = ablation_binning(traces);
    let mut csv = String::from("scheme,itemsets,rules,keyword_rules_kept\n");
    for (scheme, itemsets, rules, kept) in &ab.rows {
        let _ = writeln!(csv, "{scheme},{itemsets},{rules},{kept}");
    }
    written.push(write(dir, "ablation_binning.csv", &csv)?);

    let ap = ablation_pruning(traces);
    let mut csv = String::from("c_margin,sm_kept,failed_kept\n");
    for (c, sm, failed) in &ap.rows {
        let _ = writeln!(csv, "{c},{sm},{failed}");
    }
    written.push(write(dir, "ablation_pruning.csv", &csv)?);

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{prepare_all, ExperimentScale};
    use crate::workflow::AnalysisConfig;
    use irma_data::read_csv_path;

    #[test]
    fn exports_parse_back_as_csv() {
        let scale = ExperimentScale {
            pai_jobs: 3_000,
            supercloud_jobs: 1_500,
            philly_jobs: 1_500,
            seed: 0xe5e5,
        };
        let traces = prepare_all(&scale, &AnalysisConfig::default());
        let dir = std::env::temp_dir().join(format!("irma_export_{}", std::process::id()));
        let files = export_all(&traces, &dir).unwrap();
        assert!(files.len() >= 10, "only {} files", files.len());
        for file in &files {
            let frame = read_csv_path(file)
                .unwrap_or_else(|e| panic!("{} unparseable: {e}", file.display()));
            assert!(frame.n_cols() >= 2, "{}", file.display());
        }
        // Spot-check a known series.
        let fig1 = read_csv_path(dir.join("fig1_itemsets_vs_support.csv")).unwrap();
        assert_eq!(fig1.n_rows(), 3 * 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
