//! Rule-based failure prediction on held-out traces.
//!
//! Operationalizes the paper's §IV-C takeaway — "a simple rule-based ...
//! classifier will suffice for prediction of job failures" on PAI, while
//! "more complex models such as neural networks will be needed" for
//! SuperCloud and Philly. The experiment trains a [`RuleClassifier`] on
//! one generated trace, then evaluates it on a *fresh* trace from the
//! same profile (different seed) encoded with the frozen training
//! preparation — no bin edges, frequency classes, or vocabulary are
//! re-fitted on evaluation data.

use irma_prep::fit;
use irma_rules::{Evaluation, RuleClassifier};
use irma_synth::TraceConfig;

use crate::report::TextTable;
use crate::specs::{pai_spec, philly_spec, supercloud_spec, KW_FAILED};
use crate::traces::{prepare, TraceAnalysis};

/// Outcome of one train/evaluate run.
#[derive(Debug, Clone)]
pub struct PredictionResult {
    /// Trace name.
    pub trace: String,
    /// Rules in the classifier's ordered list.
    pub n_rules: usize,
    /// Confidence threshold used for positive predictions.
    pub threshold: f64,
    /// Held-out confusion matrix.
    pub eval: Evaluation,
}

/// Trains on `t` and evaluates on a fresh same-profile trace.
///
/// The classifier is built from the *pruned* failure rule set (the same
/// rules a human reads in Tables V–VII), so every prediction is
/// explainable by one table row.
pub fn failure_prediction(
    t: &TraceAnalysis,
    heldout_jobs: usize,
    heldout_seed: u64,
    threshold: f64,
) -> PredictionResult {
    let keyword_id = t.analysis.item(KW_FAILED).expect("failure keyword present");
    let kept = t
        .analysis
        .keyword(KW_FAILED)
        .expect("failure keyword present")
        .outcome
        .kept;
    let classifier = RuleClassifier::train(&kept, keyword_id, threshold);

    let spec = match t.name {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => panic!("unknown trace `{other}`"),
    };
    // Freeze the preparation on the training frame; deterministic label
    // emission makes this catalog identical to the analysis' own.
    let fitted = fit(&t.merged, &spec);
    debug_assert_eq!(fitted.catalog().len(), t.analysis.encoded.catalog.len());

    let heldout = prepare(
        t.name,
        &TraceConfig {
            n_jobs: heldout_jobs,
            seed: heldout_seed,
            max_monitor_samples: 128,
        },
        &t.analysis.config,
    );
    let heldout_db = fitted.transform(&heldout.merged);
    let eval = classifier.evaluate(&heldout_db, threshold);
    PredictionResult {
        trace: t.name.to_string(),
        n_rules: classifier.rules().len(),
        threshold,
        eval,
    }
}

/// Runs failure prediction for every prepared trace and renders a table.
#[derive(Debug, Clone)]
pub struct PredictionExperiment {
    /// One row per trace.
    pub results: Vec<PredictionResult>,
}

/// Builds the prediction experiment (heldout size = 1/2 of training).
pub fn prediction_experiment(traces: &[TraceAnalysis], threshold: f64) -> PredictionExperiment {
    let results = traces
        .iter()
        .map(|t| {
            failure_prediction(
                t,
                (t.analysis.n_jobs() / 2).max(1_000),
                0x0eed ^ t.analysis.n_jobs() as u64,
                threshold,
            )
        })
        .collect();
    PredictionExperiment { results }
}

impl PredictionExperiment {
    /// Renders precision/recall/F1 vs the base failure rate.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "Trace",
            "Rules",
            "Thresh",
            "Precision",
            "Recall",
            "F1",
            "Base rate",
        ]);
        for r in &self.results {
            table.row([
                r.trace.clone(),
                r.n_rules.to_string(),
                format!("{:.2}", r.threshold),
                format!("{:.2}", r.eval.precision()),
                format!("{:.2}", r.eval.recall()),
                format!("{:.2}", r.eval.f1()),
                format!("{:.2}", r.eval.base_rate()),
            ]);
        }
        format!(
            "== P5: rule-based failure prediction on held-out traces ==\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::prepare;
    use crate::workflow::AnalysisConfig;

    #[test]
    fn pai_failures_predictable_by_rules() {
        let t = prepare(
            "pai",
            &TraceConfig {
                n_jobs: 6_000,
                seed: 0xabc,
                max_monitor_samples: 32,
            },
            &AnalysisConfig::default(),
        );
        let result = failure_prediction(&t, 3_000, 0xdef, 0.8);
        assert!(result.n_rules > 0, "no failure rules to classify with");
        // Paper claim: strong submission-time rules exist in PAI — held-out
        // precision must beat the base rate by a wide margin and recall
        // must be non-trivial.
        let e = &result.eval;
        assert!(
            e.precision() > 1.8 * e.base_rate(),
            "precision {:.2} vs base {:.2}",
            e.precision(),
            e.base_rate()
        );
        assert!(e.recall() > 0.3, "recall {:.2}", e.recall());
    }

    #[test]
    fn supercloud_rules_are_weaker_predictors() {
        let t = prepare(
            "supercloud",
            &TraceConfig {
                n_jobs: 6_000,
                seed: 0xabc,
                max_monitor_samples: 32,
            },
            &AnalysisConfig::default(),
        );
        let pai = prepare(
            "pai",
            &TraceConfig {
                n_jobs: 6_000,
                seed: 0xabc,
                max_monitor_samples: 32,
            },
            &AnalysisConfig::default(),
        );
        let sc = failure_prediction(&t, 3_000, 0xdef, 0.8);
        let pai_r = failure_prediction(&pai, 3_000, 0xdef, 0.8);
        // Paper: SuperCloud failure rules have low confidence (Table VI),
        // so at a high-precision threshold recall collapses relative to
        // PAI ("more complex models will be needed").
        assert!(
            sc.eval.recall() < pai_r.eval.recall(),
            "supercloud recall {:.2} >= pai recall {:.2}",
            sc.eval.recall(),
            pai_r.eval.recall()
        );
    }
}
