//! Natural-language rendering of mined rules.
//!
//! The paper's pitch is that association rules are *directly* readable by
//! operators. This module finishes the job: it turns a pruned keyword
//! analysis into the English sentences an operator would write in an
//! incident doc — "jobs that request the standard CPU count are 2.7x more
//! likely to be idle-GPU jobs (61% of them are; seen in 11% of jobs)".

use irma_mine::{ItemCatalog, ItemId};
use irma_rules::Rule;

use crate::workflow::Analysis;

/// Renders one itemset as a comma-separated phrase ("a, b and c").
fn phrase(catalog: &ItemCatalog, items: &[ItemId]) -> String {
    let labels: Vec<&str> = items.iter().map(|&i| catalog.label(i)).collect();
    match labels.len() {
        0 => String::new(),
        1 => labels[0].to_string(),
        n => format!("{} and {}", labels[..n - 1].join(", "), labels[n - 1]),
    }
}

/// One rule as an operator-readable sentence.
pub fn describe_rule(catalog: &ItemCatalog, rule: &Rule, keyword: ItemId) -> String {
    let lift = format!("{:.1}x", rule.lift);
    let conf = format!("{:.0}%", rule.confidence * 100.0);
    let supp = format!("{:.0}%", rule.support * 100.0);
    if rule.consequent.contains(keyword) {
        // Cause: antecedent predicts the keyword (+ any side findings).
        let side: Vec<ItemId> = rule
            .consequent
            .items()
            .iter()
            .copied()
            .filter(|&i| i != keyword)
            .collect();
        let side_note = if side.is_empty() {
            String::new()
        } else {
            format!(" (these jobs also show {})", phrase(catalog, &side))
        };
        format!(
            "Jobs with {} are {} more likely than average to end up as `{}`{}: {} of them do, covering {} of all jobs.",
            phrase(catalog, rule.antecedent.items()),
            lift,
            catalog.label(keyword),
            side_note,
            conf,
            supp,
        )
    } else {
        // Characteristic: the keyword (plus context) implies traits.
        let context: Vec<ItemId> = rule
            .antecedent
            .items()
            .iter()
            .copied()
            .filter(|&i| i != keyword)
            .collect();
        let context_note = if context.is_empty() {
            String::new()
        } else {
            format!(" that also have {}", phrase(catalog, &context))
        };
        format!(
            "`{}` jobs{} typically show {} ({} of them; {} lift; {} of all jobs).",
            catalog.label(keyword),
            context_note,
            phrase(catalog, rule.consequent.items()),
            conf,
            lift,
            supp,
        )
    }
}

/// The top operator insights for one keyword, as a bulleted report.
pub fn insight_report(analysis: &Analysis, keyword_label: &str, top: usize) -> String {
    let Some(keyword) = analysis.item(keyword_label) else {
        return format!("no insights: item `{keyword_label}` not present\n");
    };
    let Some(kw) = analysis.keyword(keyword_label) else {
        return format!("no insights: item `{keyword_label}` not present\n");
    };
    let catalog = &analysis.encoded.catalog;
    let mut out = format!("Insights for `{keyword_label}`:\n");
    if kw.causes.is_empty() && kw.characteristics.is_empty() {
        out.push_str("  (no rules survived filtering — try lower thresholds)\n");
        return out;
    }
    for rule in kw.causes.iter().take(top) {
        out.push_str("  * ");
        out.push_str(&describe_rule(catalog, rule, keyword));
        out.push('\n');
    }
    for rule in kw.characteristics.iter().take(top) {
        out.push_str("  * ");
        out.push_str(&describe_rule(catalog, rule, keyword));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{analyze, AnalysisConfig};
    use irma_data::read_csv_str;
    use irma_mine::Itemset;
    use irma_prep::{EncoderSpec, FeatureSpec, ZeroBin};

    #[test]
    fn cause_sentence_shape() {
        let mut catalog = ItemCatalog::new();
        let std_cpu = catalog.intern("CPU Request = Std");
        let idle = catalog.intern("SM Util = 0%");
        let freq = catalog.intern("Freq User");
        let rule = Rule {
            antecedent: Itemset::from_items([std_cpu]),
            consequent: Itemset::from_items([idle, freq]),
            support_count: 110,
            support: 0.11,
            confidence: 0.61,
            lift: 2.73,
        };
        let text = describe_rule(&catalog, &rule, idle);
        assert!(text.contains("CPU Request = Std"), "{text}");
        assert!(text.contains("2.7x"), "{text}");
        assert!(text.contains("61%"), "{text}");
        assert!(text.contains("also show Freq User"), "{text}");
    }

    #[test]
    fn characteristic_sentence_shape() {
        let mut catalog = ItemCatalog::new();
        let failed = catalog.intern("Failed");
        let long = catalog.intern("Runtime = Bin4");
        let cluster = catalog.intern("Cluster = C");
        let rule = Rule {
            antecedent: Itemset::from_items([failed, cluster]),
            consequent: Itemset::from_items([long]),
            support_count: 50,
            support: 0.05,
            confidence: 0.41,
            lift: 1.66,
        };
        let text = describe_rule(&catalog, &rule, failed);
        assert!(
            text.starts_with("`Failed` jobs that also have Cluster = C"),
            "{text}"
        );
        assert!(text.contains("Runtime = Bin4"), "{text}");
    }

    #[test]
    fn report_from_pipeline() {
        let mut csv = String::from("runtime,sm\n");
        for i in 0..40 {
            if i < 16 {
                csv.push_str("10,0.0\n");
            } else {
                csv.push_str(&format!("{},70.0\n", 5000 + i));
            }
        }
        let frame = read_csv_str(&csv).unwrap();
        let spec = EncoderSpec::new(vec![
            FeatureSpec::numeric("runtime", "Runtime"),
            FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
        ]);
        let analysis = analyze(&frame, &spec, &AnalysisConfig::default());
        let report = insight_report(&analysis, "SM Util = 0%", 3);
        assert!(report.contains("Insights for"), "{report}");
        assert!(report.contains("* "), "{report}");
        let missing = insight_report(&analysis, "Nope", 3);
        assert!(missing.contains("not present"));
    }
}
