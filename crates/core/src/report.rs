//! Plain-text rendering: aligned tables and small ASCII charts.
//!
//! The experiments binary prints every reproduced table and figure as
//! text; this module keeps that formatting in one place.

use crate::stats::{BoxStats, Cdf};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        let sep = format!(
            "|{}|",
            widths
                .iter()
                .map(|&w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a labelled horizontal bar chart (values in `[0, 1]`).
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, value) in rows {
        let filled = ((value.clamp(0.0, 1.0)) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{}{}| {:5.1}%\n",
            "#".repeat(filled),
            " ".repeat(width - filled),
            value * 100.0
        ));
    }
    out
}

/// Renders an ASCII box-plot line on a fixed axis `[lo, hi]`.
pub fn box_line(stats: &BoxStats, lo: f64, hi: f64, width: usize) -> String {
    assert!(hi > lo && width >= 10);
    let pos = |v: f64| {
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        (frac * (width - 1) as f64).round() as usize
    };
    let mut line: Vec<char> = vec![' '; width];
    let (w1, q1, med, q3, w2) = (
        pos(stats.min),
        pos(stats.q1),
        pos(stats.median),
        pos(stats.q3),
        pos(stats.max),
    );
    for cell in line.iter_mut().take(w2 + 1).skip(w1) {
        *cell = '-';
    }
    for cell in line.iter_mut().take(q3 + 1).skip(q1) {
        *cell = '=';
    }
    line[w1] = '|';
    line[w2] = '|';
    line[med] = 'M';
    line.into_iter().collect()
}

/// Renders a CDF as a fixed-size ASCII sketch plus headline quantiles.
pub fn cdf_sketch(cdf: &Cdf, label: &str) -> String {
    if cdf.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let pts = cdf.points(20);
    let mut out = format!(
        "{label}: n={} p0={:.1} p25={:.1} p50={:.1} p75={:.1} p100={:.1}\n  ",
        cdf.len(),
        cdf.quantile(0.0),
        cdf.quantile(0.25),
        cdf.quantile(0.5),
        cdf.quantile(0.75),
        cdf.quantile(1.0),
    );
    for (_, f) in pts {
        let c = match (f * 8.0) as usize {
            0 => ' ',
            1 => '.',
            2 | 3 => ':',
            4 | 5 => '+',
            6 | 7 => '*',
            _ => '#',
        };
        out.push(c);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["Rule", "Lift"]);
        t.row(["{a} => {b}", "1.50"]);
        t.row(["{longer antecedent} => {x}", "12.00"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{text}");
        assert!(text.contains("| Rule"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_row() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn bar_chart_scales() {
        let rows = vec![("pass".to_string(), 0.5), ("fail".to_string(), 1.0)];
        let text = bar_chart(&rows, 10);
        assert!(text.contains("|#####     |  50.0%"), "{text}");
        assert!(text.contains("|##########| 100.0%"), "{text}");
    }

    #[test]
    fn box_line_markers() {
        let stats = BoxStats {
            min: 0.0,
            q1: 2.5,
            median: 5.0,
            q3: 7.5,
            max: 10.0,
            mean: 5.0,
            n: 100,
        };
        let line = box_line(&stats, 0.0, 10.0, 21);
        assert_eq!(line.len(), 21);
        assert_eq!(line.chars().next(), Some('|'));
        assert_eq!(line.chars().last(), Some('|'));
        assert_eq!(line.chars().nth(10), Some('M'));
    }

    #[test]
    fn cdf_sketch_nonempty() {
        let cdf = Cdf::new(&(0..100).map(f64::from).collect::<Vec<_>>());
        let text = cdf_sketch(&cdf, "runtime");
        assert!(text.starts_with("runtime: n=100"));
        assert!(text.lines().count() == 2);
    }
}
