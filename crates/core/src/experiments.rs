//! Reproduction of every table and figure in the paper's evaluation.
//!
//! One function per artifact; each returns a typed result with a
//! `render()` method printing the same rows/series the paper reports.
//! DESIGN.md §4 maps the artifacts to these functions; EXPERIMENTS.md
//! records paper-vs-measured values.

use irma_mine::{fpgrowth, MinerConfig};
use irma_prep::BinningScheme;
use irma_rules::{KeywordAnalysis, PruneParams, Rule};

use crate::report::{bar_chart, box_line, cdf_sketch, TextTable};
use crate::specs::{pai_spec, KW_FAILED, KW_KILLED, KW_MULTI_GPU, KW_SM_ZERO};
use crate::stats::{BoxStats, Cdf};
use crate::traces::TraceAnalysis;
use crate::workflow::analyze;

/// Table I: overview of the (generated) traces.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows of (trace, jobs, users, zero-SM share, failed share).
    pub rows: Vec<(String, usize, usize, f64, f64)>,
}

/// Builds Table I from prepared traces.
pub fn table1(traces: &[TraceAnalysis]) -> Table1 {
    let rows = traces
        .iter()
        .map(|t| {
            let users = t
                .merged
                .column("user")
                .ok()
                .and_then(|c| c.as_strs().map(|s| s.cardinality()))
                .unwrap_or(0);
            (
                t.name.to_string(),
                t.bundle.n_jobs(),
                users,
                zero_sm_share(t),
                failed_share(t),
            )
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Renders the overview table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Trace", "Jobs", "Users", "0% SM share", "Failed share"]);
        for (name, jobs, users, zero, failed) in &self.rows {
            table.row([
                name.clone(),
                jobs.to_string(),
                users.to_string(),
                format!("{:.1}%", zero * 100.0),
                format!("{:.1}%", failed * 100.0),
            ]);
        }
        format!("== Table I: trace overview ==\n{}", table.render())
    }
}

/// Share of jobs with ~0% mean SM utilization.
pub fn zero_sm_share(t: &TraceAnalysis) -> f64 {
    let col = t.merged.column("sm_util").expect("sm_util present");
    let n = t.merged.n_rows();
    (0..n)
        .filter(|&i| col.numeric(i).is_some_and(|v| v <= 1.0))
        .count() as f64
        / n.max(1) as f64
}

/// Share of jobs whose status item equals the failure keyword.
pub fn failed_share(t: &TraceAnalysis) -> f64 {
    let col = t
        .merged
        .column("status")
        .expect("status present")
        .as_strs()
        .expect("status is categorical");
    let n = t.merged.n_rows();
    (0..n)
        .filter(|&i| matches!(col.get(i), Some("Failed") | Some("failed")))
        .count() as f64
        / n.max(1) as f64
}

/// Fig. 1: number of frequent itemsets vs minimum support.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Support levels swept.
    pub supports: Vec<f64>,
    /// Per trace: `(name, counts aligned with supports)`.
    pub series: Vec<(String, Vec<usize>)>,
}

/// Sweeps the support threshold and counts frequent itemsets per trace.
pub fn fig1(traces: &[TraceAnalysis], supports: &[f64]) -> Fig1 {
    let series = traces
        .iter()
        .map(|t| {
            let counts = supports
                .iter()
                .map(|&s| {
                    let config = MinerConfig {
                        min_support: s,
                        ..t.analysis.config.miner.clone()
                    };
                    fpgrowth(&t.analysis.encoded.db, &config).len()
                })
                .collect();
            (t.name.to_string(), counts)
        })
        .collect();
    Fig1 {
        supports: supports.to_vec(),
        series,
    }
}

impl Fig1 {
    /// Renders the sweep as a table (traces x supports).
    pub fn render(&self) -> String {
        let mut header = vec!["Trace".to_string()];
        header.extend(self.supports.iter().map(|s| format!("supp>={s:.2}")));
        let mut table = TextTable::new(header);
        for (name, counts) in &self.series {
            let mut row = vec![name.clone()];
            row.extend(counts.iter().map(|c| c.to_string()));
            table.row(row);
        }
        format!(
            "== Fig. 1: frequent itemsets vs minimum support ==\n{}",
            table.render()
        )
    }
}

/// Fig. 2: distribution of confidence and lift of keyword rules per trace.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Per trace: `(name, confidence stats, lift stats)` over the pruned
    /// GPU-underutilization rule set.
    pub rows: Vec<(String, Option<BoxStats>, Option<BoxStats>)>,
}

/// Builds Fig. 2 from the `SM Util = 0%` keyword analysis of each trace.
pub fn fig2(traces: &[TraceAnalysis]) -> Fig2 {
    let rows = traces
        .iter()
        .map(|t| {
            let (conf, lift) = match t.analysis.keyword(KW_SM_ZERO) {
                Some(kw) => {
                    let kept: Vec<&Rule> =
                        kw.causes.iter().chain(kw.characteristics.iter()).collect();
                    let confs: Vec<f64> = kept.iter().map(|r| r.confidence).collect();
                    let lifts: Vec<f64> = kept.iter().map(|r| r.lift).collect();
                    (BoxStats::new(&confs), BoxStats::new(&lifts))
                }
                None => (None, None),
            };
            (t.name.to_string(), conf, lift)
        })
        .collect();
    Fig2 { rows }
}

impl Fig2 {
    /// Renders both box plots.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig. 2: rule confidence & lift per trace ==\n");
        for (metric, pick) in [("confidence", 0usize), ("lift", 1usize)] {
            out.push_str(&format!("-- {metric} --\n"));
            let (lo, hi) = if pick == 0 { (0.0, 1.0) } else { (1.0, 12.0) };
            for (name, conf, lift) in &self.rows {
                let stats = if pick == 0 { conf } else { lift };
                match stats {
                    Some(s) => out.push_str(&format!(
                        "{name:<11} [{}] min={:.2} q1={:.2} med={:.2} q3={:.2} max={:.2} (n={})\n",
                        box_line(s, lo, hi, 40),
                        s.min,
                        s.q1,
                        s.median,
                        s.q3,
                        s.max,
                        s.n
                    )),
                    None => out.push_str(&format!("{name:<11} (no rules)\n")),
                }
            }
        }
        out
    }
}

/// Fig. 3: effect of pruning on the PAI GPU-underutilization rule set.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Keyword-relevant rules before pruning.
    pub before: usize,
    /// Rules surviving the four conditions.
    pub after: usize,
    /// `(lift band label, before count, after count)`.
    pub bands: Vec<(String, usize, usize)>,
}

/// Builds Fig. 3 from the PAI trace (first element with name "pai").
pub fn fig3(traces: &[TraceAnalysis]) -> Fig3 {
    let pai = traces
        .iter()
        .find(|t| t.name == "pai")
        .expect("fig3 needs the pai trace");
    let kw = pai
        .analysis
        .keyword(KW_SM_ZERO)
        .expect("SM Util = 0% item present in pai");
    let kept: Vec<&Rule> = kw.causes.iter().chain(kw.characteristics.iter()).collect();
    let removed: Vec<&Rule> = kw.outcome.pruned.iter().map(|p| &p.rule).collect();
    let edges = [1.5, 2.0, 3.0, 5.0, f64::INFINITY];
    let mut bands = Vec::new();
    let mut lo = 0.0f64;
    for &hi in &edges {
        let label = if hi.is_infinite() {
            format!("lift >= {lo:.1}")
        } else {
            format!("lift [{lo:.1}, {hi:.1})")
        };
        let count = |rules: &[&Rule]| rules.iter().filter(|r| r.lift >= lo && r.lift < hi).count();
        let after = count(&kept);
        let before = after + count(&removed);
        bands.push((label, before, after));
        lo = hi;
    }
    Fig3 {
        before: kw.n_before(),
        after: kw.n_kept(),
        bands,
    }
}

impl Fig3 {
    /// Renders the before/after summary.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Lift band", "Before pruning", "After pruning"]);
        for (label, before, after) in &self.bands {
            table.row([label.clone(), before.to_string(), after.to_string()]);
        }
        format!(
            "== Fig. 3: PAI rule pruning (keyword `{KW_SM_ZERO}`) ==\ntotal: {} -> {} rules ({:.1}x reduction)\n{}",
            self.before,
            self.after,
            self.before as f64 / self.after.max(1) as f64,
            table.render()
        )
    }
}

/// Fig. 4: CDF of mean GPU SM utilization per trace.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Per trace: `(name, zero share, CDF)`.
    pub rows: Vec<(String, f64, Cdf)>,
}

/// Builds Fig. 4.
pub fn fig4(traces: &[TraceAnalysis]) -> Fig4 {
    let rows = traces
        .iter()
        .map(|t| {
            let col = t.merged.column("sm_util").expect("sm_util present");
            let values: Vec<f64> = (0..t.merged.n_rows())
                .filter_map(|i| col.numeric(i))
                .collect();
            (t.name.to_string(), zero_sm_share(t), Cdf::new(&values))
        })
        .collect();
    Fig4 { rows }
}

impl Fig4 {
    /// Renders zero shares plus a CDF sketch per trace.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig. 4: CDF of GPU SM utilization ==\n");
        for (name, zero, cdf) in &self.rows {
            out.push_str(&format!("{name}: {:.1}% of jobs at ~0% SM\n", zero * 100.0));
            out.push_str(&cdf_sketch(cdf, name));
        }
        out
    }
}

/// Fig. 5: job exit status distribution per trace.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Per trace: `(name, Vec<(status, share)>)`.
    pub rows: Vec<(String, Vec<(String, f64)>)>,
}

/// Builds Fig. 5 from the raw status column.
pub fn fig5(traces: &[TraceAnalysis]) -> Fig5 {
    let rows = traces
        .iter()
        .map(|t| {
            let counts = t.merged.value_counts("status").expect("status present");
            let total: usize = counts.iter().map(|(_, c)| c).sum();
            let shares = counts
                .into_iter()
                .map(|(status, c)| (status, c as f64 / total.max(1) as f64))
                .collect();
            (t.name.to_string(), shares)
        })
        .collect();
    Fig5 { rows }
}

impl Fig5 {
    /// Renders one bar chart per trace.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig. 5: job exit status ==\n");
        for (name, shares) in &self.rows {
            out.push_str(&format!("-- {name} --\n"));
            out.push_str(&bar_chart(shares, 40));
        }
        out
    }
}

/// A rendered rule table (Tables II–VIII share this shape).
#[derive(Debug, Clone)]
pub struct RuleTable {
    /// Table title.
    pub title: String,
    /// The keyword analysed.
    pub keyword: String,
    /// The keyword analysis (pruned C/A rules).
    pub analysis: Option<KeywordAnalysis>,
    /// Rendered rows: `(tag, antecedent, consequent, supp, conf, lift)`.
    pub rows: Vec<(String, String, String, f64, f64, f64)>,
}

/// Builds a rule table for one keyword of one trace.
pub fn rule_table(t: &TraceAnalysis, title: &str, keyword: &str, top: usize) -> RuleTable {
    let analysis = t.analysis.keyword(keyword);
    let mut rows = Vec::new();
    if let Some(kw) = &analysis {
        let catalog = &t.analysis.encoded.catalog;
        for (prefix, rules) in [("C", &kw.causes), ("A", &kw.characteristics)] {
            for (i, rule) in rules.iter().take(top).enumerate() {
                rows.push((
                    format!("{prefix}{}", i + 1),
                    catalog.render(&rule.antecedent),
                    catalog.render(&rule.consequent),
                    rule.support,
                    rule.confidence,
                    rule.lift,
                ));
            }
        }
    }
    RuleTable {
        title: title.to_string(),
        keyword: keyword.to_string(),
        analysis,
        rows,
    }
}

impl RuleTable {
    /// Renders in the paper's table layout.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["", "Antecedent", "Consequent", "Supp.", "Conf.", "Lift"]);
        for (tag, ante, cons, supp, conf, lift) in &self.rows {
            table.row([
                tag.clone(),
                ante.clone(),
                cons.clone(),
                format!("{supp:.2}"),
                format!("{conf:.2}"),
                format!("{lift:.2}"),
            ]);
        }
        let counts = match &self.analysis {
            Some(kw) => format!("({} kept of {} keyword rules)", kw.n_kept(), kw.n_before()),
            None => "(keyword item not present)".to_string(),
        };
        format!(
            "== {} == keyword `{}` {}\n{}",
            self.title,
            self.keyword,
            counts,
            table.render()
        )
    }
}

/// Tables II / III / IV: GPU-underutilization rules per trace.
pub fn underutilization_tables(traces: &[TraceAnalysis]) -> Vec<RuleTable> {
    let titles = [
        ("pai", "Table II: GPU underutilization rules (PAI)"),
        (
            "supercloud",
            "Table III: GPU underutilization rules (SuperCloud)",
        ),
        ("philly", "Table IV: GPU underutilization rules (Philly)"),
    ];
    titles
        .iter()
        .filter_map(|(name, title)| {
            traces
                .iter()
                .find(|t| t.name == *name)
                .map(|t| rule_table(t, title, KW_SM_ZERO, 5))
        })
        .collect()
}

/// Tables V / VI / VII: job-failure rules per trace.
pub fn failure_tables(traces: &[TraceAnalysis]) -> Vec<RuleTable> {
    let titles = [
        ("pai", "Table V: job failure rules (PAI)"),
        ("supercloud", "Table VI: job failure rules (SuperCloud)"),
        ("philly", "Table VII: job failure rules (Philly)"),
    ];
    titles
        .iter()
        .filter_map(|(name, title)| {
            traces
                .iter()
                .find(|t| t.name == *name)
                .map(|t| rule_table(t, title, KW_FAILED, 6))
        })
        .collect()
}

/// Table VIII: trace-specific rules.
pub fn misc_tables(traces: &[TraceAnalysis]) -> Vec<RuleTable> {
    let mut out = Vec::new();
    if let Some(pai_t) = traces.iter().find(|t| t.name == "pai") {
        out.push(rule_table(
            pai_t,
            "Table VIII (PAI1/PAI2): queue wait by GPU type",
            "GPU Type = T4",
            3,
        ));
        out.push(rule_table(
            pai_t,
            "Table VIII (PAI2): non-T4 queue wait",
            "GPU Type = NonT4",
            3,
        ));
        // PAI3/PAI4 mine the model-labelled subset only (the paper filters
        // rows whose model is NaN before this analysis).
        let model_col = pai_t.merged.column("model").expect("model present");
        let labelled = pai_t.merged.filter(|i| !model_col.get(i).is_null());
        let model_analysis = analyze(&labelled, &pai_spec(), &pai_t.analysis.config);
        let fake = TraceAnalysis {
            name: "pai",
            bundle: pai_t.bundle.clone(),
            merged: labelled,
            analysis: model_analysis,
        };
        out.push(rule_table(
            &fake,
            "Table VIII (PAI3): recommender workloads",
            "Model = RecSys",
            3,
        ));
        out.push(rule_table(
            &fake,
            "Table VIII (PAI4): NLP workloads",
            "Model = NLP",
            3,
        ));
    }
    if let Some(sc) = traces.iter().find(|t| t.name == "supercloud") {
        out.push(rule_table(
            sc,
            "Table VIII (CIR1): killed jobs (SuperCloud)",
            KW_KILLED,
            3,
        ));
    }
    if let Some(ph) = traces.iter().find(|t| t.name == "philly") {
        out.push(rule_table(
            ph,
            "Table VIII (PHI1): multi-GPU jobs (Philly)",
            KW_MULTI_GPU,
            3,
        ));
    }
    out
}

/// Ablation (§III-E): equal-frequency vs equal-width binning on PAI.
#[derive(Debug, Clone)]
pub struct BinningAblation {
    /// `(scheme name, itemsets, rules, keyword rules kept)`.
    pub rows: Vec<(String, usize, usize, usize)>,
}

/// Runs the binning ablation on the PAI trace.
pub fn ablation_binning(traces: &[TraceAnalysis]) -> BinningAblation {
    let pai_t = traces
        .iter()
        .find(|t| t.name == "pai")
        .expect("binning ablation needs pai");
    let mut rows = Vec::new();
    for (label, scheme) in [
        ("equal-frequency", BinningScheme::EqualFrequency),
        ("equal-width", BinningScheme::EqualWidth),
    ] {
        let mut spec = pai_spec();
        for feature in &mut spec.features {
            if let irma_prep::FeatureSpec::Numeric { scheme: s, .. } = feature {
                *s = scheme;
            }
        }
        let analysis = analyze(&pai_t.merged, &spec, &pai_t.analysis.config);
        let kept = analysis
            .keyword(KW_SM_ZERO)
            .map(|kw| kw.n_kept())
            .unwrap_or(0);
        rows.push((
            label.to_string(),
            analysis.frequent.len(),
            analysis.rules.len(),
            kept,
        ));
    }
    BinningAblation { rows }
}

impl BinningAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Binning", "Itemsets", "Rules", "Keyword rules kept"]);
        for (name, itemsets, rules, kept) in &self.rows {
            table.row([
                name.clone(),
                itemsets.to_string(),
                rules.to_string(),
                kept.to_string(),
            ]);
        }
        format!("== Ablation: binning scheme (PAI) ==\n{}", table.render())
    }
}

/// Ablation (§III-E): number of bins vs rule quality.
///
/// The paper: "If the bin size is too small, the generated rules would
/// have low support. If the bin size is too large, the rules would have
/// low confidence and lift. We find the bin size of a quarter works
/// well." This sweep reproduces that trade-off.
#[derive(Debug, Clone)]
pub struct BinCountAblation {
    /// `(n_bins, itemsets, keyword rules kept, median support, median lift)`.
    pub rows: Vec<(usize, usize, usize, f64, f64)>,
}

/// Runs the bin-count sweep on the PAI trace.
pub fn ablation_bin_count(traces: &[TraceAnalysis]) -> BinCountAblation {
    let pai_t = traces
        .iter()
        .find(|t| t.name == "pai")
        .expect("bin-count ablation needs pai");
    let mut rows = Vec::new();
    for n_bins in [2usize, 4, 8, 16] {
        let mut spec = pai_spec();
        for feature in &mut spec.features {
            if let irma_prep::FeatureSpec::Numeric { n_bins: n, .. } = feature {
                *n = n_bins;
            }
        }
        let analysis = analyze(&pai_t.merged, &spec, &pai_t.analysis.config);
        let kw = analysis.keyword(KW_SM_ZERO);
        let kept: Vec<&Rule> = kw
            .iter()
            .flat_map(|k| k.causes.iter().chain(k.characteristics.iter()))
            .collect();
        let median = |mut xs: Vec<f64>| -> f64 {
            if xs.is_empty() {
                return 0.0;
            }
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        rows.push((
            n_bins,
            analysis.frequent.len(),
            kept.len(),
            median(kept.iter().map(|r| r.support).collect()),
            median(kept.iter().map(|r| r.lift).collect()),
        ));
    }
    BinCountAblation { rows }
}

impl BinCountAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "Bins",
            "Itemsets",
            "Keyword rules",
            "Median supp",
            "Median lift",
        ]);
        for (n_bins, itemsets, kept, supp, lift) in &self.rows {
            table.row([
                n_bins.to_string(),
                itemsets.to_string(),
                kept.to_string(),
                format!("{supp:.3}"),
                format!("{lift:.2}"),
            ]);
        }
        format!(
            "== Ablation: bin count (PAI; paper picks quartiles) ==\n{}",
            table.render()
        )
    }
}

/// Cross-trace rule-family overlap (§IV-A/IV-B): which pruned
/// GPU-underutilization rules appear, by label identity, in more than one
/// trace.
#[derive(Debug, Clone)]
pub struct CrossTraceOverlap {
    /// Pairwise `(left, right, common, only_left, only_right, jaccard)`.
    pub pairs: Vec<(String, String, usize, usize, usize, f64)>,
    /// Rendered rules found in *all* traces' kept sets.
    pub universal: Vec<String>,
}

/// Compares each pair of traces' pruned `SM Util = 0%` rules.
pub fn cross_trace_overlap(traces: &[TraceAnalysis]) -> CrossTraceOverlap {
    use irma_rules::{compare_rules, label_rules};
    let kept: Vec<(String, Vec<Rule>, &irma_mine::ItemCatalog)> = traces
        .iter()
        .map(|t| {
            let rules = t
                .analysis
                .keyword(KW_SM_ZERO)
                .map(|k| k.outcome.kept)
                .unwrap_or_default();
            (t.name.to_string(), rules, &t.analysis.encoded.catalog)
        })
        .collect();
    let mut pairs = Vec::new();
    for i in 0..kept.len() {
        for j in (i + 1)..kept.len() {
            let cmp = compare_rules(&kept[i].1, kept[i].2, &kept[j].1, kept[j].2);
            pairs.push((
                kept[i].0.clone(),
                kept[j].0.clone(),
                cmp.common.len(),
                cmp.only_left.len(),
                cmp.only_right.len(),
                cmp.jaccard(),
            ));
        }
    }
    // Rules appearing in every trace.
    let mut universal = Vec::new();
    if kept.len() >= 2 {
        let first = label_rules(&kept[0].1, kept[0].2);
        'outer: for rule in first {
            for (_, rules, catalog) in &kept[1..] {
                let labeled = label_rules(rules, catalog);
                if !labeled
                    .iter()
                    .any(|r| r.antecedent == rule.antecedent && r.consequent == rule.consequent)
                {
                    continue 'outer;
                }
            }
            universal.push(rule.render());
        }
    }
    CrossTraceOverlap { pairs, universal }
}

impl CrossTraceOverlap {
    /// Renders the pairwise overlap table plus universal rules.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "Left",
            "Right",
            "Common",
            "Only left",
            "Only right",
            "Jaccard",
        ]);
        for (l, r, common, ol, or, j) in &self.pairs {
            table.row([
                l.clone(),
                r.clone(),
                common.to_string(),
                ol.to_string(),
                or.to_string(),
                format!("{j:.3}"),
            ]);
        }
        let mut out = format!(
            "== Cross-trace rule overlap (keyword `{KW_SM_ZERO}`) ==\n{}",
            table.render()
        );
        out.push_str(&format!(
            "rules kept in all {} traces: {}\n",
            self.pairs.len().min(3),
            self.universal.len()
        ));
        for rule in self.universal.iter().take(5) {
            out.push_str(&format!("  {rule}\n"));
        }
        out
    }
}

/// Ablation (§III-D): pruning aggressiveness vs rule count.
#[derive(Debug, Clone)]
pub struct PruningAblation {
    /// `(C value, kept for SM keyword, kept for Failed keyword)`; C = 1.0
    /// row approximates "minimal margins", larger C prunes more.
    pub rows: Vec<(f64, usize, usize)>,
    /// Keyword-relevant rule counts before pruning (SM, Failed).
    pub before: (usize, usize),
}

/// Runs the pruning ablation on the PAI trace.
pub fn ablation_pruning(traces: &[TraceAnalysis]) -> PruningAblation {
    let pai_t = traces
        .iter()
        .find(|t| t.name == "pai")
        .expect("pruning ablation needs pai");
    let analysis = &pai_t.analysis;
    let kw_for = |label: &str, c: f64| {
        let id = analysis.item(label).expect("keyword present");
        KeywordAnalysis::run(
            &analysis.rules,
            id,
            &PruneParams {
                c_lift: c,
                c_supp: c,
            },
        )
    };
    let before = (
        kw_for(KW_SM_ZERO, 1.0).n_before(),
        kw_for(KW_FAILED, 1.0).n_before(),
    );
    let rows = [1.0, 1.25, 1.5, 2.0, 3.0]
        .iter()
        .map(|&c| {
            (
                c,
                kw_for(KW_SM_ZERO, c).n_kept(),
                kw_for(KW_FAILED, c).n_kept(),
            )
        })
        .collect();
    PruningAblation { rows, before }
}

impl PruningAblation {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["C_lift = C_supp", "SM kept", "Failed kept"]);
        for (c, sm, failed) in &self.rows {
            table.row([format!("{c:.2}"), sm.to_string(), failed.to_string()]);
        }
        format!(
            "== Ablation: pruning margins (PAI; before pruning: SM={}, Failed={}) ==\n{}",
            self.before.0,
            self.before.1,
            table.render()
        )
    }
}

/// Runs every artifact and concatenates the rendered output in paper order.
pub fn run_all(traces: &[TraceAnalysis]) -> String {
    let mut out = String::new();
    out.push_str(&table1(traces).render());
    out.push('\n');
    out.push_str(&fig1(traces, &[0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5]).render());
    out.push('\n');
    out.push_str(&fig2(traces).render());
    out.push('\n');
    out.push_str(&fig3(traces).render());
    out.push('\n');
    out.push_str(&fig4(traces).render());
    out.push('\n');
    out.push_str(&fig5(traces).render());
    out.push('\n');
    for table in underutilization_tables(traces) {
        out.push_str(&table.render());
        out.push('\n');
    }
    for table in failure_tables(traces) {
        out.push_str(&table.render());
        out.push('\n');
    }
    for table in misc_tables(traces) {
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&ablation_binning(traces).render());
    out.push('\n');
    out.push_str(&ablation_bin_count(traces).render());
    out.push('\n');
    out.push_str(&ablation_pruning(traces).render());
    out.push('\n');
    out.push_str(&cross_trace_overlap(traces).render());
    out.push('\n');
    out.push_str(&crate::predict::prediction_experiment(traces, 0.8).render());
    out.push('\n');
    out.push_str("== Operator insights (top rules, rendered) ==\n");
    for t in traces {
        out.push_str(&format!("-- {} --\n", t.name));
        out.push_str(&crate::insights::insight_report(&t.analysis, KW_SM_ZERO, 3));
        out.push_str(&crate::insights::insight_report(&t.analysis, KW_FAILED, 3));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{prepare_all, ExperimentScale};
    use crate::workflow::AnalysisConfig;

    fn traces() -> [TraceAnalysis; 3] {
        prepare_all(&ExperimentScale::tiny(), &AnalysisConfig::default())
    }

    #[test]
    fn full_run_produces_all_sections() {
        let traces = traces();
        let text = run_all(&traces);
        for section in [
            "Table I",
            "Fig. 1",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Table VI",
            "Table VII",
            "Table VIII",
            "Ablation: binning",
            "Ablation: pruning",
        ] {
            assert!(text.contains(section), "missing section {section}");
        }
    }

    #[test]
    fn fig1_counts_decrease_with_support() {
        let traces = traces();
        let f = fig1(&traces, &[0.05, 0.2, 0.5]);
        for (name, counts) in &f.series {
            assert!(
                counts.windows(2).all(|w| w[0] >= w[1]),
                "{name}: {counts:?} not monotone"
            );
            assert!(counts[0] > 0, "{name}: nothing mined at 5%");
        }
        // PAI has the most features/entries -> the most itemsets (paper
        // ordering PAI >> SuperCloud, Philly).
        let get = |n: &str| {
            f.series
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, c)| c[0])
                .unwrap()
        };
        assert!(get("pai") > get("philly"));
    }

    #[test]
    fn fig3_pruning_reduces_rules() {
        let traces = traces();
        let f = fig3(&traces);
        assert!(f.before > f.after);
        assert!(f.after > 0);
        for (_, before, after) in &f.bands {
            assert!(before >= after);
        }
    }

    #[test]
    fn fig4_zero_shares_ordered_like_paper() {
        let traces = traces();
        let f = fig4(&traces);
        let share = |n: &str| {
            f.rows
                .iter()
                .find(|(name, _, _)| name == n)
                .map(|(_, z, _)| *z)
                .unwrap()
        };
        // Paper: PAI 46% > Philly 35% > SuperCloud 10%.
        assert!(share("pai") > share("philly"));
        assert!(share("philly") > share("supercloud"));
    }

    #[test]
    fn fig5_killed_only_in_sc_and_philly() {
        let traces = traces();
        let f = fig5(&traces);
        let statuses = |n: &str| -> Vec<String> {
            f.rows
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, s)| s.iter().map(|(st, _)| st.clone()).collect())
                .unwrap()
        };
        assert!(!statuses("pai")
            .iter()
            .any(|s| s.to_lowercase().contains("kill")));
        assert!(statuses("supercloud").iter().any(|s| s == "killed"));
        assert!(statuses("philly").iter().any(|s| s == "Killed"));
    }

    #[test]
    fn bin_count_tradeoff_shape() {
        let traces = traces();
        let ab = ablation_bin_count(&traces);
        assert_eq!(ab.rows.len(), 4);
        // The paper's trade-off at a fixed support threshold: thin bins
        // have low per-item support (fewer frequent itemsets, lower rule
        // support), coarse bins wash out associations (lower lift).
        let by_bins: std::collections::HashMap<usize, (f64, f64)> = ab
            .rows
            .iter()
            .map(|&(n, _, _, supp, lift)| (n, (supp, lift)))
            .collect();
        assert!(
            by_bins[&16].0 <= by_bins[&2].0 + 1e-9,
            "median support should shrink with more bins: {:?}",
            ab.rows
        );
        assert!(
            by_bins[&16].1 >= by_bins[&2].1 - 1e-9,
            "median lift should grow with more bins: {:?}",
            ab.rows
        );
    }

    #[test]
    fn cross_trace_overlap_reports_pairs() {
        let traces = traces();
        let overlap = cross_trace_overlap(&traces);
        assert_eq!(overlap.pairs.len(), 3);
        for (_, _, _, _, _, j) in &overlap.pairs {
            assert!((0.0..=1.0).contains(j));
        }
        // Trace-specific items (GPU Power, Min SM Util, Freq Group) make
        // cross-trace families mostly disjoint — exactly the paper's
        // "system-specific insights" point.
        assert!(overlap.pairs.iter().all(|p| p.5 < 0.5));
    }

    #[test]
    fn rule_tables_have_rows() {
        let traces = traces();
        for table in underutilization_tables(&traces) {
            assert!(!table.rows.is_empty(), "{}: no rules survived", table.title);
        }
        for table in failure_tables(&traces) {
            assert!(!table.rows.is_empty(), "{}: no rules survived", table.title);
        }
    }
}
