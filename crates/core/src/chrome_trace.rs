//! Chrome `trace_event` export for the live JSONL trace logs.
//!
//! The metrics registry streams `span_open` / `span_close` / `counter`
//! events as JSONL while a run executes (`--trace-log`). This module
//! converts such a log into the Chrome trace-event format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//!
//! * every `span_close` becomes a complete (`"ph":"X"`) event whose
//!   start is `offset_us - wall_us` — spans land on per-worker lanes
//!   (`tid`) when they carry a `worker` field (parallel mining spans
//!   do), and on the `main` lane otherwise;
//! * every `counter` event becomes a `"ph":"C"` counter sample, so
//!   prune/stream counters plot as time series under the lanes;
//! * each distinct `run` id maps to one process (`pid`), with
//!   `process_name` / `thread_name` metadata naming runs and lanes.
//!
//! The workspace builds offline (no serde), so parsing is a small
//! recursive-descent JSON reader, strict about malformed lines: a trace
//! log is machine-written, and a line that does not parse means the log
//! is truncated or corrupt — better a hard error naming the line than a
//! silently incomplete timeline.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep `f64` (the trace schema only emits
/// unsigned integers small enough for exact representation).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogates never appear in trace logs
                            // (the writer escapes control chars only);
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(&format!("bad number `{text}`")))
    }
}

/// Parses one complete JSON document (trailing garbage is an error).
fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------

/// Escapes a string for embedding in the generated JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `tid` assigned to events that carry no `worker` field: the run's
/// coordinating thread. Worker `w` gets lane `w + 1`.
const MAIN_LANE: u64 = 0;

/// Converts a JSONL trace log (the `--trace-log` output) into Chrome
/// `trace_event` JSON (`{"traceEvents":[...]}`).
///
/// Mapping: each distinct `run` id becomes a process (`pid`, in order of
/// first appearance); `span_close` events become complete (`"X"`) slices
/// on the lane of their `worker` field (lane 0 = `main` otherwise);
/// `counter` events become `"C"` samples carrying their running total.
/// `span_open` events only assert well-formedness — their close twin
/// carries the interval.
///
/// Errors name the offending line: trace logs are machine-written, so a
/// malformed line means truncation or corruption, not style.
pub fn chrome_trace(jsonl: &str) -> Result<String, String> {
    let mut runs: Vec<String> = Vec::new();
    let mut lanes: Vec<(u64, u64)> = Vec::new();
    let mut events: Vec<String> = Vec::new();

    for (index, line) in jsonl.lines().enumerate() {
        let lineno = index + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let fail = |what: &str| format!("line {lineno}: {what}");

        // Shared envelope.
        let kind = event
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `event`"))?;
        let run = event
            .get("run")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `run`"))?;
        let offset_us = event
            .get("offset_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing integer `offset_us`"))?;
        event
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing integer `seq`"))?;

        let pid = match runs.iter().position(|r| r == run) {
            Some(i) => i as u64 + 1,
            None => {
                runs.push(run.to_string());
                runs.len() as u64
            }
        };
        let mut lane = |tid: u64| {
            if !lanes.contains(&(pid, tid)) {
                lanes.push((pid, tid));
            }
        };

        match kind {
            "span_open" => {
                // The interval lives on the close event; opens only
                // prove the log is well-formed this far.
                event
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("span_open without integer `span`"))?;
            }
            "span_close" => {
                let span = event
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("span_close without integer `span`"))?;
                let stage = event
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("span_close without string `stage`"))?;
                let wall_us = event
                    .get("wall_us")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("span_close without integer `wall_us`"))?;
                let fields = match event.get("fields") {
                    Some(Json::Obj(entries)) => entries.as_slice(),
                    Some(_) => return Err(fail("span_close `fields` is not an object")),
                    None => &[],
                };
                let tid = fields
                    .iter()
                    .find_map(|(k, v)| (k == "worker").then(|| v.as_u64()).flatten())
                    .map_or(MAIN_LANE, |w| w + 1);
                lane(tid);
                let mut args = format!("\"span\":{span}");
                for (key, value) in fields {
                    if let Some(n) = value.as_u64() {
                        let _ = write!(args, ",\"{}\":{n}", escape(key));
                    }
                }
                events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{wall_us},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                    escape(stage),
                    offset_us.saturating_sub(wall_us),
                ));
            }
            "counter" => {
                let name = event
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("counter without string `name`"))?;
                let total = event
                    .get("total")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("counter without integer `total`"))?;
                lane(MAIN_LANE);
                events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{offset_us},\
                     \"pid\":{pid},\"tid\":{MAIN_LANE},\"args\":{{\"value\":{total}}}}}",
                    escape(name),
                ));
            }
            other => return Err(fail(&format!("unknown event kind `{other}`"))),
        }
    }

    // Metadata first: viewers apply process/thread names regardless of
    // position, but leading metadata keeps the file skimmable.
    let mut out = Vec::with_capacity(events.len() + runs.len() + lanes.len());
    for (i, run) in runs.iter().enumerate() {
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\
             \"args\":{{\"name\":\"run {}\"}}}}",
            i as u64 + 1,
            escape(run)
        ));
    }
    lanes.sort_unstable();
    for &(pid, tid) in &lanes {
        let label = if tid == MAIN_LANE {
            "main".to_string()
        } else {
            format!("worker {}", tid - 1)
        };
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    out.extend(events);

    if out.is_empty() {
        return Ok("{\"traceEvents\":[]}\n".to_string());
    }
    Ok(format!("{{\"traceEvents\":[\n{}\n]}}\n", out.join(",\n")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_obs::{EventSink, Metrics};

    /// Renders a real trace log via the registry's event sink.
    fn sample_log() -> String {
        let (sink, buffer) = EventSink::shared_buffer();
        let metrics = Metrics::enabled().with_event_sink(sink);
        {
            let mut outer = metrics.span("prep.fit");
            outer.field("rows_in", 20);
            {
                let mut inner = metrics.span("mine.item");
                inner.field("worker", 2);
            }
        }
        metrics.incr("prune.condition1", 3);
        let bytes = buffer.lock().expect("buffer").clone();
        String::from_utf8(bytes).expect("utf8 log")
    }

    #[test]
    fn json_parser_round_trips_trace_lines() {
        let value = parse_json(
            r#"{"event":"span_close","run":"ab","seq":3,"offset_us":480,"span":1,"stage":"p","wall_us":468,"fields":{"rows_in":20}}"#,
        )
        .expect("parses");
        assert_eq!(value.get("seq").and_then(Json::as_u64), Some(3));
        assert_eq!(
            value.get("event").and_then(Json::as_str),
            Some("span_close")
        );
        assert_eq!(
            value
                .get("fields")
                .and_then(|f| f.get("rows_in"))
                .and_then(Json::as_u64),
            Some(20)
        );
        // Escapes, arrays, literals.
        let value = parse_json(r#"{"a":"x\"yA","b":[1,null,true],"c":-2.5}"#).expect("parses");
        assert_eq!(value.get("a").and_then(Json::as_str), Some("x\"yA"));
        assert_eq!(
            value.get("b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Null,
                Json::Bool(true)
            ]))
        );
        assert_eq!(value.get("c"), Some(&Json::Num(-2.5)));
        // Malformed documents are errors, not partial values.
        assert!(parse_json("{\"a\":1").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn spans_become_complete_events_on_worker_lanes() {
        let rendered = chrome_trace(&sample_log()).expect("converts");
        // Structure: one traceEvents array, balanced braces.
        assert!(rendered.starts_with("{\"traceEvents\":[\n"));
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
        // The worker-tagged span lands on lane worker+1; the outer span
        // (no worker field) on the main lane.
        assert!(
            rendered.contains("\"name\":\"mine.item\",\"ph\":\"X\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"tid\":3"), "{rendered}");
        assert!(
            rendered.contains("\"name\":\"prep.fit\",\"ph\":\"X\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"rows_in\":20"), "{rendered}");
        // The counter becomes a "C" sample carrying its running total.
        assert!(
            rendered.contains("\"name\":\"prune.condition1\",\"ph\":\"C\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"args\":{\"value\":3}"), "{rendered}");
        // Metadata names the run's process and both lanes.
        assert!(rendered.contains("\"name\":\"process_name\""), "{rendered}");
        assert!(rendered.contains("\"name\":\"thread_name\""), "{rendered}");
        assert!(rendered.contains("\"name\":\"main\""), "{rendered}");
        assert!(rendered.contains("\"name\":\"worker 2\""), "{rendered}");
    }

    #[test]
    fn ts_is_offset_minus_wall() {
        let log = concat!(
            r#"{"event":"span_open","run":"r","seq":0,"offset_us":100,"span":1,"parent":null,"stage":"s"}"#,
            "\n",
            r#"{"event":"span_close","run":"r","seq":1,"offset_us":480,"span":1,"stage":"s","wall_us":380,"fields":{}}"#,
            "\n",
        );
        let rendered = chrome_trace(log).expect("converts");
        assert!(rendered.contains("\"ts\":100,\"dur\":380"), "{rendered}");
    }

    #[test]
    fn distinct_runs_get_distinct_pids() {
        let log = concat!(
            r#"{"event":"counter","run":"one","seq":0,"offset_us":5,"name":"a","by":1,"total":1}"#,
            "\n",
            r#"{"event":"counter","run":"two","seq":0,"offset_us":9,"name":"a","by":2,"total":2}"#,
            "\n",
        );
        let rendered = chrome_trace(log).expect("converts");
        assert!(rendered.contains("\"name\":\"run one\""), "{rendered}");
        assert!(rendered.contains("\"name\":\"run two\""), "{rendered}");
        assert!(rendered.contains("\"pid\":1"), "{rendered}");
        assert!(rendered.contains("\"pid\":2"), "{rendered}");
    }

    #[test]
    fn malformed_lines_are_hard_errors_naming_the_line() {
        let garbage = "{\"event\":\"counter\"}\n";
        let err = chrome_trace(garbage).expect_err("missing envelope");
        assert!(err.starts_with("line 1:"), "{err}");

        let truncated = concat!(
            r#"{"event":"counter","run":"r","seq":0,"offset_us":5,"name":"a","by":1,"total":1}"#,
            "\n",
            r#"{"event":"counter","run":"r","seq":1,"off"#,
        );
        let err = chrome_trace(truncated).expect_err("truncated line");
        assert!(err.starts_with("line 2:"), "{err}");

        let unknown = r#"{"event":"meteor","run":"r","seq":0,"offset_us":5}"#;
        let err = chrome_trace(unknown).expect_err("unknown kind");
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn empty_log_is_an_empty_timeline() {
        assert_eq!(chrome_trace("").unwrap(), "{\"traceEvents\":[]}\n");
        assert_eq!(chrome_trace("\n\n").unwrap(), "{\"traceEvents\":[]}\n");
    }
}
