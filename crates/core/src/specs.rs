//! Per-trace encoder specifications.
//!
//! These are the data-engineering decisions of §III-E made concrete for
//! each trace: which columns are analysed, which get zero/spike bins,
//! which categorical values are aggregated, and which id columns get
//! frequency classes. Keyword label constants used throughout the case
//! studies are exported alongside.

use irma_prep::{EncoderSpec, FeatureSpec, SpikeBin, ZeroBin};

/// Keyword: jobs with ~0% mean SM utilization (§IV-B).
pub const KW_SM_ZERO: &str = "SM Util = 0%";
/// Keyword: failed jobs (§IV-C).
pub const KW_FAILED: &str = "Failed";
/// Keyword: user-killed jobs (Table VIII CIR1).
pub const KW_KILLED: &str = "Job Killed";
/// Keyword: multi-GPU jobs (Table VII / VIII).
pub const KW_MULTI_GPU: &str = "Multi-GPU";

/// Bare-label categorical helper (status-style items).
fn bare_categorical<const N: usize>(column: &str, pairs: [(&str, &str); N]) -> FeatureSpec {
    FeatureSpec::categorical_remap(column, "", pairs)
}

/// Encoder spec for the PAI profile (columns of
/// [`irma_synth::pai`]'s merged frame).
pub fn pai_spec() -> EncoderSpec {
    EncoderSpec::new(vec![
        FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent()),
        FeatureSpec::numeric_zero("gmem_used_gb", "GMem Used", ZeroBin::gigabytes()),
        FeatureSpec::numeric_zero("cpu_util", "CPU Util", ZeroBin::percent()),
        FeatureSpec::numeric("mem_used_gb", "Memory Used"),
        FeatureSpec::numeric("runtime_s", "Runtime"),
        FeatureSpec::numeric("queue_s", "Queue"),
        FeatureSpec::numeric("gpu_request", "GPU Request"),
        FeatureSpec::Numeric {
            column: "cpu_request".to_string(),
            display: "CPU Request".to_string(),
            n_bins: 4,
            scheme: Default::default(),
            zero: None,
            spike: Some(SpikeBin::default()),
        },
        FeatureSpec::Numeric {
            column: "mem_request_gb".to_string(),
            display: "Mem Request".to_string(),
            n_bins: 4,
            scheme: Default::default(),
            zero: None,
            spike: Some(SpikeBin::default()),
        },
        // P100/V100 have low individual support; the paper aggregates them
        // as "non-T4".
        FeatureSpec::categorical_remap(
            "gpu_type_req",
            "GPU Type",
            [("P100", "NonT4"), ("V100", "NonT4")],
        ),
        FeatureSpec::categorical_remap(
            "framework",
            "",
            [
                ("tensorflow", "Tensorflow"),
                ("pytorch", "PyTorch"),
                ("xdl", "XDL"),
                ("graphlearn", "GraphLearn"),
            ],
        ),
        FeatureSpec::categorical_remap(
            "model",
            "Model",
            [
                ("resnet", "CV"),
                ("vgg", "CV"),
                ("inception", "CV"),
                ("bert", "NLP"),
                ("nmt", "NLP"),
                ("xlnet", "NLP"),
                ("din", "RecSys"),
                ("dien", "RecSys"),
                ("deepfm", "RecSys"),
            ],
        ),
        bare_categorical(
            "status",
            [("Failed", "Failed"), ("Terminated", "Terminated")],
        ),
        FeatureSpec::frequency("user", "Freq User", "New User"),
        FeatureSpec::frequency("group", "Freq Group", "Rare Group"),
        FeatureSpec::flag("num_inst", "Multiple Tasks", 1.0),
    ])
}

/// Encoder spec for the SuperCloud profile.
pub fn supercloud_spec() -> EncoderSpec {
    EncoderSpec::new(vec![
        FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent()),
        FeatureSpec::numeric("sm_util_var", "SM Util Var"),
        FeatureSpec::numeric("gmem_util", "GMem Util"),
        FeatureSpec::numeric("gmem_util_var", "GMem Util Var"),
        FeatureSpec::numeric("gmem_used_gb", "GMem Used"),
        FeatureSpec::numeric("gpu_power_w", "GPU Power"),
        FeatureSpec::numeric("cpu_util", "CPU Util"),
        FeatureSpec::numeric("mem_used_gb", "Memory Used"),
        FeatureSpec::numeric("runtime_s", "Runtime"),
        FeatureSpec::numeric("cpus", "CPU Request"),
        bare_categorical(
            "status",
            [
                ("failed", "Failed"),
                ("killed", "Job Killed"),
                ("completed", "Completed"),
            ],
        ),
        FeatureSpec::frequency("user", "Freq User", "New User"),
        FeatureSpec::flag("gpus", "Multi-GPU", 1.0),
    ])
}

/// Encoder spec for the Philly profile.
pub fn philly_spec() -> EncoderSpec {
    EncoderSpec::new(vec![
        FeatureSpec::numeric_zero("sm_util", "SM Util", ZeroBin::percent()),
        FeatureSpec::numeric_zero(
            "sm_util_min",
            "Min SM Util",
            ZeroBin {
                threshold: 0.5,
                label: "0%".to_string(),
            },
        ),
        FeatureSpec::numeric("sm_util_max", "Max SM Util"),
        FeatureSpec::numeric("cpu_util", "CPU Util"),
        FeatureSpec::numeric("mem_used_gb", "Memory Used"),
        FeatureSpec::numeric("runtime_s", "Runtime"),
        bare_categorical(
            "status",
            [
                ("Failed", "Failed"),
                ("Killed", "Job Killed"),
                ("Pass", "Pass"),
            ],
        ),
        FeatureSpec::frequency("user", "Freq User", "New User"),
        FeatureSpec::categorical("vc", "VC"),
        FeatureSpec::flag("gpus", "Multi-GPU", 1.0),
        FeatureSpec::flag("attempts", "Num Attempts > 1", 1.0),
        FeatureSpec::flag("gpu_mem_gb", "GPU 24GB Mem", 12.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_expected_columns() {
        let pai = pai_spec();
        let cols: Vec<&str> = pai.features.iter().map(|f| f.column()).collect();
        for col in [
            "sm_util",
            "gmem_used_gb",
            "cpu_request",
            "gpu_type_req",
            "user",
            "group",
        ] {
            assert!(cols.contains(&col), "pai spec missing {col}");
        }
        let sc = supercloud_spec();
        let cols: Vec<&str> = sc.features.iter().map(|f| f.column()).collect();
        for col in ["sm_util_var", "gmem_util", "gpu_power_w"] {
            assert!(cols.contains(&col), "supercloud spec missing {col}");
        }
        let ph = philly_spec();
        let cols: Vec<&str> = ph.features.iter().map(|f| f.column()).collect();
        for col in ["sm_util_min", "attempts", "gpu_mem_gb"] {
            assert!(cols.contains(&col), "philly spec missing {col}");
        }
    }
}
