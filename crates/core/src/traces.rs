//! One-call preparation of a trace: generate -> merge -> analyze.

use irma_data::Frame;
use irma_synth::{pai, philly, supercloud, TraceBundle, TraceConfig};

use crate::specs::{pai_spec, philly_spec, supercloud_spec};
use crate::workflow::{analyze, Analysis, AnalysisConfig};

/// A fully prepared trace: the generated bundle, the merged frame, and the
/// completed workflow run.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Trace name (`"pai"`, `"supercloud"`, `"philly"`).
    pub name: &'static str,
    /// The generated scheduler + monitoring files.
    pub bundle: TraceBundle,
    /// The joined per-job frame.
    pub merged: Frame,
    /// The workflow output (encoded transactions, itemsets, rules).
    pub analysis: Analysis,
}

/// Job counts and seed for a full three-trace experiment run.
///
/// Defaults reproduce the paper's *relative* scale (PAI ~8.5x the others)
/// at a size that runs in seconds; pass larger counts for full-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// PAI job count.
    pub pai_jobs: usize,
    /// SuperCloud job count.
    pub supercloud_jobs: usize,
    /// Philly job count.
    pub philly_jobs: usize,
    /// Shared RNG seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> ExperimentScale {
        ExperimentScale {
            pai_jobs: 85_000,
            supercloud_jobs: 10_000,
            philly_jobs: 10_000,
            seed: 0xdcc0,
        }
    }
}

impl ExperimentScale {
    /// A scale small enough for debug-build tests.
    pub fn tiny() -> ExperimentScale {
        ExperimentScale {
            pai_jobs: 8_000,
            supercloud_jobs: 4_000,
            philly_jobs: 4_000,
            seed: 0xdcc0,
        }
    }
}

/// Generates and analyses one trace by name.
pub fn prepare(
    name: &str,
    trace_config: &TraceConfig,
    analysis_config: &AnalysisConfig,
) -> TraceAnalysis {
    let (bundle, spec) = match name {
        "pai" => (pai(trace_config), pai_spec()),
        "supercloud" => (supercloud(trace_config), supercloud_spec()),
        "philly" => (philly(trace_config), philly_spec()),
        other => panic!("unknown trace `{other}`"),
    };
    let merged = bundle.merged();
    let analysis = analyze(&merged, &spec, analysis_config);
    TraceAnalysis {
        name: bundle.name,
        bundle,
        merged,
        analysis,
    }
}

/// Prepares all three traces at the given scale.
pub fn prepare_all(scale: &ExperimentScale, config: &AnalysisConfig) -> [TraceAnalysis; 3] {
    let make = |name: &str, n: usize| {
        prepare(
            name,
            &TraceConfig {
                n_jobs: n,
                seed: scale.seed,
                max_monitor_samples: 128,
            },
            config,
        )
    };
    [
        make("pai", scale.pai_jobs),
        make("supercloud", scale.supercloud_jobs),
        make("philly", scale.philly_jobs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_all_traces() {
        let tc = TraceConfig {
            n_jobs: 2_000,
            seed: 5,
            max_monitor_samples: 32,
        };
        let ac = AnalysisConfig::default();
        for name in ["pai", "supercloud", "philly"] {
            let t = prepare(name, &tc, &ac);
            assert_eq!(t.name, name);
            assert_eq!(t.analysis.n_jobs(), 2_000);
            assert!(!t.analysis.frequent.is_empty(), "{name}: no itemsets");
            assert!(!t.analysis.rules.is_empty(), "{name}: no rules");
        }
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_trace_panics() {
        prepare(
            "helios",
            &TraceConfig::with_jobs(10),
            &AnalysisConfig::default(),
        );
    }
}
