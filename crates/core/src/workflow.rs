//! The end-to-end analysis workflow (§III).
//!
//! `merged frame -> encode -> mine -> rules` in one call, with the paper's
//! defaults (5% support, max itemset length 5, lift >= 1.5,
//! `C_lift = C_supp = 1.5`) baked into [`AnalysisConfig::default`]; keyword
//! analyses are then cheap queries against the shared rule set, exactly the
//! "all high-quality rules in a single execution" design §V highlights.

use irma_data::Frame;
use irma_mine::{Algorithm, ExecBudget, FrequentItemsets, ItemId, MinerConfig};
use irma_obs::{Metrics, Provenance};
use irma_prep::{encode_with, Encoded, EncoderSpec};
use irma_rules::{generate_rules_traced, KeywordAnalysis, PruneParams, Rule, RuleConfig, RuleTrie};

/// Every knob of the paper's workflow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisConfig {
    /// Which frequent-itemset miner to run (FP-Growth by default).
    pub algorithm: Algorithm,
    /// Support threshold and itemset-length cap.
    pub miner: MinerConfig,
    /// Lift (and optional confidence/support) floors for rule generation.
    pub rules: RuleConfig,
    /// The four pruning conditions' relaxation margins.
    pub prune: PruneParams,
    /// Execution budget (itemsets, estimated tree memory, wall-clock
    /// deadline). Only the fallible entry points ([`crate::try_analyze`]
    /// and friends) enforce it; [`analyze`] ignores it, preserving the
    /// paper's unbounded offline behaviour. Unlimited by default.
    pub budget: ExecBudget,
}

/// The output of one full workflow run over a merged trace frame.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Encoded transactions + item catalog + preprocessing report.
    pub encoded: Encoded,
    /// Mined frequent-itemset family.
    pub frequent: FrequentItemsets,
    /// All rules passing the generation thresholds (pre-pruning).
    pub rules: Vec<Rule>,
    /// Shared-prefix index over `rules` (keyed by sorted antecedent):
    /// resolves `(antecedent, consequent)` lookups for explain-style
    /// queries without scanning the flat export.
    pub rule_trie: RuleTrie,
    /// The configuration that produced this analysis (with the miner
    /// knobs actually used — relaxed ones if the degradation ladder ran).
    pub config: AnalysisConfig,
    /// Present iff the degradation ladder relaxed the mining knobs to fit
    /// [`AnalysisConfig::budget`]; `None` for full-fidelity results (and
    /// always for the infallible [`analyze`] family).
    pub degradation: Option<crate::fault::Degradation>,
}

/// Runs encode -> mine -> generate over a merged per-job frame.
pub fn analyze(frame: &Frame, spec: &EncoderSpec, config: &AnalysisConfig) -> Analysis {
    analyze_with(frame, spec, config, &Metrics::disabled())
}

/// [`analyze`] with observability: every pipeline stage (`prep.fit`,
/// `prep.transform`, `mine.tree_build`/`mine.mine`, `rules.generate`)
/// emits a [`irma_obs::StageEvent`] into `metrics`; keyword pruning adds
/// its own via [`Analysis::keyword_with`].
pub fn analyze_with(
    frame: &Frame,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
    metrics: &Metrics,
) -> Analysis {
    analyze_traced(frame, spec, config, metrics, &Provenance::disabled())
}

/// [`analyze_with`] plus per-rule decision lineage: every candidate rule
/// (survivor or threshold-filtered) lands in `provenance`; follow with
/// [`Analysis::keyword_traced`] to add the pruning decisions. The whole
/// run nests under one `core.analyze` root span.
pub fn analyze_traced(
    frame: &Frame,
    spec: &EncoderSpec,
    config: &AnalysisConfig,
    metrics: &Metrics,
    provenance: &Provenance,
) -> Analysis {
    let mut root = metrics.span("core.analyze");
    let encoded = encode_with(frame, spec, metrics);
    let frequent = config
        .algorithm
        .mine_with(&encoded.db, &config.miner, metrics);
    let rules = generate_rules_traced(&frequent, &config.rules, metrics, provenance);
    root.field("jobs", encoded.db.len() as u64);
    root.field("rules", rules.len() as u64);
    let rule_trie = RuleTrie::over_antecedents(&rules);
    Analysis {
        encoded,
        frequent,
        rules,
        rule_trie,
        config: config.clone(),
        degradation: None,
    }
}

impl Analysis {
    /// Id of an item label, if it survived encoding.
    pub fn item(&self, label: &str) -> Option<ItemId> {
        self.encoded.catalog.id(label)
    }

    /// Runs the keyword filtering + pruning stage for one item label.
    ///
    /// Returns `None` when the label does not exist in the catalog (never
    /// emitted, or dropped by the prevalence cut).
    pub fn keyword(&self, label: &str) -> Option<KeywordAnalysis> {
        self.keyword_with(label, &Metrics::disabled())
    }

    /// [`Analysis::keyword`] with observability: the pruning stage emits
    /// a `rules.prune` event with per-condition counts into `metrics`.
    pub fn keyword_with(&self, label: &str, metrics: &Metrics) -> Option<KeywordAnalysis> {
        self.keyword_traced(label, metrics, &Provenance::disabled())
    }

    /// [`Analysis::keyword_with`] plus per-rule decision lineage in
    /// `provenance` (winner/loser edges for every pruning decision; see
    /// [`irma_rules::prune_rules_traced`]).
    pub fn keyword_traced(
        &self,
        label: &str,
        metrics: &Metrics,
        provenance: &Provenance,
    ) -> Option<KeywordAnalysis> {
        let id = self.item(label)?;
        Some(KeywordAnalysis::run_traced(
            &self.rules,
            id,
            &self.config.prune,
            metrics,
            provenance,
        ))
    }

    /// Renders a keyword analysis as the paper's C/A table.
    pub fn render_keyword(&self, label: &str, top: usize) -> String {
        self.render_keyword_with(label, top, &Metrics::disabled())
    }

    /// [`Analysis::render_keyword`] with observability (see
    /// [`Analysis::keyword_with`]).
    pub fn render_keyword_with(&self, label: &str, top: usize, metrics: &Metrics) -> String {
        match self.keyword_with(label, metrics) {
            Some(analysis) => {
                let id = self.item(label).expect("keyword checked above");
                analysis.render(&self.encoded.catalog, id, top)
            }
            None => format!("keyword: {label} (item not present)\n"),
        }
    }

    /// Number of transactions analysed.
    pub fn n_jobs(&self) -> usize {
        self.encoded.db.len()
    }

    /// Resolves one rule by exact `(antecedent, consequent)` item ids via
    /// a [`RuleTrie`] walk instead of a linear scan. Both sides must be
    /// sorted ascending (the canonical [`irma_mine::Itemset`] order).
    pub fn find_rule(&self, antecedent: &[ItemId], consequent: &[ItemId]) -> Option<&Rule> {
        self.rule_trie
            .find(&self.rules, antecedent, consequent)
            .map(|idx| &self.rules[idx])
    }

    /// Suggests analysis keywords: items ranked by the strongest rule
    /// that involves them (descending max lift, then max confidence).
    ///
    /// The paper assumes the operator already knows their keyword ("job
    /// failure", "SM Util = 0%"); this helper surfaces which items the
    /// mined rules actually say something interesting about, so a first
    /// look at an unfamiliar trace starts from evidence instead of
    /// guesses. Items with no rule at all are omitted.
    pub fn suggest_keywords(&self, top: usize) -> Vec<(String, f64, f64)> {
        let n_items = self.encoded.catalog.len();
        let mut best = vec![(0.0f64, 0.0f64); n_items];
        for rule in &self.rules {
            for &item in rule
                .antecedent
                .items()
                .iter()
                .chain(rule.consequent.items())
            {
                let entry = &mut best[item as usize];
                if rule.lift > entry.0 || (rule.lift == entry.0 && rule.confidence > entry.1) {
                    *entry = (rule.lift, rule.confidence.max(entry.1));
                }
            }
        }
        let mut ranked: Vec<(String, f64, f64)> = best
            .into_iter()
            .enumerate()
            .filter(|(_, (lift, _))| *lift > 0.0)
            .map(|(item, (lift, conf))| {
                (
                    self.encoded
                        .catalog
                        .label(item as irma_mine::ItemId)
                        .to_string(),
                    lift,
                    conf,
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.2.total_cmp(&a.2)));
        ranked.truncate(top);
        ranked
    }

    /// A preprocessing + mining summary: counts, detected spikes, fitted
    /// bin edges, and prevalence-dropped items — what an operator checks
    /// before trusting the rules.
    pub fn summary(&self) -> String {
        let report = &self.encoded.report;
        let mut out = format!(
            "jobs: {}  items: {} (of {} before the {:.0}% prevalence cut)\n\
             frequent itemsets: {} (min support {:.0}%, max length {})\n\
             rules: {} (min lift {:.2})\n",
            self.n_jobs(),
            self.encoded.catalog.len(),
            report.n_items_before_drop,
            100.0 * 0.8,
            self.frequent.len(),
            self.config.miner.min_support * 100.0,
            self.config.miner.max_len,
            self.rules.len(),
            self.config.rules.min_lift,
        );
        if !report.dropped.is_empty() {
            out.push_str("dropped (too prevalent):\n");
            for (label, share) in &report.dropped {
                out.push_str(&format!("  {label} ({:.0}% of jobs)\n", share * 100.0));
            }
        }
        let mut fits: Vec<(&String, &irma_prep::NumericFit)> = report.numeric_fits.iter().collect();
        fits.sort_by_key(|(name, _)| (*name).clone());
        for (column, fit) in fits {
            let edges = fit
                .edges
                .as_ref()
                .map(|e| {
                    e.edges()
                        .iter()
                        .map(|x| format!("{x:.3}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_else(|| "(no residual values)".to_string());
            match fit.spike_value {
                Some(spike) => out.push_str(&format!(
                    "  {column}: spike at {spike} (Std), bin edges [{edges}]\n"
                )),
                None => out.push_str(&format!("  {column}: bin edges [{edges}]\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irma_data::read_csv_str;
    use irma_prep::{FeatureSpec, ZeroBin};

    fn tiny_analysis() -> Analysis {
        // 20 jobs; short runtime strongly implies idle GPU.
        let mut csv = String::from("runtime,sm\n");
        for i in 0..20 {
            let (rt, sm) = if i < 8 {
                (10.0 + i as f64, 0.0)
            } else if i < 10 {
                (15.0, 60.0)
            } else {
                (5_000.0 + i as f64, if i % 4 == 0 { 0.0 } else { 70.0 })
            };
            csv.push_str(&format!("{rt},{sm}\n"));
        }
        let frame = read_csv_str(&csv).unwrap();
        let spec = irma_prep::EncoderSpec::new(vec![
            FeatureSpec::numeric("runtime", "Runtime"),
            FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
        ]);
        let mut config = AnalysisConfig::default();
        config.rules.min_lift = 1.2;
        analyze(&frame, &spec, &config)
    }

    #[test]
    fn pipeline_produces_rules() {
        let analysis = tiny_analysis();
        assert!(analysis.n_jobs() == 20);
        assert!(!analysis.frequent.is_empty());
        assert!(!analysis.rules.is_empty());
    }

    #[test]
    fn keyword_analysis_finds_idle_cause() {
        let analysis = tiny_analysis();
        let kw = analysis.keyword("SM Util = 0%").expect("keyword exists");
        assert!(
            kw.causes.iter().any(|r| r.antecedent.len() == 1
                && analysis.encoded.catalog.label(r.antecedent.items()[0]) == "Runtime = Bin1"),
            "expected short runtime as an idle-GPU cause"
        );
    }

    #[test]
    fn unknown_keyword_is_none() {
        let analysis = tiny_analysis();
        assert!(analysis.keyword("No Such Item").is_none());
        let text = analysis.render_keyword("No Such Item", 5);
        assert!(text.contains("not present"));
    }

    #[test]
    fn suggest_keywords_ranks_by_lift() {
        let analysis = tiny_analysis();
        let suggestions = analysis.suggest_keywords(10);
        assert!(!suggestions.is_empty());
        // Descending lift.
        for w in suggestions.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The idle-GPU item participates in the strongest rules of this
        // toy dataset, so it must be suggested.
        assert!(
            suggestions
                .iter()
                .any(|(label, _, _)| label == "SM Util = 0%"),
            "{suggestions:?}"
        );
        assert_eq!(analysis.suggest_keywords(1).len(), 1);
    }

    #[test]
    fn summary_mentions_key_facts() {
        let analysis = tiny_analysis();
        let text = analysis.summary();
        assert!(text.contains("jobs: 20"), "{text}");
        assert!(text.contains("frequent itemsets:"), "{text}");
        assert!(text.contains("runtime: bin edges"), "{text}");
        assert!(text.contains("sm:"), "{text}");
    }

    #[test]
    fn every_stage_emits_a_trace_event() {
        let mut csv = String::from("runtime,sm\n");
        for i in 0..20 {
            let (rt, sm) = if i < 8 { (10.0, 0.0) } else { (5_000.0, 70.0) };
            csv.push_str(&format!("{},{}\n", rt + i as f64, sm));
        }
        let frame = read_csv_str(&csv).unwrap();
        let spec = irma_prep::EncoderSpec::new(vec![
            FeatureSpec::numeric("runtime", "Runtime"),
            FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
        ]);
        let mut config = AnalysisConfig::default();
        config.rules.min_lift = 1.2;
        let metrics = Metrics::enabled();
        let analysis = analyze_with(&frame, &spec, &config, &metrics);
        let _ = analysis.keyword_with("SM Util = 0%", &metrics);
        let snap = metrics.snapshot();
        for stage in [
            "core.analyze",
            "prep.fit",
            "prep.transform",
            "mine.tree_build",
            "mine.mine",
            "rules.generate",
            "rules.prune",
        ] {
            assert!(snap.stage(stage).is_some(), "missing stage event {stage}");
        }
        // Pipeline stages nest under the core.analyze root span.
        let root = snap.stage("core.analyze").unwrap();
        assert_eq!(root.parent, None);
        for stage in ["prep.fit", "mine.mine", "rules.generate"] {
            assert_eq!(
                snap.stage(stage).unwrap().parent,
                Some(root.id),
                "{stage} should nest under core.analyze"
            );
        }
        assert_eq!(
            snap.stage("prep.transform")
                .unwrap()
                .field("transactions_out"),
            Some(20)
        );
        assert_eq!(
            snap.stage("rules.generate").unwrap().field("rules_out"),
            Some(analysis.rules.len() as u64)
        );
        // The JSON export of a real run is structurally sound.
        let json = snap.to_json();
        assert!(json.contains("\"stage\": \"mine.tree_build\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn traced_run_explains_kept_and_filtered_rules() {
        let mut csv = String::from("runtime,sm\n");
        for i in 0..20 {
            let (rt, sm) = if i < 8 { (10.0, 0.0) } else { (5_000.0, 70.0) };
            csv.push_str(&format!("{},{}\n", rt + i as f64, sm));
        }
        let frame = read_csv_str(&csv).unwrap();
        let spec = irma_prep::EncoderSpec::new(vec![
            FeatureSpec::numeric("runtime", "Runtime"),
            FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
        ]);
        let mut config = AnalysisConfig::default();
        config.rules.min_lift = 1.2;
        let provenance = Provenance::enabled();
        let analysis = analyze_traced(&frame, &spec, &config, &Metrics::disabled(), &provenance);
        let kw = analysis
            .keyword_traced("SM Util = 0%", &Metrics::disabled(), &provenance)
            .unwrap();
        assert!(!kw.causes.is_empty());
        // Every kept cause rule has a KEPT verdict in its explanation.
        let labeler = |id: u32| analysis.encoded.catalog.label(id).to_string();
        for rule in &kw.causes {
            let text = provenance
                .render_explain(rule.antecedent.items(), rule.consequent.items(), &labeler)
                .expect("kept rule is recorded");
            assert!(text.contains("verdict: KEPT"), "{text}");
        }
        // Candidate rules below the lift floor are recorded as filtered.
        assert!(provenance
            .records()
            .iter()
            .any(|r| r.filtered.is_some() || r.kept == Some(false)));
    }

    #[test]
    fn algorithms_agree_end_to_end() {
        let frame = read_csv_str("a\n1\n2\n3\n4\n1\n2\n1\n").unwrap();
        let spec = irma_prep::EncoderSpec::new(vec![FeatureSpec::numeric("a", "A")]);
        let mut rules_by_algo = Vec::new();
        for algorithm in Algorithm::all() {
            let config = AnalysisConfig {
                algorithm,
                ..AnalysisConfig::default()
            };
            rules_by_algo.push(analyze(&frame, &spec, &config).rules);
        }
        assert_eq!(rules_by_algo[0], rules_by_algo[1]);
        assert_eq!(rules_by_algo[0], rules_by_algo[2]);
    }
}
