//! Descriptive statistics for the reporting layer (CDFs, box plots).

/// Empirical CDF over a finite sample.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from samples (non-finite values are dropped).
    pub fn new(values: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// P(X <= x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (linear interpolation), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Evenly spaced `(x, F(x))` points for plotting/export.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..=n)
            .map(|i| {
                let x = self.quantile(i as f64 / n as f64);
                (x, self.at(x))
            })
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Five-number summary used for the paper's Fig. 2 box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary; returns `None` for empty input.
    pub fn new(values: &[f64]) -> Option<BoxStats> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let cdf = Cdf::new(&finite);
        Some(BoxStats {
            min: cdf.quantile(0.0),
            q1: cdf.quantile(0.25),
            median: cdf.quantile(0.5),
            q3: cdf.quantile(0.75),
            max: cdf.quantile(1.0),
            mean: finite.iter().sum::<f64>() / finite.len() as f64,
            n: finite.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Mean of a slice (0 for empty) — shared convenience.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic() {
        let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(2.0), 0.5);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.5), 2.5);
    }

    #[test]
    fn cdf_drops_non_finite() {
        let cdf = Cdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_points_monotone() {
        let cdf = Cdf::new(&(0..100).map(|i| (i as f64).sqrt()).collect::<Vec<_>>());
        let pts = cdf.points(10);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn box_stats_five_numbers() {
        let b = BoxStats::new(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.iqr(), 2.0);
        assert_eq!(b.n, 5);
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(BoxStats::new(&[]).is_none());
        assert!(BoxStats::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn zero_share_via_cdf() {
        // The Fig. 4 headline number is just CDF(0+eps).
        let mut xs = vec![0.0; 46];
        xs.extend((1..55).map(|i| i as f64));
        let cdf = Cdf::new(&xs);
        assert!((cdf.at(0.5) - 0.46).abs() < 0.01);
    }
}
