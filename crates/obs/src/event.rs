//! Streaming JSONL event log for live pipeline tracing.
//!
//! A [`Snapshot`](crate::Snapshot) only exists after the run; an
//! [`EventSink`] writes one JSON object per line *while the run
//! executes*, so a long mining job can be tailed (`tail -f trace.jsonl`)
//! instead of inspected post-mortem. Three event kinds are emitted:
//!
//! ```json
//! {"event":"span_open","run":"<id>","seq":0,"offset_us":12,"span":1,"parent":null,"stage":"prep.fit"}
//! {"event":"span_close","run":"<id>","seq":3,"offset_us":480,"span":1,"stage":"prep.fit","wall_us":468,"fields":{"rows_in":20}}
//! {"event":"counter","run":"<id>","seq":4,"offset_us":501,"name":"prune.condition1","by":3,"total":3}
//! ```
//!
//! `seq` is a per-registry monotonic sequence number and `offset_us` the
//! microseconds since the registry was created, so readers can order and
//! align events without trusting wall-clock timestamps. `run` is a random
//! id minted when the sink's registry is enabled; it distinguishes
//! interleaved traces when several runs append to one file.
//!
//! Every line is flushed as it is written (the whole point is tailing);
//! write errors never fail the analysis they observe — tracing is
//! best-effort — but they are *counted* by the owning registry and
//! surface as a `trace_log_write_errors_total` counter plus a
//! `degraded: true` flag in the snapshot, so a full disk or broken pipe
//! cannot silently produce a truncated trace that looks complete.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A line-oriented JSONL event writer; see the module docs for the
/// schema. Attach one to a recording registry with
/// [`Metrics::with_event_sink`](crate::Metrics::with_event_sink).
pub struct EventSink {
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink").finish_non_exhaustive()
    }
}

impl EventSink {
    /// Wraps any writer (a file, a pipe, a test buffer).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> EventSink {
        EventSink { writer }
    }

    /// Opens (creating if needed) a JSONL trace file at `path` in append
    /// mode. Appending — not truncating — is what makes the run-id
    /// disambiguation promised in the module docs real: a second run
    /// pointed at the same path adds its lines after the first run's
    /// instead of clobbering them.
    pub fn create(path: &Path) -> std::io::Result<EventSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventSink::from_writer(Box::new(file)))
    }

    /// A sink writing into a shared in-memory buffer, plus a handle to
    /// read it back — the test/bench harness's sink.
    pub fn shared_buffer() -> (EventSink, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedBuffer {
            buffer: Arc::clone(&buffer),
        };
        (EventSink::from_writer(Box::new(writer)), buffer)
    }

    /// Writes one already-serialized JSON object as a line and flushes.
    /// Returns `false` when the write or flush failed; the caller (the
    /// registry) counts failures instead of letting tracing fail the
    /// traced run.
    pub(crate) fn emit(&mut self, line: &str) -> bool {
        writeln!(self.writer, "{line}").is_ok() && self.writer.flush().is_ok()
    }
}

struct SharedBuffer {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Mints a run id from the wall clock, the process id, and a
/// process-wide counter: unique enough to tell interleaved traces apart,
/// with no RNG dependency.
///
/// The counter is what makes back-to-back ids distinct: two registries
/// enabled within one clock tick (coarse-resolution platforms, tight
/// loops) see the same nanos and pid, so without it they would mint
/// identical ids and interleaved-trace disambiguation would silently
/// fail exactly when several runs share a process.
pub(crate) fn fresh_run_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let serial = COUNTER.fetch_add(1, Ordering::Relaxed);
    // The SplitMix64 stream proper: seed from the low-entropy wall clock
    // + pid, advance by the golden-ratio increment per mint, finalize.
    // The finalizer is a bijection, so ids within a process collide only
    // if the *inputs* do — which would need the clock to drift by an
    // exact multiple of 2^64/φ between two mints, not merely stand still.
    let mut z = (nanos ^ ((std::process::id() as u64) << 32))
        .wrapping_add(serial.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    format!("{:016x}", z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_collects_lines() {
        let (mut sink, buffer) = EventSink::shared_buffer();
        assert!(sink.emit("{\"event\":\"counter\"}"));
        assert!(sink.emit("{\"event\":\"span_open\"}"));
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"event\":\"counter\"}\n"));
    }

    #[test]
    fn failing_writer_reports_false() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = EventSink::from_writer(Box::new(Broken));
        assert!(!sink.emit("{}"));
    }

    #[test]
    fn run_ids_are_hex_and_distinct_across_time() {
        let id = fresh_run_id();
        assert_eq!(id.len(), 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn back_to_back_run_ids_never_collide() {
        // Regression: ids were minted from wall-clock nanos + pid alone,
        // so two registries enabled within one clock tick collided. The
        // atomic serial makes every in-process mint distinct even on a
        // clock that never advances.
        let ids: std::collections::HashSet<String> = (0..10_000).map(|_| fresh_run_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn create_appends_so_two_runs_share_one_trace_file() {
        // Regression: `EventSink::create` used `File::create`, truncating
        // the first run's trace the moment a second run opened the same
        // path — despite the module docs promising run-id disambiguation
        // across runs appending to one file.
        let path = std::env::temp_dir().join(format!("irma-append-test-{}.jsonl", fresh_run_id()));
        let mut run_ids = Vec::new();
        for _ in 0..2 {
            let metrics =
                crate::Metrics::enabled().with_event_sink(EventSink::create(&path).unwrap());
            metrics.incr("hits", 1);
            run_ids.push(metrics.run_id());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_ne!(run_ids[0], run_ids[1]);
        for run in &run_ids {
            assert!(
                text.contains(&format!("\"run\":\"{run}\"")),
                "run {run} missing from shared trace:\n{text}"
            );
        }
    }
}
