//! Streaming JSONL event log for live pipeline tracing.
//!
//! A [`Snapshot`](crate::Snapshot) only exists after the run; an
//! [`EventSink`] writes one JSON object per line *while the run
//! executes*, so a long mining job can be tailed (`tail -f trace.jsonl`)
//! instead of inspected post-mortem. Three event kinds are emitted:
//!
//! ```json
//! {"event":"span_open","run":"<id>","seq":0,"offset_us":12,"span":1,"parent":null,"stage":"prep.fit"}
//! {"event":"span_close","run":"<id>","seq":3,"offset_us":480,"span":1,"stage":"prep.fit","wall_us":468,"fields":{"rows_in":20}}
//! {"event":"counter","run":"<id>","seq":4,"offset_us":501,"name":"prune.condition1","by":3,"total":3}
//! ```
//!
//! `seq` is a per-registry monotonic sequence number and `offset_us` the
//! microseconds since the registry was created, so readers can order and
//! align events without trusting wall-clock timestamps. `run` is a random
//! id minted when the sink's registry is enabled; it distinguishes
//! interleaved traces when several runs append to one file.
//!
//! Every line is flushed as it is written (the whole point is tailing);
//! write errors never fail the analysis they observe — tracing is
//! best-effort — but they are *counted* by the owning registry and
//! surface as a `trace_log_write_errors_total` counter plus a
//! `degraded: true` flag in the snapshot, so a full disk or broken pipe
//! cannot silently produce a truncated trace that looks complete.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A line-oriented JSONL event writer; see the module docs for the
/// schema. Attach one to a recording registry with
/// [`Metrics::with_event_sink`](crate::Metrics::with_event_sink).
pub struct EventSink {
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink").finish_non_exhaustive()
    }
}

impl EventSink {
    /// Wraps any writer (a file, a pipe, a test buffer).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> EventSink {
        EventSink { writer }
    }

    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<EventSink> {
        Ok(EventSink::from_writer(Box::new(File::create(path)?)))
    }

    /// A sink writing into a shared in-memory buffer, plus a handle to
    /// read it back — the test/bench harness's sink.
    pub fn shared_buffer() -> (EventSink, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedBuffer {
            buffer: Arc::clone(&buffer),
        };
        (EventSink::from_writer(Box::new(writer)), buffer)
    }

    /// Writes one already-serialized JSON object as a line and flushes.
    /// Returns `false` when the write or flush failed; the caller (the
    /// registry) counts failures instead of letting tracing fail the
    /// traced run.
    pub(crate) fn emit(&mut self, line: &str) -> bool {
        writeln!(self.writer, "{line}").is_ok() && self.writer.flush().is_ok()
    }
}

struct SharedBuffer {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Mints a run id from the wall clock and the process id: unique enough
/// to tell interleaved traces apart, with no RNG dependency.
pub(crate) fn fresh_run_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // SplitMix64 finalizer scrambles the low-entropy inputs.
    let mut z = nanos ^ ((std::process::id() as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    format!("{:016x}", z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_collects_lines() {
        let (mut sink, buffer) = EventSink::shared_buffer();
        assert!(sink.emit("{\"event\":\"counter\"}"));
        assert!(sink.emit("{\"event\":\"span_open\"}"));
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"event\":\"counter\"}\n"));
    }

    #[test]
    fn failing_writer_reports_false() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = EventSink::from_writer(Box::new(Broken));
        assert!(!sink.emit("{}"));
    }

    #[test]
    fn run_ids_are_hex_and_distinct_across_time() {
        let id = fresh_run_id();
        assert_eq!(id.len(), 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
