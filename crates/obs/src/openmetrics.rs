//! OpenMetrics text exposition for [`Snapshot`] — the format Prometheus
//! and friends scrape, so an IRMA run can drop a file a node exporter's
//! textfile collector picks up.
//!
//! Mapping:
//!
//! * counters → `# TYPE irma_<name> counter` + `irma_<name>_total <v>`
//!   (a registry name already ending in `_total` is not double-suffixed)
//! * the snapshot's degraded flag → an always-present `irma_degraded`
//!   gauge (0/1), so dashboards can alert on best-effort answers
//! * gauges   → `# TYPE irma_<name> gauge` + `irma_<name> <v>`
//! * timers   → `# TYPE irma_<name>_seconds summary` with
//!   `quantile="0.5"` / `quantile="0.95"` samples plus `_sum` / `_count`
//!
//! Names are sanitized (`mine.tree_build` → `irma_mine_tree_build`); the
//! exposition ends with the mandatory `# EOF`. Stage events carry
//! per-occurrence fields and ordering that metric samples cannot express;
//! they stay in the JSON/JSONL exports.

use crate::Snapshot;

/// Sanitizes a registry name into an OpenMetrics metric name:
/// `irma_` prefix, every non-`[a-zA-Z0-9_]` byte folded to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("irma_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 sample the OpenMetrics way (non-finite values are
/// legal here, unlike JSON).
fn sample(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x:?}")
    }
}

pub(crate) fn snapshot_to_openmetrics(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        // A registry counter already named `*_total` (the OpenMetrics
        // convention leaking back in, e.g. `trace_log_write_errors_total`)
        // must not grow a second suffix.
        let name = sanitize(name.strip_suffix("_total").unwrap_or(name));
        out.push_str(&format!("# TYPE {name} counter\n{name}_total {value}\n"));
    }
    out.push_str(&format!(
        "# TYPE irma_degraded gauge\nirma_degraded {}\n",
        u8::from(snapshot.degraded)
    ));
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", sample(*value)));
    }
    for timer in &snapshot.timers {
        let name = format!("{}_seconds", sanitize(&timer.name));
        out.push_str(&format!(
            "# TYPE {name} summary\n\
             {name}{{quantile=\"0.5\"}} {}\n\
             {name}{{quantile=\"0.95\"}} {}\n\
             {name}_sum {}\n\
             {name}_count {}\n",
            sample(timer.p50.as_secs_f64()),
            sample(timer.p95.as_secs_f64()),
            sample(timer.total.as_secs_f64()),
            timer.count
        ));
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;
    use std::collections::BTreeSet;
    use std::time::Duration;

    fn populated() -> Snapshot {
        let metrics = Metrics::enabled();
        metrics.incr("prune.condition1", 3);
        metrics.incr("prune.condition2", 1);
        metrics.gauge("stream.drift", 0.25);
        metrics.record("mine.mine", Duration::from_millis(12));
        metrics.record("mine.mine", Duration::from_millis(20));
        metrics.snapshot()
    }

    #[test]
    fn counters_get_total_suffix_and_type_line() {
        let text = populated().to_openmetrics();
        assert!(
            text.contains("# TYPE irma_prune_condition1 counter\n"),
            "{text}"
        );
        assert!(text.contains("irma_prune_condition1_total 3\n"), "{text}");
    }

    #[test]
    fn timers_become_second_summaries() {
        let text = populated().to_openmetrics();
        assert!(
            text.contains("# TYPE irma_mine_mine_seconds summary\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_mine_mine_seconds{quantile=\"0.5\"} 0.012\n"),
            "{text}"
        );
        assert!(text.contains("irma_mine_mine_seconds_sum 0.032"), "{text}");
        assert!(text.contains("irma_mine_mine_seconds_count 2\n"), "{text}");
    }

    #[test]
    fn type_precedes_samples_no_duplicate_names_and_eof_terminates() {
        let text = populated().to_openmetrics();
        assert!(text.ends_with("# EOF\n"), "{text}");
        let mut declared = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap().to_string();
                assert!(declared.insert(name.clone()), "duplicate # TYPE {name}");
            } else if line != "# EOF" {
                // Every sample must belong to a previously declared family.
                let sample_name = line
                    .split([' ', '{'])
                    .next()
                    .unwrap()
                    .trim_end_matches("_total")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                assert!(
                    declared.contains(sample_name),
                    "sample {line:?} before its # TYPE"
                );
            }
        }
    }

    #[test]
    fn empty_snapshot_is_degraded_gauge_plus_eof() {
        assert_eq!(
            Snapshot::default().to_openmetrics(),
            "# TYPE irma_degraded gauge\nirma_degraded 0\n# EOF\n"
        );
    }

    #[test]
    fn degraded_snapshot_sets_the_gauge() {
        let snapshot = Snapshot {
            degraded: true,
            ..Snapshot::default()
        };
        assert!(snapshot.to_openmetrics().contains("irma_degraded 1\n"));
    }

    #[test]
    fn total_suffixed_counters_are_not_double_suffixed() {
        let snapshot = Snapshot {
            counters: vec![("trace_log_write_errors_total".to_string(), 2)],
            ..Snapshot::default()
        };
        let text = snapshot.to_openmetrics();
        assert!(
            text.contains("# TYPE irma_trace_log_write_errors counter\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_trace_log_write_errors_total 2\n"),
            "{text}"
        );
        assert!(!text.contains("_total_total"), "{text}");
    }

    #[test]
    fn non_finite_gauges_render_openmetrics_spellings() {
        let metrics = Metrics::enabled();
        metrics.gauge("bad", f64::NAN);
        metrics.gauge("hot", f64::INFINITY);
        let text = metrics.snapshot().to_openmetrics();
        assert!(text.contains("irma_bad NaN\n"), "{text}");
        assert!(text.contains("irma_hot +Inf\n"), "{text}");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("mine.tree_build"), "irma_mine_tree_build");
        assert_eq!(sanitize("weird-name:x"), "irma_weird_name_x");
    }
}
