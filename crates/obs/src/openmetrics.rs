//! OpenMetrics text exposition for [`Snapshot`] — the format Prometheus
//! and friends scrape, so an IRMA run can drop a file a node exporter's
//! textfile collector picks up.
//!
//! Mapping:
//!
//! * counters → `# TYPE irma_<name> counter` + `irma_<name>_total <v>`
//!   (a registry name already ending in `_total` is not double-suffixed)
//! * the snapshot's degraded flag → an always-present `irma_degraded`
//!   gauge (0/1), so dashboards can alert on best-effort answers
//! * gauges   → `# TYPE irma_<name> gauge` + `irma_<name> <v>`
//! * scheduler counters ([`Snapshot::sched`], when present with at least
//!   one worker) → `irma_sched_*` families labelled `{worker="<i>"}`,
//!   plus the unlabelled `irma_sched_injector_pushes` counter
//! * timers   → `# TYPE irma_<name>_seconds summary` with
//!   `quantile="0.5"` / `quantile="0.95"` samples plus `_sum` / `_count`,
//!   and alongside it a `# TYPE irma_<name>_seconds_hist histogram` with
//!   cumulative `_bucket{le="..."}` samples from the bounded log2
//!   histogram (terminal `le="+Inf"` bucket == `_count`)
//!
//! Names are sanitized (`mine.tree_build` → `irma_mine_tree_build`); the
//! exposition ends with the mandatory `# EOF`. Stage events carry
//! per-occurrence fields and ordering that metric samples cannot express;
//! they stay in the JSON/JSONL exports.

use crate::{SchedWorker, Snapshot};

/// Sanitizes a registry name into an OpenMetrics metric name:
/// `irma_` prefix, every non-`[a-zA-Z0-9_]` byte folded to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("irma_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 sample the OpenMetrics way (non-finite values are
/// legal here, unlike JSON).
fn sample(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x:?}")
    }
}

pub(crate) fn snapshot_to_openmetrics(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        // A registry counter already named `*_total` (the OpenMetrics
        // convention leaking back in, e.g. `trace_log_write_errors_total`)
        // must not grow a second suffix.
        let name = sanitize(name.strip_suffix("_total").unwrap_or(name));
        out.push_str(&format!("# TYPE {name} counter\n{name}_total {value}\n"));
    }
    out.push_str(&format!(
        "# TYPE irma_degraded gauge\nirma_degraded {}\n",
        u8::from(snapshot.degraded)
    ));
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", sample(*value)));
    }
    if let Some(sched) = snapshot.sched.as_ref().filter(|s| !s.workers.is_empty()) {
        out.push_str(&format!(
            "# TYPE irma_sched_injector_pushes counter\n\
             irma_sched_injector_pushes_total {}\n",
            sched.injector_pushes
        ));
        type WorkerCounter = fn(&SchedWorker) -> u64;
        let counter_families: [(&str, WorkerCounter); 9] = [
            ("jobs_executed", |w| w.jobs_executed),
            ("local_pushes", |w| w.local_pushes),
            ("steal_attempts", SchedWorker::steal_attempts),
            ("steal_successes", |w| w.steal_successes),
            ("steal_empty", |w| w.steal_empty),
            ("steal_retries", |w| w.steal_retries),
            ("injector_pops", |w| w.injector_pops),
            ("parks", |w| w.parks),
            ("wakes", |w| w.wakes),
        ];
        for (family, value_of) in counter_families {
            out.push_str(&format!("# TYPE irma_sched_{family} counter\n"));
            for w in &sched.workers {
                out.push_str(&format!(
                    "irma_sched_{family}_total{{worker=\"{}\"}} {}\n",
                    w.worker,
                    value_of(w)
                ));
            }
        }
        out.push_str("# TYPE irma_sched_deque_high_water gauge\n");
        for w in &sched.workers {
            out.push_str(&format!(
                "irma_sched_deque_high_water{{worker=\"{}\"}} {}\n",
                w.worker, w.deque_high_water
            ));
        }
    }
    for timer in &snapshot.timers {
        let name = format!("{}_seconds", sanitize(&timer.name));
        out.push_str(&format!(
            "# TYPE {name} summary\n\
             {name}{{quantile=\"0.5\"}} {}\n\
             {name}{{quantile=\"0.95\"}} {}\n\
             {name}_sum {}\n\
             {name}_count {}\n",
            sample(timer.p50.as_secs_f64()),
            sample(timer.p95.as_secs_f64()),
            sample(timer.total.as_secs_f64()),
            timer.count
        ));
        // The histogram view of the same timer, as its own `_hist`
        // family (OpenMetrics forbids one name carrying two types).
        // Buckets are cumulative; `+Inf` catches overflow samples and
        // always equals `_count`.
        out.push_str(&format!("# TYPE {name}_hist histogram\n"));
        for (le, cumulative) in &timer.buckets {
            out.push_str(&format!(
                "{name}_hist_bucket{{le=\"{}\"}} {cumulative}\n",
                sample(le.as_secs_f64())
            ));
        }
        out.push_str(&format!(
            "{name}_hist_bucket{{le=\"+Inf\"}} {count}\n\
             {name}_hist_sum {}\n\
             {name}_hist_count {count}\n",
            sample(timer.total.as_secs_f64()),
            count = timer.count
        ));
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;
    use std::collections::BTreeSet;
    use std::time::Duration;

    fn populated() -> Snapshot {
        let metrics = Metrics::enabled();
        metrics.incr("prune.condition1", 3);
        metrics.incr("prune.condition2", 1);
        metrics.gauge("stream.drift", 0.25);
        metrics.record("mine.mine", Duration::from_millis(12));
        metrics.record("mine.mine", Duration::from_millis(20));
        metrics.snapshot()
    }

    #[test]
    fn counters_get_total_suffix_and_type_line() {
        let text = populated().to_openmetrics();
        assert!(
            text.contains("# TYPE irma_prune_condition1 counter\n"),
            "{text}"
        );
        assert!(text.contains("irma_prune_condition1_total 3\n"), "{text}");
    }

    #[test]
    fn timers_become_second_summaries() {
        let text = populated().to_openmetrics();
        assert!(
            text.contains("# TYPE irma_mine_mine_seconds summary\n"),
            "{text}"
        );
        // p50's exact nearest-rank sample is 12 ms; the histogram reports
        // its bucket's upper bound, 2^24 ns.
        assert!(
            text.contains("irma_mine_mine_seconds{quantile=\"0.5\"} 0.016777216\n"),
            "{text}"
        );
        assert!(text.contains("irma_mine_mine_seconds_sum 0.032"), "{text}");
        assert!(text.contains("irma_mine_mine_seconds_count 2\n"), "{text}");
    }

    #[test]
    fn timers_also_expose_le_bucketed_histograms() {
        let text = populated().to_openmetrics();
        assert!(
            text.contains("# TYPE irma_mine_mine_seconds_hist histogram\n"),
            "{text}"
        );
        // 12 ms lands in (2^23, 2^24] ns, 20 ms in (2^24, 2^25]: the
        // cumulative buckets step 1 then 2, and +Inf equals _count.
        assert!(
            text.contains("irma_mine_mine_seconds_hist_bucket{le=\"0.016777216\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_mine_mine_seconds_hist_bucket{le=\"0.033554432\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_mine_mine_seconds_hist_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_mine_mine_seconds_hist_sum 0.032"),
            "{text}"
        );
        assert!(
            text.contains("irma_mine_mine_seconds_hist_count 2\n"),
            "{text}"
        );
        // Cumulative bucket counts are non-decreasing in file order.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_hist_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "{text}");
            last = count;
        }
    }

    #[test]
    fn sched_stats_become_worker_labelled_families() {
        use crate::{Metrics, SchedStats, SchedWorker};
        let metrics = Metrics::enabled();
        metrics.set_sched(SchedStats {
            injector_pushes: 4,
            workers: vec![
                SchedWorker {
                    worker: 0,
                    jobs_executed: 10,
                    local_pushes: 7,
                    steal_successes: 2,
                    steal_empty: 5,
                    steal_retries: 1,
                    injector_pops: 3,
                    parks: 6,
                    wakes: 4,
                    deque_high_water: 9,
                },
                SchedWorker {
                    worker: 1,
                    jobs_executed: 1,
                    ..SchedWorker::default()
                },
            ],
        });
        let text = metrics.snapshot().to_openmetrics();
        assert!(
            text.contains("irma_sched_injector_pushes_total 4\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE irma_sched_jobs_executed counter\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_sched_jobs_executed_total{worker=\"0\"} 10\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_sched_jobs_executed_total{worker=\"1\"} 1\n"),
            "{text}"
        );
        // steal_attempts is the derived sum of the three outcomes.
        assert!(
            text.contains("irma_sched_steal_attempts_total{worker=\"0\"} 8\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_sched_deque_high_water{worker=\"0\"} 9\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_sched_parks_total{worker=\"0\"} 6\n"),
            "{text}"
        );
    }

    #[test]
    fn sched_without_workers_is_omitted() {
        use crate::{Metrics, SchedStats};
        let metrics = Metrics::enabled();
        metrics.set_sched(SchedStats::default());
        let text = metrics.snapshot().to_openmetrics();
        assert!(!text.contains("irma_sched_"), "{text}");
    }

    #[test]
    fn type_precedes_samples_no_duplicate_names_and_eof_terminates() {
        let text = populated().to_openmetrics();
        assert!(text.ends_with("# EOF\n"), "{text}");
        let mut declared = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap().to_string();
                assert!(declared.insert(name.clone()), "duplicate # TYPE {name}");
            } else if line != "# EOF" {
                // Every sample must belong to a previously declared family.
                let sample_name = line
                    .split([' ', '{'])
                    .next()
                    .unwrap()
                    .trim_end_matches("_total")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count")
                    .trim_end_matches("_bucket");
                assert!(
                    declared.contains(sample_name),
                    "sample {line:?} before its # TYPE"
                );
            }
        }
    }

    #[test]
    fn empty_snapshot_is_degraded_gauge_plus_eof() {
        assert_eq!(
            Snapshot::default().to_openmetrics(),
            "# TYPE irma_degraded gauge\nirma_degraded 0\n# EOF\n"
        );
    }

    #[test]
    fn degraded_snapshot_sets_the_gauge() {
        let snapshot = Snapshot {
            degraded: true,
            ..Snapshot::default()
        };
        assert!(snapshot.to_openmetrics().contains("irma_degraded 1\n"));
    }

    #[test]
    fn total_suffixed_counters_are_not_double_suffixed() {
        let snapshot = Snapshot {
            counters: vec![("trace_log_write_errors_total".to_string(), 2)],
            ..Snapshot::default()
        };
        let text = snapshot.to_openmetrics();
        assert!(
            text.contains("# TYPE irma_trace_log_write_errors counter\n"),
            "{text}"
        );
        assert!(
            text.contains("irma_trace_log_write_errors_total 2\n"),
            "{text}"
        );
        assert!(!text.contains("_total_total"), "{text}");
    }

    #[test]
    fn non_finite_gauges_render_openmetrics_spellings() {
        let metrics = Metrics::enabled();
        metrics.gauge("bad", f64::NAN);
        metrics.gauge("hot", f64::INFINITY);
        let text = metrics.snapshot().to_openmetrics();
        assert!(text.contains("irma_bad NaN\n"), "{text}");
        assert!(text.contains("irma_hot +Inf\n"), "{text}");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("mine.tree_build"), "irma_mine_tree_build");
        assert_eq!(sanitize("weird-name:x"), "irma_weird_name_x");
    }
}
