//! Per-rule decision lineage ("why did rule X survive pruning while rule
//! Y died?").
//!
//! The mining pipeline makes two kinds of per-rule decisions: generation
//! thresholds (min lift/confidence/support) and the four keyword pruning
//! conditions. A [`Provenance`] handle — same `Option<Arc<Mutex<..>>>`
//! shape as [`Metrics`](crate::Metrics), disabled by default and one
//! branch per call when disabled — records every such decision keyed by
//! the rule's `(antecedent, consequent)` item ids, so the CLI `explain`
//! subcommand can replay the exact path afterwards.
//!
//! Rules are identified by raw item ids (`u32`); this crate knows nothing
//! about catalogs, so every renderer takes a `labeler` closure mapping an
//! id to its human label.
//!
//! Pruning uses *marking* semantics (a rule dominated by an itself-dead
//! rule is still removed), which makes chains the interesting case: the
//! recorder keeps **every** winner/loser edge — including kills of
//! already-dead rules (`effective: false`) — so
//! [`Provenance::render_explain`] can walk the full chain, e.g. "A lost
//! to B, and B itself lost to C".

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A rule's identity: sorted antecedent and consequent item ids.
pub type RuleKey = (Vec<u32>, Vec<u32>);

/// The metric inputs of one rule, as the recorder needs them.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleInfo {
    /// Antecedent item ids (sorted).
    pub antecedent: Vec<u32>,
    /// Consequent item ids (sorted).
    pub consequent: Vec<u32>,
    /// Absolute support count of the full itemset.
    pub support_count: u64,
    /// Rule support P(X, Y).
    pub support: f64,
    /// Rule confidence P(Y | X).
    pub confidence: f64,
    /// Rule lift.
    pub lift: f64,
}

impl RuleInfo {
    fn key(&self) -> RuleKey {
        (self.antecedent.clone(), self.consequent.clone())
    }
}

/// Why a candidate rule was dropped at generation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenFilter {
    /// Which threshold fired: `"lift"`, `"confidence"`, or `"support"`.
    pub metric: &'static str,
    /// The rule's value of that metric.
    pub value: f64,
    /// The configured floor it failed.
    pub threshold: f64,
}

/// Which side of a pruning decision a rule was on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneRole {
    /// This rule dominated the opponent.
    Winner,
    /// This rule was removed (or would have been, were it still alive).
    Loser,
}

/// One pairwise pruning decision, recorded on both participants.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneStep {
    /// Paper condition number (1–4).
    pub condition: u8,
    /// This rule's side of the decision.
    pub role: PruneRole,
    /// The other rule of the nested pair.
    pub opponent: RuleKey,
    /// Which comparison decided: `"lift"`, `"support"`, or
    /// `"lift+support"` (condition 2's two-part short-rule branch).
    pub branch: &'static str,
    /// The relaxation margin (`C_lift` or `C_supp`) used.
    pub margin: f64,
    /// Human-readable rendering of the comparison actually evaluated,
    /// e.g. `1.50 x 1.11 = 1.67 >= 1.33`.
    pub detail: String,
    /// Whether the loser was still alive when the decision fired. A
    /// `false` here is a marking-chain echo: the loser was already dead,
    /// but the edge still documents domination.
    pub effective: bool,
}

/// Everything recorded about one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleProvenance {
    /// The rule's metric inputs.
    pub info: RuleInfo,
    /// Set when the rule was dropped by a generation threshold.
    pub filtered: Option<GenFilter>,
    /// Pruning decisions this rule participated in, in evaluation order.
    pub steps: Vec<PruneStep>,
    /// Pairwise comparisons evaluated against this rule that decided
    /// nothing (neither branch of the condition fired).
    pub undecided_comparisons: u64,
    /// Final pruning verdict: `Some(true)` kept, `Some(false)` pruned,
    /// `None` when keyword pruning never saw the rule.
    pub kept: Option<bool>,
}

impl RuleProvenance {
    fn new(info: RuleInfo) -> RuleProvenance {
        RuleProvenance {
            info,
            filtered: None,
            steps: Vec::new(),
            undecided_comparisons: 0,
            kept: None,
        }
    }

    /// The first effective losing decision, if the rule was pruned.
    pub fn killed_by(&self) -> Option<&PruneStep> {
        self.steps
            .iter()
            .find(|s| s.role == PruneRole::Loser && s.effective)
    }
}

/// A cloneable handle to a provenance recorder; disabled (free) by
/// default, mirroring [`Metrics`](crate::Metrics).
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    sink: Option<Arc<Mutex<BTreeMap<RuleKey, RuleProvenance>>>>,
}

impl Provenance {
    /// A recording handle.
    pub fn enabled() -> Provenance {
        Provenance {
            sink: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// The no-op handle (same as `Provenance::default`).
    pub fn disabled() -> Provenance {
        Provenance::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, BTreeMap<RuleKey, RuleProvenance>>> {
        self.sink
            .as_ref()
            .map(|sink| sink.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Records a candidate rule seen at generation time; `filtered` names
    /// the threshold that dropped it (or `None` when it passed).
    pub fn record_candidate(&self, info: RuleInfo, filtered: Option<GenFilter>) {
        if let Some(mut map) = self.lock() {
            let entry = map
                .entry(info.key())
                .or_insert_with(|| RuleProvenance::new(info));
            entry.filtered = filtered;
        }
    }

    /// Records one pairwise pruning decision on both participants.
    #[allow(clippy::too_many_arguments)]
    pub fn record_decision(
        &self,
        condition: u8,
        branch: &'static str,
        margin: f64,
        detail: &str,
        winner: &RuleInfo,
        loser: &RuleInfo,
        effective: bool,
    ) {
        let Some(mut map) = self.lock() else {
            return;
        };
        let mut push = |me: &RuleInfo, role: PruneRole, opponent: &RuleInfo| {
            map.entry(me.key())
                .or_insert_with(|| RuleProvenance::new(me.clone()))
                .steps
                .push(PruneStep {
                    condition,
                    role,
                    opponent: opponent.key(),
                    branch,
                    margin,
                    detail: detail.to_string(),
                    effective,
                });
        };
        push(winner, PruneRole::Winner, loser);
        push(loser, PruneRole::Loser, winner);
    }

    /// Counts a pairwise comparison that decided nothing, on both rules.
    pub fn record_undecided(&self, a: &RuleInfo, b: &RuleInfo) {
        if let Some(mut map) = self.lock() {
            for info in [a, b] {
                map.entry(info.key())
                    .or_insert_with(|| RuleProvenance::new(info.clone()))
                    .undecided_comparisons += 1;
            }
        }
    }

    /// Records a rule's final pruning verdict.
    pub fn mark_kept(&self, info: &RuleInfo, kept: bool) {
        if let Some(mut map) = self.lock() {
            map.entry(info.key())
                .or_insert_with(|| RuleProvenance::new(info.clone()))
                .kept = Some(kept);
        }
    }

    /// The record for one rule key, if any decision touched it.
    pub fn get(&self, antecedent: &[u32], consequent: &[u32]) -> Option<RuleProvenance> {
        self.lock()?
            .get(&(antecedent.to_vec(), consequent.to_vec()))
            .cloned()
    }

    /// All records, sorted by rule key.
    pub fn records(&self) -> Vec<RuleProvenance> {
        self.lock()
            .map(|map| map.values().cloned().collect())
            .unwrap_or_default()
    }

    /// Serializes every record as one JSON object per line (JSONL), ids
    /// and labels both included. Schema documented in DESIGN.md §4.
    pub fn to_jsonl(&self, labeler: &dyn Fn(u32) -> String) -> String {
        let mut out = String::new();
        for record in self.records() {
            out.push_str(&record_to_json(&record, labeler));
            out.push('\n');
        }
        out
    }

    /// Renders the decision path for one rule as human-readable text,
    /// following winner edges through marking chains (a winner that was
    /// itself pruned gets its own indented explanation, recursively).
    ///
    /// Returns `None` when the rule was never recorded.
    pub fn render_explain(
        &self,
        antecedent: &[u32],
        consequent: &[u32],
        labeler: &dyn Fn(u32) -> String,
    ) -> Option<String> {
        let map = self.lock()?;
        let key = (antecedent.to_vec(), consequent.to_vec());
        map.get(&key)?;
        let mut out = String::new();
        let mut visited = Vec::new();
        render_chain(&map, &key, labeler, 0, &mut visited, &mut out);
        Some(out)
    }
}

fn render_key(key: &RuleKey, labeler: &dyn Fn(u32) -> String) -> String {
    let side = |items: &[u32]| {
        items
            .iter()
            .map(|&i| labeler(i))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!("{{{}}} => {{{}}}", side(&key.0), side(&key.1))
}

/// Renders one rule's record at `depth`, then recurses into the winner of
/// its fatal decision (marking chains). `visited` guards against cycles,
/// which cannot arise from the pruner but are cheap to rule out.
fn render_chain(
    map: &BTreeMap<RuleKey, RuleProvenance>,
    key: &RuleKey,
    labeler: &dyn Fn(u32) -> String,
    depth: usize,
    visited: &mut Vec<RuleKey>,
    out: &mut String,
) {
    const MAX_DEPTH: usize = 8;
    let pad = "  ".repeat(depth);
    let Some(record) = map.get(key) else {
        out.push_str(&format!(
            "{pad}{} (no recorded decisions)\n",
            render_key(key, labeler)
        ));
        return;
    };
    let info = &record.info;
    out.push_str(&format!(
        "{pad}rule {}\n{pad}  supp={:.4} conf={:.4} lift={:.4} (count={})\n",
        render_key(key, labeler),
        info.support,
        info.confidence,
        info.lift,
        info.support_count
    ));
    if let Some(filter) = &record.filtered {
        out.push_str(&format!(
            "{pad}  generation: dropped — {} {:.4} below threshold {:.4}\n",
            filter.metric, filter.value, filter.threshold
        ));
    }
    // A strong short rule can beat hundreds of longer ones; cap the win
    // listing (losses are always shown — they are the interesting part).
    const MAX_WINS: usize = 12;
    let mut wins_shown = 0usize;
    let mut wins_suppressed = 0usize;
    for step in &record.steps {
        if step.role == PruneRole::Winner {
            wins_shown += 1;
            if wins_shown > MAX_WINS {
                wins_suppressed += 1;
                continue;
            }
        }
        let role = match step.role {
            PruneRole::Winner => "beat",
            PruneRole::Loser => "LOST to",
        };
        let echo = if step.effective {
            ""
        } else {
            " [already dead]"
        };
        out.push_str(&format!(
            "{pad}  condition {} ({} branch, C={:.2}): {role} {} — {}{echo}\n",
            step.condition,
            step.branch,
            step.margin,
            render_key(&step.opponent, labeler),
            step.detail,
        ));
    }
    if wins_suppressed > 0 {
        out.push_str(&format!(
            "{pad}  ... and {wins_suppressed} more win(s) not shown\n"
        ));
    }
    if record.undecided_comparisons > 0 {
        out.push_str(&format!(
            "{pad}  {} pairwise comparison(s) decided nothing\n",
            record.undecided_comparisons
        ));
    }
    match record.kept {
        Some(true) => out.push_str(&format!("{pad}  verdict: KEPT\n")),
        Some(false) => {
            if let Some(fatal) = record.killed_by() {
                out.push_str(&format!(
                    "{pad}  verdict: PRUNED by condition {} (winner: {})\n",
                    fatal.condition,
                    render_key(&fatal.opponent, labeler)
                ));
                // Marking chains: explain the winner's own fate, which may
                // itself be "pruned" — that is exactly the chain operators
                // need to see.
                if depth < MAX_DEPTH && !visited.contains(&fatal.opponent) {
                    visited.push(key.clone());
                    let winner = fatal.opponent.clone();
                    if !visited.contains(&winner) {
                        out.push_str(&format!("{pad}  the winner's own fate:\n"));
                        render_chain(map, &winner, labeler, depth + 2, visited, out);
                    }
                }
            } else {
                out.push_str(&format!("{pad}  verdict: PRUNED\n"));
            }
        }
        None => {
            if record.filtered.is_some() {
                out.push_str(&format!("{pad}  verdict: never reached pruning\n"));
            } else {
                out.push_str(&format!(
                    "{pad}  verdict: not part of this keyword analysis\n"
                ));
            }
        }
    }
}

fn json_items(items: &[u32], labeler: &dyn Fn(u32) -> String) -> (String, String) {
    let ids = items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let labels = items
        .iter()
        .map(|&i| format!("\"{}\"", crate::json::escape(&labeler(i))))
        .collect::<Vec<_>>()
        .join(",");
    (format!("[{ids}]"), format!("[{labels}]"))
}

fn record_to_json(record: &RuleProvenance, labeler: &dyn Fn(u32) -> String) -> String {
    let info = &record.info;
    let (ante_ids, ante_labels) = json_items(&info.antecedent, labeler);
    let (cons_ids, cons_labels) = json_items(&info.consequent, labeler);
    let mut out = format!(
        "{{\"antecedent\":{ante_ids},\"consequent\":{cons_ids},\
         \"antecedent_labels\":{ante_labels},\"consequent_labels\":{cons_labels},\
         \"support_count\":{},\"support\":{},\"confidence\":{},\"lift\":{}",
        info.support_count,
        crate::json::f64_value(info.support),
        crate::json::f64_value(info.confidence),
        crate::json::f64_value(info.lift),
    );
    match &record.filtered {
        Some(f) => out.push_str(&format!(
            ",\"filtered\":{{\"metric\":\"{}\",\"value\":{},\"threshold\":{}}}",
            f.metric,
            crate::json::f64_value(f.value),
            crate::json::f64_value(f.threshold)
        )),
        None => out.push_str(",\"filtered\":null"),
    }
    out.push_str(",\"steps\":[");
    for (i, step) in record.steps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (op_ante, _) = json_items(&step.opponent.0, labeler);
        let (op_cons, _) = json_items(&step.opponent.1, labeler);
        out.push_str(&format!(
            "{{\"condition\":{},\"role\":\"{}\",\"opponent\":{{\"antecedent\":{op_ante},\"consequent\":{op_cons}}},\
             \"branch\":\"{}\",\"margin\":{},\"detail\":\"{}\",\"effective\":{}}}",
            step.condition,
            match step.role {
                PruneRole::Winner => "winner",
                PruneRole::Loser => "loser",
            },
            step.branch,
            crate::json::f64_value(step.margin),
            crate::json::escape(&step.detail),
            step.effective
        ));
    }
    out.push_str(&format!(
        "],\"undecided_comparisons\":{},\"kept\":{}}}",
        record.undecided_comparisons,
        match record.kept {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(ante: &[u32], cons: &[u32], lift: f64) -> RuleInfo {
        RuleInfo {
            antecedent: ante.to_vec(),
            consequent: cons.to_vec(),
            support_count: 10,
            support: 0.1,
            confidence: 0.5,
            lift,
        }
    }

    fn labels(i: u32) -> String {
        format!("item{i}")
    }

    #[test]
    fn disabled_records_nothing() {
        let p = Provenance::disabled();
        assert!(!p.is_enabled());
        p.record_candidate(info(&[0], &[1], 2.0), None);
        p.mark_kept(&info(&[0], &[1], 2.0), true);
        assert!(p.records().is_empty());
        assert!(p.get(&[0], &[1]).is_none());
        assert!(p.render_explain(&[0], &[1], &labels).is_none());
        assert_eq!(p.to_jsonl(&labels), "");
    }

    #[test]
    fn decisions_land_on_both_rules() {
        let p = Provenance::enabled();
        let winner = info(&[0], &[2], 3.0);
        let loser = info(&[0, 1], &[2], 3.2);
        p.record_decision(
            1,
            "lift",
            1.5,
            "1.50 x 3.00 = 4.50 >= 3.20",
            &winner,
            &loser,
            true,
        );
        let w = p.get(&[0], &[2]).unwrap();
        assert_eq!(w.steps[0].role, PruneRole::Winner);
        let l = p.get(&[0, 1], &[2]).unwrap();
        assert_eq!(l.steps[0].role, PruneRole::Loser);
        assert!(l.killed_by().is_some());
        assert_eq!(l.steps[0].opponent, (vec![0], vec![2]));
    }

    #[test]
    fn explain_renders_marking_chain() {
        // C kills B (B alive), B kills A: the chain A -> B -> C must all
        // appear in A's explanation.
        let p = Provenance::enabled();
        let a = info(&[0], &[9], 2.0);
        let b = info(&[0, 1], &[9], 2.1);
        let c = info(&[0, 1, 2], &[9], 2.2);
        p.record_decision(1, "support", 1.5, "s", &b, &a, true);
        p.record_decision(1, "lift", 1.5, "l", &c, &b, true);
        p.mark_kept(&a, false);
        p.mark_kept(&b, false);
        p.mark_kept(&c, true);
        let text = p.render_explain(&[0], &[9], &labels).unwrap();
        assert!(text.contains("LOST to {item0, item1} => {item9}"), "{text}");
        assert!(text.contains("the winner's own fate:"), "{text}");
        assert!(text.contains("{item0, item1, item2} => {item9}"), "{text}");
        assert!(text.contains("verdict: KEPT"), "{text}");
    }

    #[test]
    fn filtered_rules_explainable() {
        let p = Provenance::enabled();
        p.record_candidate(
            info(&[0], &[1], 1.2),
            Some(GenFilter {
                metric: "lift",
                value: 1.2,
                threshold: 1.5,
            }),
        );
        let text = p.render_explain(&[0], &[1], &labels).unwrap();
        assert!(text.contains("generation: dropped"), "{text}");
        assert!(text.contains("never reached pruning"), "{text}");
    }

    #[test]
    fn jsonl_one_line_per_rule_and_balanced() {
        let p = Provenance::enabled();
        let winner = info(&[0], &[2], 3.0);
        let loser = info(&[0, 1], &[2], 3.2);
        p.record_candidate(winner.clone(), None);
        p.record_candidate(loser.clone(), None);
        p.record_decision(1, "lift", 1.5, "d", &winner, &loser, true);
        p.mark_kept(&winner, true);
        p.mark_kept(&loser, false);
        let jsonl = p.to_jsonl(&labels);
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"antecedent_labels\":[\"item0\""), "{line}");
        }
        assert!(jsonl.contains("\"kept\":true"));
        assert!(jsonl.contains("\"kept\":false"));
    }

    #[test]
    fn undecided_comparisons_counted() {
        let p = Provenance::enabled();
        let a = info(&[0], &[2], 2.0);
        let b = info(&[0, 1], &[2], 9.0);
        p.record_undecided(&a, &b);
        p.record_undecided(&a, &b);
        assert_eq!(p.get(&[0], &[2]).unwrap().undecided_comparisons, 2);
    }

    #[test]
    fn handle_is_send_sync_and_shared() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Provenance>();
        let p = Provenance::enabled();
        let clone = p.clone();
        clone.record_candidate(info(&[3], &[4], 1.0), None);
        assert!(p.get(&[3], &[4]).is_some());
    }
}
