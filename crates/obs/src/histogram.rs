//! A bounded log2-bucketed duration histogram — the storage behind
//! [`Metrics::record`](crate::Metrics::record).
//!
//! The previous timer kept every raw sample (`Vec<Duration>`), which is
//! unbounded over a daemon's lifetime; this histogram is a fixed 64
//! buckets regardless of sample count. Bucketing is by power of two on
//! nanoseconds:
//!
//! * bucket 0 holds samples of 0..=1 ns;
//! * bucket `i` (1..=62) holds samples in `(2^(i-1), 2^i]` ns — so each
//!   bucket's inclusive upper bound is exactly `2^i` ns, which is what
//!   the OpenMetrics `le` label wants;
//! * bucket 63 is the overflow bucket for samples above `2^62` ns
//!   (~146 years — unreachable in practice, but total).
//!
//! `record` is O(1) (a leading-zeros count and two adds); `count`, `sum`
//! and `max` are exact; quantiles are bucket-boundary estimates — the
//! inclusive upper bound of the bucket holding the nearest-rank sample,
//! so an estimate is never below the exact nearest-rank value and never
//! more than one power-of-two boundary above it.

use std::time::Duration;

/// Number of buckets (fixed; see the module docs for the bucket scheme).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Index of the overflow bucket (samples above `2^62` ns).
const OVERFLOW: usize = HISTOGRAM_BUCKETS - 1;

/// A bounded log2-bucketed duration histogram. O(1) record, exact
/// count/sum/max, bucket-boundary quantile estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    /// Exact sum in nanoseconds (u128: cannot overflow on real inputs).
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Bucket index for a sample of `nanos`.
    fn index(nanos: u64) -> usize {
        if nanos <= 1 {
            0
        } else {
            // Bit length of nanos-1: the i with nanos in (2^(i-1), 2^i].
            let i = (u64::BITS - (nanos - 1).leading_zeros()) as usize;
            i.min(OVERFLOW)
        }
    }

    /// Inclusive upper bound of bucket `i`; `None` for the overflow
    /// bucket (conceptually +Inf).
    fn upper_bound(i: usize) -> Option<Duration> {
        (i < OVERFLOW).then(|| Duration::from_nanos(1u64 << i))
    }

    /// Records one sample. O(1).
    pub fn record(&mut self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += sample.as_nanos();
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Exact number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.sum_nanos).unwrap_or(u64::MAX))
    }

    /// Exact largest sample (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Bucket-boundary estimate of the `q`-quantile (nearest-rank): the
    /// inclusive upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// sample. The exact nearest-rank value `v` satisfies
    /// `v <= estimate < 2·v` (one log2 bucket boundary); for the
    /// overflow bucket the exact maximum is returned instead. Zero when
    /// the histogram is empty.
    pub fn quantile_estimate(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Self::upper_bound(i).unwrap_or_else(|| self.max());
            }
        }
        self.max()
    }

    /// Cumulative `(upper_bound, count_at_or_below)` pairs for the
    /// finite buckets, trimmed to the populated range (first nonzero
    /// bucket through the last nonzero finite bucket). Overflow samples
    /// appear only in the total [`Histogram::count`] — an exporter's
    /// `+Inf` bucket. Empty when no finite bucket is populated.
    pub fn cumulative_buckets(&self) -> Vec<(Duration, u64)> {
        let finite = &self.counts[..OVERFLOW];
        let Some(first) = finite.iter().position(|&c| c > 0) else {
            return Vec::new();
        };
        let last = finite.iter().rposition(|&c| c > 0).expect("nonzero seen");
        let mut cumulative: u64 = 0;
        (first..=last)
            .map(|i| {
                cumulative += self.counts[i];
                (Self::upper_bound(i).expect("finite bucket"), cumulative)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        // Boundary sample 2^i ns lands in bucket i (inclusive bound),
        // 2^i + 1 in bucket i + 1.
        for i in 1..20 {
            assert_eq!(Histogram::index(1 << i), i);
            assert_eq!(Histogram::index((1 << i) + 1), i + 1);
        }
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 0);
        assert_eq!(Histogram::index(u64::MAX), OVERFLOW);
    }

    #[test]
    fn count_sum_max_are_exact() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), Duration::from_millis(5050));
        assert_eq!(h.max(), Duration::from_millis(100));
    }

    #[test]
    fn quantile_estimate_is_within_one_bucket_of_exact() {
        let mut h = Histogram::new();
        let mut samples: Vec<u64> = (1..=100).map(|i| i * 7_919).collect(); // ns
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let estimate = h.quantile_estimate(q).as_nanos() as u64;
            assert!(
                exact <= estimate,
                "q={q}: exact {exact} > estimate {estimate}"
            );
            assert!(
                estimate < 2 * exact,
                "q={q}: estimate {estimate} >= 2x exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.quantile_estimate(0.5), Duration::ZERO);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_trim_and_accumulate() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(3)); // bucket 2: (2, 4]
        h.record(Duration::from_nanos(4)); // bucket 2
        h.record(Duration::from_nanos(100)); // bucket 7: (64, 128]
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 6, "{buckets:?}"); // buckets 2..=7
        assert_eq!(buckets[0], (Duration::from_nanos(4), 2));
        assert_eq!(buckets[1], (Duration::from_nanos(8), 2)); // cumulative carries
        assert_eq!(buckets[5], (Duration::from_nanos(128), 3));
        // Monotone non-decreasing counts, strictly increasing bounds.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn overflow_samples_count_but_stay_out_of_finite_buckets() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(10));
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000)); // overflow bucket
        assert_eq!(h.count(), 2);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().expect("finite bucket").1, 1);
        // Overflow quantile estimates fall back to the exact max.
        assert_eq!(h.quantile_estimate(1.0), h.max());
    }

    #[test]
    fn storage_is_fixed_size() {
        // The whole point: recording a million samples allocates nothing.
        let mut h = Histogram::new();
        for i in 0..1_000_000u64 {
            h.record(Duration::from_nanos(i));
        }
        assert_eq!(h.count(), 1_000_000);
        assert!(std::mem::size_of::<Histogram>() <= 8 * HISTOGRAM_BUCKETS + 64);
        assert!(h.cumulative_buckets().len() <= HISTOGRAM_BUCKETS);
    }
}
