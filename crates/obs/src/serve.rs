//! A minimal embedded HTTP/1.1 scrape endpoint (`irma watch --listen`).
//!
//! Hand-rolled on `std::net::TcpListener` — the workspace builds
//! offline, so no hyper/axum. The server exists to let Prometheus-style
//! collectors scrape a live daemon, which shapes everything about it:
//!
//! * **GET only, two-ish routes** — the handler callback maps a path to
//!   a body (`/metrics`, `/healthz` in the CLI); anything else is 404.
//! * **Connection cap** ([`ScrapeOptions::max_connections`]) — each
//!   connection is served by a short-lived thread; when the cap is
//!   reached new connections get an immediate `503 Retry-After` instead
//!   of queueing, so a scrape storm cannot pile up threads.
//! * **Read/write deadlines** ([`ScrapeOptions::read_timeout`]) — a
//!   client that connects and then stalls (slow-loris) holds a slot for
//!   at most the deadline, not forever; request heads are capped at 8
//!   KiB for the same reason.
//! * **Connection: close** — one request per connection. Scrapers poll
//!   on the order of seconds; keep-alive buys nothing and complicates
//!   the cap accounting.
//!
//! Responses carry `Content-Length` and the server half-closes after
//! writing, so well-behaved clients never block on EOF.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
pub const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// A parsed HTTP/1.1 request head: request line plus headers.
///
/// Produced by [`read_head`]; shared by the scrape endpoint here and the
/// full serving layer in `irma-serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target (path plus optional query string), as sent.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path with any query string stripped.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or("")
    }

    /// The query string (without the `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.path.split_once('?').map(|(_, q)| q)
    }
}

/// Why [`read_head`] could not produce a [`RequestHead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadError {
    /// The head exceeded [`MAX_REQUEST_HEAD`] before the blank line —
    /// answer `431 Request Header Fields Too Large`.
    TooLarge,
    /// The client closed (or stalled past the deadline) mid-head — just
    /// drop the connection.
    Closed,
}

/// Reads one bounded request head from `reader`.
///
/// Distinguishes cap exhaustion ([`HeadError::TooLarge`]) from an early
/// close ([`HeadError::Closed`]): when a `read_line` comes back empty or
/// unterminated *and* the [`MAX_REQUEST_HEAD`] budget is spent, the head
/// was truncated by the cap, not by the client. Callers must answer the
/// former with `431` — silently closing leaves the unread bytes to turn
/// the close into a TCP reset. Body bytes already pulled into `reader`'s
/// buffer stay there for the caller to consume.
pub fn read_head<R: BufRead>(reader: &mut R) -> Result<RequestHead, HeadError> {
    let mut head = reader.take(MAX_REQUEST_HEAD as u64);
    let mut request_line = String::new();
    match head.read_line(&mut request_line) {
        Ok(0) => return Err(HeadError::Closed),
        Ok(_) if !request_line.ends_with('\n') => {
            return Err(if head.limit() == 0 {
                HeadError::TooLarge
            } else {
                HeadError::Closed
            });
        }
        Ok(_) => {}
        Err(_) => return Err(HeadError::Closed),
    }
    let mut headers = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        match head.read_line(&mut line) {
            Ok(0) => {
                return Err(if head.limit() == 0 {
                    HeadError::TooLarge
                } else {
                    HeadError::Closed
                });
            }
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {
                if !line.ends_with('\n') {
                    return Err(if head.limit() == 0 {
                        HeadError::TooLarge
                    } else {
                        HeadError::Closed
                    });
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                }
            }
            Err(_) => return Err(HeadError::Closed),
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    Ok(RequestHead {
        method,
        path,
        headers,
    })
}

/// Writes one `Connection: close` HTTP/1.1 response with Content-Length.
///
/// `extra_headers` are emitted verbatim after Content-Type (e.g.
/// `("Retry-After", "1".to_string())`). Write errors are swallowed: the
/// peer may already be gone, and one response is all it was getting.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body.as_bytes()));
}

/// Answers `431 Request Header Fields Too Large` for a head that blew
/// the [`MAX_REQUEST_HEAD`] cap.
///
/// The client's surplus bytes are still queued in our receive buffer;
/// closing with them unread sends a TCP reset that can clobber the
/// response in flight. So after writing the 431, drain the remainder —
/// bounded by 64 KiB and a short deadline, so a client that streams
/// forever still earns its reset.
pub fn write_too_large(stream: &mut TcpStream) {
    write_response(
        stream,
        431,
        "Request Header Fields Too Large",
        "text/plain",
        &[],
        "request head exceeds 8 KiB\n",
    );
    let previous = stream.read_timeout().ok().flatten();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                if drained >= 64 * 1024 {
                    break;
                }
            }
        }
    }
    let _ = stream.set_read_timeout(previous);
}

/// A route response from the handler callback.
#[derive(Debug, Clone)]
pub struct ScrapeResponse {
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

/// The routing callback: path → response, or `None` for 404. Called on
/// a per-connection thread, so it must be `Send + Sync` and should stay
/// quick (it holds one of the capped connection slots while it runs).
pub type ScrapeHandler = Arc<dyn Fn(&str) -> Option<ScrapeResponse> + Send + Sync>;

/// Tunables for [`ScrapeServer::start_with`].
#[derive(Debug, Clone)]
pub struct ScrapeOptions {
    /// Connections served concurrently before new ones get 503.
    pub max_connections: usize,
    /// Per-connection read and write deadline.
    pub read_timeout: Duration,
}

impl Default for ScrapeOptions {
    fn default() -> ScrapeOptions {
        ScrapeOptions {
            max_connections: 8,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// The embedded scrape server; listening from [`ScrapeServer::start`]
/// until drop.
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `handler` with default limits until the server is dropped.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        handler: ScrapeHandler,
    ) -> std::io::Result<ScrapeServer> {
        ScrapeServer::start_with(addr, handler, ScrapeOptions::default())
    }

    /// [`ScrapeServer::start`] with explicit limits.
    pub fn start_with<A: ToSocketAddrs>(
        addr: A,
        handler: ScrapeHandler,
        options: ScrapeOptions,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::Builder::new()
            .name("irma-scrape".to_string())
            .spawn(move || accept_loop(listener, handler, options, accept_shutdown))?;
        Ok(ScrapeServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to
        // ourselves; if that fails the loop is already dying.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: ScrapeHandler,
    options: ScrapeOptions,
    shutdown: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let rejecting = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(options.read_timeout));
        let _ = stream.set_write_timeout(Some(options.read_timeout));
        // Claim a serving slot; over the cap, a (separately capped)
        // rejector thread answers 503 — it must read the request head
        // before closing, or the unread bytes turn the close into a TCP
        // reset and the client never sees the 503. Past both caps the
        // connection is simply dropped (a storm earns resets).
        if active.fetch_add(1, Ordering::AcqRel) >= options.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            if rejecting.fetch_add(1, Ordering::AcqRel) >= options.max_connections {
                rejecting.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let slot = Arc::clone(&rejecting);
            let spawned = thread::Builder::new()
                .name("irma-scrape-reject".to_string())
                .spawn(move || {
                    reject_connection(stream);
                    slot.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                rejecting.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        let handler = Arc::clone(&handler);
        let slot = Arc::clone(&active);
        let spawned = thread::Builder::new()
            .name("irma-scrape-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &handler);
                slot.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Over-cap path: drain the request head, answer 503, close. A head
/// that blows the cap earns 431 instead; an early close just drops.
fn reject_connection(stream: TcpStream) {
    let mut stream = stream;
    match read_head(&mut BufReader::new(&stream)) {
        Ok(_) => write_response(
            &mut stream,
            503,
            "Service Unavailable",
            "text/plain",
            &[("Retry-After", "1".to_string())],
            "",
        ),
        Err(HeadError::TooLarge) => write_too_large(&mut stream),
        Err(HeadError::Closed) => {}
    }
}

/// Reads one request head and writes one response. An early close or a
/// stalled read (timeout) just drops the connection; an oversized head
/// gets 431 so the close is clean on both sides.
fn serve_connection(stream: TcpStream, handler: &ScrapeHandler) {
    let mut stream = stream;
    let head = match read_head(&mut BufReader::new(&stream)) {
        Ok(head) => head,
        Err(HeadError::TooLarge) => {
            write_too_large(&mut stream);
            return;
        }
        Err(HeadError::Closed) => return,
    };
    if head.method != "GET" {
        write_response(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            &[("Allow", "GET".to_string())],
            "",
        );
        return;
    }
    // Ignore any query string: /metrics?foo=1 still scrapes.
    match handler(head.route()) {
        Some(response) => write_response(
            &mut stream,
            200,
            "OK",
            response.content_type,
            &[],
            &response.body,
        ),
        None => write_response(
            &mut stream,
            404,
            "Not Found",
            "text/plain",
            &[],
            "not found\n",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_handler() -> ScrapeHandler {
        Arc::new(|path| match path {
            "/metrics" => Some(ScrapeResponse {
                content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
                body: "# TYPE irma_up gauge\nirma_up 1\n# EOF\n".to_string(),
            }),
            "/healthz" => Some(ScrapeResponse {
                content_type: "application/json",
                body: "{\"status\":\"ok\"}".to_string(),
            }),
            _ => None,
        })
    }

    fn request(addr: SocketAddr, head: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(head.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        let metrics = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(
            metrics.contains("application/openmetrics-text"),
            "{metrics}"
        );
        assert!(metrics.ends_with("# EOF\n"), "{metrics}");
        let health = request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        // Query strings are ignored for routing.
        let q = request(addr, "GET /metrics?window=5 HTTP/1.1\r\n\r\n");
        assert!(q.starts_with("HTTP/1.1 200 OK\r\n"), "{q}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        let missing = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = request(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }

    #[test]
    fn over_cap_connections_get_503_and_slots_recover() {
        let server = ScrapeServer::start_with(
            "127.0.0.1:0",
            test_handler(),
            ScrapeOptions {
                max_connections: 1,
                read_timeout: Duration::from_millis(200),
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        // A slow-loris client: connects, sends nothing, holds the slot.
        let idle = TcpStream::connect(addr).expect("idle connect");
        // Give the accept loop a beat to claim the slot for it.
        thread::sleep(Duration::from_millis(50));
        let rejected = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(rejected.starts_with("HTTP/1.1 503"), "{rejected}");
        // After the read deadline evicts the idler, requests flow again.
        thread::sleep(Duration::from_millis(400));
        let served = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(served.starts_with("HTTP/1.1 200"), "{served}");
        drop(idle);
    }

    #[test]
    fn oversized_header_gets_431_not_a_reset() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        // A single header value larger than the whole 8 KiB head cap:
        // the old reader treated cap exhaustion as a clean end-of-head
        // and answered 200 while unread bytes were still in flight.
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
            "a".repeat(MAX_REQUEST_HEAD)
        );
        let response = request(addr, &huge);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        // The slot is released and normal requests still flow.
        let served = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(served.starts_with("HTTP/1.1 200"), "{served}");
    }

    #[test]
    fn read_head_distinguishes_truncation_from_early_close() {
        use std::io::Cursor;
        // Clean head parses with lowercased header names.
        let mut ok =
            Cursor::new(b"POST /v1/x?q=1 HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec());
        let head = read_head(&mut ok).expect("clean head");
        assert_eq!(head.method, "POST");
        assert_eq!(head.route(), "/v1/x");
        assert_eq!(head.query(), Some("q=1"));
        assert_eq!(head.header("content-length"), Some("3"));
        assert_eq!(head.header("Content-Length"), Some("3"));
        // Body bytes stay in the reader for the caller.
        let mut body = String::new();
        ok.read_to_string(&mut body).unwrap();
        assert_eq!(body, "abc");
        // EOF before the blank line, under the cap: early close.
        let mut closed = Cursor::new(b"GET / HTTP/1.1\r\nHost: x\r\n".to_vec());
        assert_eq!(read_head(&mut closed), Err(HeadError::Closed));
        // Cap spent before the blank line: truncation.
        let mut big = Vec::from(&b"GET / HTTP/1.1\r\nX-Pad: "[..]);
        big.resize(MAX_REQUEST_HEAD + 64, b'a');
        assert_eq!(read_head(&mut Cursor::new(big)), Err(HeadError::TooLarge));
    }

    #[test]
    fn drop_stops_the_listener() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // The port is released (or at least no longer accepts + serves).
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                s.read_to_string(&mut buf).map(|_| buf).unwrap_or_default()
            })
            .unwrap_or_default();
        assert!(
            !refused.contains("200 OK"),
            "server still serving: {refused}"
        );
    }
}
