//! A minimal embedded HTTP/1.1 scrape endpoint (`irma watch --listen`).
//!
//! Hand-rolled on `std::net::TcpListener` — the workspace builds
//! offline, so no hyper/axum. The server exists to let Prometheus-style
//! collectors scrape a live daemon, which shapes everything about it:
//!
//! * **GET only, two-ish routes** — the handler callback maps a path to
//!   a body (`/metrics`, `/healthz` in the CLI); anything else is 404.
//! * **Connection cap** ([`ScrapeOptions::max_connections`]) — each
//!   connection is served by a short-lived thread; when the cap is
//!   reached new connections get an immediate `503 Retry-After` instead
//!   of queueing, so a scrape storm cannot pile up threads.
//! * **Read/write deadlines** ([`ScrapeOptions::read_timeout`]) — a
//!   client that connects and then stalls (slow-loris) holds a slot for
//!   at most the deadline, not forever; request heads are capped at 8
//!   KiB for the same reason.
//! * **Connection: close** — one request per connection. Scrapers poll
//!   on the order of seconds; keep-alive buys nothing and complicates
//!   the cap accounting.
//!
//! Responses carry `Content-Length` and the server half-closes after
//! writing, so well-behaved clients never block on EOF.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// A route response from the handler callback.
#[derive(Debug, Clone)]
pub struct ScrapeResponse {
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

/// The routing callback: path → response, or `None` for 404. Called on
/// a per-connection thread, so it must be `Send + Sync` and should stay
/// quick (it holds one of the capped connection slots while it runs).
pub type ScrapeHandler = Arc<dyn Fn(&str) -> Option<ScrapeResponse> + Send + Sync>;

/// Tunables for [`ScrapeServer::start_with`].
#[derive(Debug, Clone)]
pub struct ScrapeOptions {
    /// Connections served concurrently before new ones get 503.
    pub max_connections: usize,
    /// Per-connection read and write deadline.
    pub read_timeout: Duration,
}

impl Default for ScrapeOptions {
    fn default() -> ScrapeOptions {
        ScrapeOptions {
            max_connections: 8,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// The embedded scrape server; listening from [`ScrapeServer::start`]
/// until drop.
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `handler` with default limits until the server is dropped.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        handler: ScrapeHandler,
    ) -> std::io::Result<ScrapeServer> {
        ScrapeServer::start_with(addr, handler, ScrapeOptions::default())
    }

    /// [`ScrapeServer::start`] with explicit limits.
    pub fn start_with<A: ToSocketAddrs>(
        addr: A,
        handler: ScrapeHandler,
        options: ScrapeOptions,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = thread::Builder::new()
            .name("irma-scrape".to_string())
            .spawn(move || accept_loop(listener, handler, options, accept_shutdown))?;
        Ok(ScrapeServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to
        // ourselves; if that fails the loop is already dying.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: ScrapeHandler,
    options: ScrapeOptions,
    shutdown: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let rejecting = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(options.read_timeout));
        let _ = stream.set_write_timeout(Some(options.read_timeout));
        // Claim a serving slot; over the cap, a (separately capped)
        // rejector thread answers 503 — it must read the request head
        // before closing, or the unread bytes turn the close into a TCP
        // reset and the client never sees the 503. Past both caps the
        // connection is simply dropped (a storm earns resets).
        if active.fetch_add(1, Ordering::AcqRel) >= options.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            if rejecting.fetch_add(1, Ordering::AcqRel) >= options.max_connections {
                rejecting.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let slot = Arc::clone(&rejecting);
            let spawned = thread::Builder::new()
                .name("irma-scrape-reject".to_string())
                .spawn(move || {
                    reject_connection(stream);
                    slot.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                rejecting.fetch_sub(1, Ordering::AcqRel);
            }
            continue;
        }
        let handler = Arc::clone(&handler);
        let slot = Arc::clone(&active);
        let spawned = thread::Builder::new()
            .name("irma-scrape-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &handler);
                slot.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Reads one request head (bounded; deadline from the socket timeout).
/// Returns the request line, or `None` on any read failure.
fn read_request_head(stream: &TcpStream) -> Option<String> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    let mut head = (&mut reader).take(MAX_REQUEST_HEAD as u64);
    if head.read_line(&mut request_line).is_err() {
        return None;
    }
    // Drain the headers (bounded by the same take) so the client sees
    // the response rather than a reset mid-send.
    let mut line = String::new();
    loop {
        line.clear();
        match head.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
    Some(request_line)
}

/// Over-cap path: drain the request, answer 503, close.
fn reject_connection(stream: TcpStream) {
    if read_request_head(&stream).is_none() {
        return;
    }
    let mut stream = stream;
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\
          Content-Length: 0\r\nConnection: close\r\n\r\n",
    );
}

/// Reads one request head and writes one response. Any read error
/// (timeout included) just drops the connection.
fn serve_connection(stream: TcpStream, handler: &ScrapeHandler) {
    let Some(request_line) = read_request_head(&stream) else {
        return;
    };
    let mut stream = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        let _ = stream.write_all(
            b"HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\n\
              Content-Length: 0\r\nConnection: close\r\n\r\n",
        );
        return;
    }
    // Ignore any query string: /metrics?foo=1 still scrapes.
    let path = path.split('?').next().unwrap_or("");
    match handler(path) {
        Some(response) => {
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
                 Connection: close\r\n\r\n",
                response.content_type,
                response.body.len()
            );
            let _ = stream
                .write_all(head.as_bytes())
                .and_then(|_| stream.write_all(response.body.as_bytes()));
        }
        None => {
            let body = "not found\n";
            let head = format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            let _ = stream
                .write_all(head.as_bytes())
                .and_then(|_| stream.write_all(body.as_bytes()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_handler() -> ScrapeHandler {
        Arc::new(|path| match path {
            "/metrics" => Some(ScrapeResponse {
                content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
                body: "# TYPE irma_up gauge\nirma_up 1\n# EOF\n".to_string(),
            }),
            "/healthz" => Some(ScrapeResponse {
                content_type: "application/json",
                body: "{\"status\":\"ok\"}".to_string(),
            }),
            _ => None,
        })
    }

    fn request(addr: SocketAddr, head: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(head.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        let metrics = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(
            metrics.contains("application/openmetrics-text"),
            "{metrics}"
        );
        assert!(metrics.ends_with("# EOF\n"), "{metrics}");
        let health = request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        // Query strings are ignored for routing.
        let q = request(addr, "GET /metrics?window=5 HTTP/1.1\r\n\r\n");
        assert!(q.starts_with("HTTP/1.1 200 OK\r\n"), "{q}");
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_405() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        let missing = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = request(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }

    #[test]
    fn over_cap_connections_get_503_and_slots_recover() {
        let server = ScrapeServer::start_with(
            "127.0.0.1:0",
            test_handler(),
            ScrapeOptions {
                max_connections: 1,
                read_timeout: Duration::from_millis(200),
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        // A slow-loris client: connects, sends nothing, holds the slot.
        let idle = TcpStream::connect(addr).expect("idle connect");
        // Give the accept loop a beat to claim the slot for it.
        thread::sleep(Duration::from_millis(50));
        let rejected = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(rejected.starts_with("HTTP/1.1 503"), "{rejected}");
        // After the read deadline evicts the idler, requests flow again.
        thread::sleep(Duration::from_millis(400));
        let served = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(served.starts_with("HTTP/1.1 200"), "{served}");
        drop(idle);
    }

    #[test]
    fn drop_stops_the_listener() {
        let server = ScrapeServer::start("127.0.0.1:0", test_handler()).expect("bind");
        let addr = server.local_addr();
        drop(server);
        // The port is released (or at least no longer accepts + serves).
        let refused = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                s.read_to_string(&mut buf).map(|_| buf).unwrap_or_default()
            })
            .unwrap_or_default();
        assert!(
            !refused.contains("200 OK"),
            "server still serving: {refused}"
        );
    }
}
