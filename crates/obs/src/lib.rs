//! # irma-obs — pipeline observability
//!
//! A lightweight metrics layer the IRMA crates thread through the
//! `encode -> mine -> rules` pipeline:
//!
//! * [`Metrics`] — a registry of monotonic counters, last-write gauges,
//!   and bounded log2-bucketed timer histograms ([`Histogram`]: O(1)
//!   record, fixed memory, exact count/sum/max, bucket-boundary p50/p95
//!   estimates);
//! * [`Metrics::span`] — an RAII [`StageSpan`] that times one pipeline
//!   stage and, on drop, appends a structured [`StageEvent`] (stage name,
//!   wall time, input/output cardinalities) to the pipeline trace;
//! * [`Snapshot`] — a point-in-time copy with a hand-rolled JSON exporter
//!   ([`Snapshot::to_json`]) and a human summary table
//!   ([`Snapshot::render_table`]) for the CLI's `--metrics` /
//!   `--verbose-stages` flags.
//!
//! Three extensions layer on top of the flat registry:
//!
//! * **Hierarchical spans** — every span carries an id and an optional
//!   parent (implicit: the innermost still-open span on this registry;
//!   explicit: [`StageSpan::child`] for parallel fan-out, where "last
//!   open" is ambiguous across threads), so traces nest
//!   (`mine.mine` > `mine.conditional_tree`).
//! * **Streaming event log** — [`Metrics::with_event_sink`] attaches an
//!   [`EventSink`] that writes `span_open` / `span_close` / `counter`
//!   JSONL lines *live* (see [`event`](EventSink) docs for the schema),
//!   so long runs can be tailed instead of snapshotted post-mortem.
//! * **[`Provenance`]** — a per-rule decision recorder (generation
//!   thresholds, pruning winner/loser edges) backing the CLI `explain`
//!   subcommand.
//!
//! The default sink is **disabled**: [`Metrics::default`] carries no
//! allocation and every method is a branch on `None`, so instrumented
//! library code pays nothing when nobody asked for metrics. Cloning a
//! [`Metrics`] shares the underlying sink, which is how one registry
//! observes every stage of a run (including rayon-parallel ones — the
//! sink is `Send + Sync`).
//!
//! ```
//! use irma_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! {
//!     let mut span = metrics.span("mine.tree_build");
//!     span.field("transactions_in", 850_000);
//! } // drop records the wall time + one StageEvent
//! metrics.incr("prune.condition1", 3);
//! let snapshot = metrics.snapshot();
//! assert_eq!(snapshot.stages[0].stage, "mine.tree_build");
//! assert!(snapshot.to_json().contains("\"prune.condition1\": 3"));
//! ```

#![warn(missing_docs)]

mod event;
mod histogram;
mod json;
mod openmetrics;
mod provenance;
pub mod serve;

pub use event::EventSink;
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use provenance::{
    GenFilter, Provenance, PruneRole, PruneStep, RuleInfo, RuleKey, RuleProvenance,
};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One structured event per pipeline stage: what ran, for how long, and
/// the cardinalities that flowed through it (transactions in, itemsets
/// out, rules pruned per condition, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageEvent {
    /// Registry-unique span id (1-based, in open order).
    pub id: u64,
    /// The enclosing span's id, or `None` for a root span. Implicitly the
    /// innermost span still open when this one opened; explicitly set by
    /// [`StageSpan::child`].
    pub parent: Option<u64>,
    /// Stage name, dot-namespaced by crate (`prep.fit`, `mine.mine`, ...).
    pub stage: String,
    /// Wall-clock time spent inside the stage's span.
    pub wall: Duration,
    /// Named cardinalities, in the order the stage reported them.
    pub fields: Vec<(String, u64)>,
}

impl StageEvent {
    /// Looks up a cardinality by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Everything a recording sink accumulates.
#[derive(Debug)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, Histogram>,
    /// Last scheduler-counter snapshot pushed via [`Metrics::set_sched`]
    /// (last-write-wins, like a gauge).
    sched: Option<SchedStats>,
    stages: Vec<StageEvent>,
    /// Last span id handed out (ids are 1-based so `parent: 0` never
    /// appears in a trace).
    next_span: u64,
    /// Stack of currently open span ids; the top is the implicit parent
    /// for the next `span()` call on this registry.
    open_spans: Vec<u64>,
    /// Monotonic event sequence number for the JSONL log.
    seq: u64,
    /// Registry creation time; event `offset_us` values are relative to
    /// this, so readers never depend on wall-clock timestamps.
    start: Instant,
    /// Random id distinguishing this run's events in a shared trace file.
    run_id: String,
    /// Optional live JSONL event log.
    sink: Option<EventSink>,
    /// Event-log lines that failed to write (disk full, broken pipe).
    /// Nonzero means the JSONL trace is incomplete, so the snapshot is
    /// flagged degraded.
    write_errors: u64,
    /// Set by [`Metrics::mark_degraded`]: the run completed, but only
    /// after the degradation ladder relaxed its mining knobs.
    degraded: bool,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            timers: BTreeMap::new(),
            sched: None,
            stages: Vec::new(),
            next_span: 0,
            open_spans: Vec::new(),
            seq: 0,
            start: Instant::now(),
            run_id: event::fresh_run_id(),
            sink: None,
            write_errors: 0,
            degraded: false,
        }
    }
}

impl Registry {
    /// Writes one event line to the attached sink, if any, stamping the
    /// shared envelope (`event`, `run`, `seq`, `offset_us`).
    fn emit_event(&mut self, kind: &str, body: &str) {
        if self.sink.is_none() {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        let offset_us = self.start.elapsed().as_micros() as u64;
        let line = format!(
            "{{\"event\":\"{kind}\",\"run\":\"{}\",\"seq\":{seq},\"offset_us\":{offset_us},{body}}}",
            self.run_id
        );
        if let Some(sink) = self.sink.as_mut() {
            if !sink.emit(&line) {
                self.write_errors += 1;
            }
        }
    }
}

/// A cloneable handle to a metrics sink; the pipeline's instrumentation
/// point.
///
/// The default handle is a **no-op**: nothing is allocated and every
/// method returns after one `Option` check, so library code can take
/// `&Metrics` unconditionally. [`Metrics::enabled`] creates a recording
/// sink shared by all clones of the handle.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<Mutex<Registry>>>,
}

impl Metrics {
    /// A recording sink.
    pub fn enabled() -> Metrics {
        Metrics {
            sink: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// The no-op sink (same as [`Metrics::default`]).
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Registry>> {
        // A poisoned registry still holds consistent counters; keep
        // recording rather than losing the whole run's metrics.
        self.sink
            .as_ref()
            .map(|sink| sink.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attaches a live JSONL event log to this handle's registry,
    /// enabling the handle first if it was disabled. All clones share the
    /// sink; events start flowing immediately.
    pub fn with_event_sink(self, sink: EventSink) -> Metrics {
        let metrics = if self.is_enabled() {
            self
        } else {
            Metrics::enabled()
        };
        if let Some(mut reg) = metrics.lock() {
            reg.sink = Some(sink);
        }
        metrics
    }

    /// The registry's run id (stamped on every event line); empty on a
    /// disabled handle.
    pub fn run_id(&self) -> String {
        self.lock()
            .map(|reg| reg.run_id.clone())
            .unwrap_or_default()
    }

    /// Adds `by` to a monotonic counter.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(mut reg) = self.lock() {
            let total = {
                let slot = reg.counters.entry(name.to_string()).or_insert(0);
                *slot += by;
                *slot
            };
            reg.emit_event(
                "counter",
                &format!(
                    "\"name\":\"{}\",\"by\":{by},\"total\":{total}",
                    json::escape(name)
                ),
            );
        }
    }

    /// Sets a last-write-wins gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut reg) = self.lock() {
            reg.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one duration sample into a bounded [`Histogram`] timer.
    /// O(1); a timer's memory never grows with sample count.
    pub fn record(&self, name: &str, sample: Duration) {
        if let Some(mut reg) = self.lock() {
            reg.timers
                .entry(name.to_string())
                .or_default()
                .record(sample);
        }
    }

    /// Replaces the scheduler-counter snapshot carried by the next
    /// [`Metrics::snapshot`] (last-write-wins, like a gauge — callers
    /// push a fresh [`SchedStats`] right before snapshotting).
    pub fn set_sched(&self, sched: SchedStats) {
        if let Some(mut reg) = self.lock() {
            reg.sched = Some(sched);
        }
    }

    /// Opens an RAII span for one pipeline stage. Dropping the span
    /// records its wall time under the timer `stage` and appends a
    /// [`StageEvent`] carrying every [`StageSpan::field`] set meanwhile.
    ///
    /// The span's parent is the innermost span still open on this
    /// registry, which is right for single-threaded nesting; spans opened
    /// from parallel workers should use [`StageSpan::child`] instead.
    ///
    /// On a disabled handle the span is inert (no clock read).
    pub fn span(&self, stage: &str) -> StageSpan {
        self.span_with_parent(stage, None)
    }

    fn span_with_parent(&self, stage: &str, explicit_parent: Option<u64>) -> StageSpan {
        let Some(mut reg) = self.lock() else {
            return StageSpan { state: None };
        };
        reg.next_span += 1;
        let id = reg.next_span;
        let parent = explicit_parent.or_else(|| reg.open_spans.last().copied());
        reg.open_spans.push(id);
        reg.emit_event(
            "span_open",
            &format!(
                "\"span\":{id},\"parent\":{},\"stage\":\"{}\"",
                parent.map_or("null".to_string(), |p| p.to_string()),
                json::escape(stage)
            ),
        );
        drop(reg);
        StageSpan {
            state: Some(SpanState {
                metrics: self.clone(),
                stage: stage.to_string(),
                start: Instant::now(),
                fields: Vec::new(),
                id,
                parent,
            }),
        }
    }

    /// Flags this run as degraded: it completed, but only after the
    /// degradation ladder relaxed its mining knobs (or some other
    /// best-effort fallback fired). Sticky for the registry's lifetime so
    /// a degraded answer can never be mistaken for a full-fidelity one.
    pub fn mark_degraded(&self) {
        if let Some(mut reg) = self.lock() {
            reg.degraded = true;
        }
    }

    /// Number of JSONL trace lines that failed to write (0 on a disabled
    /// handle or when no event sink is attached).
    pub fn trace_log_write_errors(&self) -> u64 {
        self.lock().map(|reg| reg.write_errors).unwrap_or(0)
    }

    /// Whether the snapshot would carry `degraded: true` — either
    /// [`Metrics::mark_degraded`] was called or event-log writes failed.
    pub fn is_degraded(&self) -> bool {
        self.lock()
            .map(|reg| reg.degraded || reg.write_errors > 0)
            .unwrap_or(false)
    }

    /// A point-in-time copy of everything recorded so far. Empty (but
    /// valid) on a disabled handle.
    pub fn snapshot(&self) -> Snapshot {
        let Some(reg) = self.lock() else {
            return Snapshot::default();
        };
        let mut counters = reg.counters.clone();
        if reg.write_errors > 0 {
            // Materialized on demand so the common error-free run keeps
            // its counter list (and the tests pinning it) unchanged.
            counters.insert("trace_log_write_errors_total".to_string(), reg.write_errors);
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: reg.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            timers: reg
                .timers
                .iter()
                .map(|(name, hist)| TimerStats::from_histogram(name.clone(), hist))
                .collect(),
            sched: reg.sched.clone(),
            stages: reg.stages.clone(),
            run_id: reg.run_id.clone(),
            degraded: reg.degraded || reg.write_errors > 0,
        }
    }
}

struct SpanState {
    metrics: Metrics,
    stage: String,
    start: Instant,
    fields: Vec<(String, u64)>,
    id: u64,
    parent: Option<u64>,
}

impl std::fmt::Debug for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState")
            .field("stage", &self.stage)
            .field("fields", &self.fields)
            .finish_non_exhaustive()
    }
}

/// RAII timer for one pipeline stage; see [`Metrics::span`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct StageSpan {
    state: Option<SpanState>,
}

impl StageSpan {
    /// Attaches a named cardinality to the stage's [`StageEvent`]
    /// (no-op on a disabled handle).
    pub fn field(&mut self, name: &str, value: u64) {
        if let Some(state) = &mut self.state {
            state.fields.push((name.to_string(), value));
        }
    }

    /// Opens a child span with `self` as its explicit parent. Use this
    /// from parallel workers, where the registry's "innermost open span"
    /// is ambiguous across threads (inert when `self` is inert).
    pub fn child(&self, stage: &str) -> StageSpan {
        match &self.state {
            Some(state) => state.metrics.span_with_parent(stage, Some(state.id)),
            None => StageSpan { state: None },
        }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(SpanState {
            metrics,
            stage,
            start,
            fields,
            id,
            parent,
        }) = self.state.take()
        else {
            return;
        };
        let wall = start.elapsed();
        let Some(mut reg) = metrics.lock() else {
            return;
        };
        if let Some(pos) = reg.open_spans.iter().rposition(|&open| open == id) {
            reg.open_spans.remove(pos);
        }
        let fields_json = fields
            .iter()
            .map(|(name, value)| format!("\"{}\":{value}", json::escape(name)))
            .collect::<Vec<_>>()
            .join(",");
        reg.emit_event(
            "span_close",
            &format!(
                "\"span\":{id},\"stage\":\"{}\",\"wall_us\":{},\"fields\":{{{fields_json}}}",
                json::escape(&stage),
                wall.as_micros()
            ),
        );
        reg.timers.entry(stage.clone()).or_default().record(wall);
        reg.stages.push(StageEvent {
            id,
            parent,
            stage,
            wall,
            fields,
        });
    }
}

/// Summary statistics for one timer, computed from its bounded
/// [`Histogram`]. Count, total and max are exact; p50/p95 are
/// bucket-boundary estimates (the inclusive upper bound of the log2
/// bucket holding the nearest-rank sample, so never below the exact
/// value and never a full power-of-two boundary above it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerStats {
    /// Timer name.
    pub name: String,
    /// Number of samples recorded (exact).
    pub count: usize,
    /// Sum of all samples (exact).
    pub total: Duration,
    /// Median estimate (upper bound of the nearest-rank sample's bucket).
    pub p50: Duration,
    /// 95th-percentile estimate (same bucket-boundary scheme).
    pub p95: Duration,
    /// Largest sample (exact).
    pub max: Duration,
    /// Cumulative histogram buckets, trimmed to the populated range:
    /// `(inclusive upper bound, samples at or below it)`. The implicit
    /// final `+Inf` bucket equals `count`.
    pub buckets: Vec<(Duration, u64)>,
}

impl TimerStats {
    fn from_histogram(name: String, hist: &Histogram) -> TimerStats {
        TimerStats {
            name,
            count: hist.count() as usize,
            total: hist.sum(),
            p50: hist.quantile_estimate(0.50),
            p95: hist.quantile_estimate(0.95),
            max: hist.max(),
            buckets: hist.cumulative_buckets(),
        }
    }
}

/// One worker's scheduler counters, as surfaced through the snapshot
/// (`irma_sched_*` families with a `worker` label in OpenMetrics). The
/// producer is the work-stealing runtime; `irma-obs` only carries the
/// numbers, so this crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedWorker {
    /// Worker index (the `worker` label value).
    pub worker: usize,
    /// Jobs this worker executed.
    pub jobs_executed: u64,
    /// Jobs pushed onto this worker's own deque.
    pub local_pushes: u64,
    /// Steal probes that took an element.
    pub steal_successes: u64,
    /// Steal probes that found the victim empty.
    pub steal_empty: u64,
    /// Steal probes that lost a race and re-probed.
    pub steal_retries: u64,
    /// Jobs taken from the shared injector.
    pub injector_pops: u64,
    /// Idle episodes that reached the scheduler's sleep call.
    pub parks: u64,
    /// Parks that actually blocked and were woken.
    pub wakes: u64,
    /// Maximum depth this worker's deque reached.
    pub deque_high_water: u64,
}

impl SchedWorker {
    /// Total steal probes: successes + empty + retries.
    pub fn steal_attempts(&self) -> u64 {
        self.steal_successes + self.steal_empty + self.steal_retries
    }
}

/// A point-in-time scheduler-counter snapshot ([`Metrics::set_sched`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Jobs pushed onto the shared injector (external submissions; not
    /// attributable to a worker).
    pub injector_pushes: u64,
    /// Per-worker counters.
    pub workers: Vec<SchedWorker>,
}

/// A point-in-time copy of a [`Metrics`] sink; see [`Metrics::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Timer statistics, sorted by name.
    pub timers: Vec<TimerStats>,
    /// Scheduler counters, when the caller pushed a snapshot via
    /// [`Metrics::set_sched`] (`None` otherwise).
    pub sched: Option<SchedStats>,
    /// Pipeline trace: one [`StageEvent`] per completed span, in
    /// completion order.
    pub stages: Vec<StageEvent>,
    /// The registry's run id (ties the snapshot to its JSONL trace);
    /// empty for a default/disabled snapshot.
    pub run_id: String,
    /// True when this run's answer is best-effort: the degradation
    /// ladder relaxed the mining knobs, or trace-log writes failed (see
    /// the `trace_log_write_errors_total` counter).
    pub degraded: bool,
}

impl Snapshot {
    /// The first stage event with this name, if any stage recorded it.
    pub fn stage(&self, name: &str) -> Option<&StageEvent> {
        self.stages.iter().find(|e| e.stage == name)
    }

    /// Serializes the snapshot as a JSON object (see `json.rs` for the
    /// schema, mirrored in DESIGN.md).
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }

    /// Serializes counters/gauges/timers in OpenMetrics text format
    /// (`# TYPE` lines, `_total` counters, `_seconds` summaries, terminal
    /// `# EOF`); see `openmetrics.rs` for the mapping, mirrored in
    /// DESIGN.md.
    pub fn to_openmetrics(&self) -> String {
        openmetrics::snapshot_to_openmetrics(self)
    }

    /// Span nesting depth of one stage event (0 for roots), following
    /// parent links through the snapshot's trace.
    fn stage_depth(&self, event: &StageEvent) -> usize {
        let mut depth = 0;
        let mut parent = event.parent;
        while let Some(id) = parent {
            depth += 1;
            if depth >= 16 {
                break; // cycles cannot arise, but stay defensive
            }
            parent = self
                .stages
                .iter()
                .find(|e| e.id == id)
                .and_then(|e| e.parent);
        }
        depth
    }

    /// Renders the pipeline trace plus counters as an aligned,
    /// human-readable table (the CLI's `--verbose-stages` output); nested
    /// spans indent under their parent.
    pub fn render_table(&self) -> String {
        let mut out = String::from("stage                        wall          details\n");
        for event in &self.stages {
            let fields = event
                .fields
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" ");
            let name = format!("{}{}", "  ".repeat(self.stage_depth(event)), event.stage);
            out.push_str(&format!(
                "{:<28} {:>10}    {}\n",
                name,
                format_duration(event.wall),
                fields
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} = {value:.4}\n"));
            }
        }
        if self.degraded {
            out.push_str(
                "DEGRADED: best-effort result (relaxed knobs or trace-log write errors)\n",
            );
        }
        out
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let metrics = Metrics::default();
        assert!(!metrics.is_enabled());
        metrics.incr("c", 5);
        metrics.gauge("g", 1.5);
        metrics.record("t", Duration::from_millis(3));
        let mut span = metrics.span("stage");
        span.field("n", 7);
        drop(span);
        assert_eq!(metrics.snapshot(), Snapshot::default());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let metrics = Metrics::enabled();
        metrics.incr("b", 1);
        metrics.incr("a", 2);
        metrics.incr("b", 3);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 4)]
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let metrics = Metrics::enabled();
        metrics.gauge("drift", 0.2);
        metrics.gauge("drift", 0.9);
        assert_eq!(metrics.snapshot().gauges, vec![("drift".to_string(), 0.9)]);
    }

    #[test]
    fn timer_percentiles_bucket_boundary_estimates() {
        let metrics = Metrics::enabled();
        for ms in 1..=100u64 {
            metrics.record("t", Duration::from_millis(ms));
        }
        let snap = metrics.snapshot();
        let t = &snap.timers[0];
        assert_eq!(t.count, 100);
        // Exact nearest-rank p50 is 50 ms (5e7 ns, in bucket (2^25, 2^26]),
        // so the bucket-boundary estimate is 2^26 ns; p95's exact 95 ms
        // lands in (2^26, 2^27].
        assert_eq!(t.p50, Duration::from_nanos(1 << 26));
        assert_eq!(t.p95, Duration::from_nanos(1 << 27));
        // Estimates bound the exact values from above, within one bucket.
        assert!(t.p50 >= Duration::from_millis(50) && t.p50 < Duration::from_millis(100));
        assert!(t.p95 >= Duration::from_millis(95) && t.p95 < Duration::from_millis(190));
        // Count, max and total stay exact.
        assert_eq!(t.max, Duration::from_millis(100));
        assert_eq!(t.total, Duration::from_millis(5050));
        // The cumulative buckets end at the bucket holding the max, with
        // the full count.
        let last = t.buckets.last().expect("populated buckets");
        assert_eq!(last.1, 100);
        assert!(last.0 >= t.max);
    }

    #[test]
    fn single_sample_percentiles() {
        let metrics = Metrics::enabled();
        metrics.record("t", Duration::from_millis(7));
        let snap = metrics.snapshot();
        // 7 ms = 7e6 ns lands in (2^22, 2^23]; both quantile estimates
        // are that bucket's upper bound.
        assert_eq!(snap.timers[0].p50, Duration::from_nanos(1 << 23));
        assert_eq!(snap.timers[0].p95, Duration::from_nanos(1 << 23));
        assert_eq!(snap.timers[0].max, Duration::from_millis(7));
    }

    #[test]
    fn set_sched_last_write_wins_and_lands_in_snapshot() {
        let metrics = Metrics::enabled();
        assert_eq!(metrics.snapshot().sched, None);
        metrics.set_sched(SchedStats {
            injector_pushes: 1,
            workers: vec![SchedWorker::default()],
        });
        metrics.set_sched(SchedStats {
            injector_pushes: 2,
            workers: vec![
                SchedWorker {
                    worker: 0,
                    jobs_executed: 5,
                    steal_successes: 1,
                    steal_empty: 2,
                    steal_retries: 3,
                    ..SchedWorker::default()
                },
                SchedWorker {
                    worker: 1,
                    ..SchedWorker::default()
                },
            ],
        });
        let sched = metrics.snapshot().sched.expect("sched snapshot");
        assert_eq!(sched.injector_pushes, 2);
        assert_eq!(sched.workers.len(), 2);
        assert_eq!(sched.workers[0].steal_attempts(), 6);
        // Disabled handles ignore the push.
        let disabled = Metrics::disabled();
        disabled.set_sched(SchedStats::default());
        assert_eq!(disabled.snapshot().sched, None);
    }

    #[test]
    fn span_emits_event_and_timer() {
        let metrics = Metrics::enabled();
        {
            let mut span = metrics.span("mine.tree_build");
            span.field("transactions_in", 42);
            span.field("frequent_items", 9);
        }
        let snap = metrics.snapshot();
        let event = snap.stage("mine.tree_build").expect("event recorded");
        assert_eq!(event.field("transactions_in"), Some(42));
        assert_eq!(event.field("frequent_items"), Some(9));
        assert_eq!(event.field("nope"), None);
        assert!(snap.timers.iter().any(|t| t.name == "mine.tree_build"));
    }

    #[test]
    fn clones_share_one_sink() {
        let metrics = Metrics::enabled();
        let clone = metrics.clone();
        clone.incr("shared", 1);
        metrics.incr("shared", 1);
        assert_eq!(metrics.snapshot().counters[0].1, 2);
    }

    #[test]
    fn spans_record_in_completion_order() {
        let metrics = Metrics::enabled();
        let outer = metrics.span("outer");
        let inner = metrics.span("inner");
        drop(inner);
        drop(outer);
        let snapshot = metrics.snapshot();
        let names: Vec<&str> = snapshot.stages.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn nested_spans_get_implicit_parents() {
        let metrics = Metrics::enabled();
        let outer = metrics.span("outer");
        let inner = metrics.span("inner");
        drop(inner);
        drop(outer);
        let snapshot = metrics.snapshot();
        let outer = snapshot.stage("outer").unwrap();
        let inner = snapshot.stage("inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert!(inner.id > outer.id);
    }

    #[test]
    fn sibling_after_drop_is_not_a_child() {
        let metrics = Metrics::enabled();
        drop(metrics.span("first"));
        drop(metrics.span("second"));
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.stage("second").unwrap().parent, None);
    }

    #[test]
    fn child_spans_carry_explicit_parent_across_threads() {
        let metrics = Metrics::enabled();
        {
            let span = metrics.span("mine.mine");
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let span = &span;
                    scope.spawn(move || {
                        let mut child = span.child("mine.conditional_tree");
                        child.field("item", 1);
                    });
                }
            });
        }
        let snapshot = metrics.snapshot();
        let parent_id = snapshot.stage("mine.mine").unwrap().id;
        let children: Vec<_> = snapshot
            .stages
            .iter()
            .filter(|e| e.stage == "mine.conditional_tree")
            .collect();
        assert_eq!(children.len(), 3);
        assert!(children.iter().all(|c| c.parent == Some(parent_id)));
    }

    #[test]
    fn render_table_indents_children() {
        let metrics = Metrics::enabled();
        {
            let outer = metrics.span("outer");
            drop(outer.child("inner"));
        }
        let table = metrics.snapshot().render_table();
        assert!(table.contains("\n  inner"), "{table}");
    }

    #[test]
    fn event_sink_streams_span_and_counter_lines() {
        let (sink, buffer) = EventSink::shared_buffer();
        let metrics = Metrics::enabled().with_event_sink(sink);
        {
            let mut span = metrics.span("prep.fit");
            span.field("rows_in", 20);
            metrics.incr("hits", 2);
            metrics.incr("hits", 3);
        }
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        let run = metrics.run_id();
        assert!(!run.is_empty());
        assert!(
            lines[0].contains("\"event\":\"span_open\"")
                && lines[0].contains("\"span\":1,\"parent\":null,\"stage\":\"prep.fit\""),
            "{text}"
        );
        assert!(
            lines[1].contains("\"event\":\"counter\"")
                && lines[1].contains("\"name\":\"hits\",\"by\":2,\"total\":2"),
            "{text}"
        );
        assert!(lines[2].contains("\"total\":5"), "{text}");
        assert!(
            lines[3].contains("\"event\":\"span_close\"")
                && lines[3].contains("\"fields\":{\"rows_in\":20}"),
            "{text}"
        );
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i}")), "{text}");
            assert!(line.contains(&format!("\"run\":\"{run}\"")), "{text}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn with_event_sink_enables_a_disabled_handle() {
        let (sink, buffer) = EventSink::shared_buffer();
        let metrics = Metrics::disabled().with_event_sink(sink);
        assert!(metrics.is_enabled());
        metrics.incr("c", 1);
        assert!(!buffer.lock().unwrap().is_empty());
    }

    #[test]
    fn failing_sink_counts_write_errors_and_flags_degraded() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let metrics = Metrics::enabled().with_event_sink(EventSink::from_writer(Box::new(Broken)));
        metrics.incr("hits", 1);
        drop(metrics.span("stage"));
        // One counter event + span_open + span_close, all failed.
        assert_eq!(metrics.trace_log_write_errors(), 3);
        assert!(metrics.is_degraded());
        let snap = metrics.snapshot();
        assert!(snap.degraded);
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == "trace_log_write_errors_total" && *v == 3));
        assert!(
            snap.render_table().contains("DEGRADED"),
            "{}",
            snap.render_table()
        );
    }

    #[test]
    fn healthy_sink_reports_no_write_errors() {
        let (sink, _buffer) = EventSink::shared_buffer();
        let metrics = Metrics::enabled().with_event_sink(sink);
        metrics.incr("hits", 1);
        assert_eq!(metrics.trace_log_write_errors(), 0);
        assert!(!metrics.is_degraded());
        let snap = metrics.snapshot();
        assert!(!snap.degraded);
        assert!(snap
            .counters
            .iter()
            .all(|(name, _)| name != "trace_log_write_errors_total"));
    }

    #[test]
    fn mark_degraded_is_sticky_and_lands_in_snapshot() {
        let metrics = Metrics::enabled();
        assert!(!metrics.is_degraded());
        metrics.mark_degraded();
        assert!(metrics.is_degraded());
        assert!(metrics.snapshot().degraded);
        // A disabled handle silently ignores the mark.
        let disabled = Metrics::disabled();
        disabled.mark_degraded();
        assert!(!disabled.is_degraded());
    }

    #[test]
    fn snapshot_carries_run_id() {
        let metrics = Metrics::enabled();
        assert_eq!(metrics.snapshot().run_id, metrics.run_id());
        assert_eq!(Metrics::disabled().snapshot().run_id, "");
    }

    #[test]
    fn sink_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
    }

    #[test]
    fn concurrent_increments_all_land() {
        let metrics = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = metrics.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        handle.incr("hits", 1);
                    }
                });
            }
        });
        assert_eq!(
            metrics.snapshot().counters,
            vec![("hits".to_string(), 4000)]
        );
    }
}
