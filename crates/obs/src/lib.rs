//! # irma-obs — pipeline observability
//!
//! A lightweight metrics layer the IRMA crates thread through the
//! `encode -> mine -> rules` pipeline:
//!
//! * [`Metrics`] — a registry of monotonic counters, last-write gauges,
//!   and histogram-style timers (p50/p95/max over recorded samples);
//! * [`Metrics::span`] — an RAII [`StageSpan`] that times one pipeline
//!   stage and, on drop, appends a structured [`StageEvent`] (stage name,
//!   wall time, input/output cardinalities) to the pipeline trace;
//! * [`Snapshot`] — a point-in-time copy with a hand-rolled JSON exporter
//!   ([`Snapshot::to_json`]) and a human summary table
//!   ([`Snapshot::render_table`]) for the CLI's `--metrics` /
//!   `--verbose-stages` flags.
//!
//! The default sink is **disabled**: [`Metrics::default`] carries no
//! allocation and every method is a branch on `None`, so instrumented
//! library code pays nothing when nobody asked for metrics. Cloning a
//! [`Metrics`] shares the underlying sink, which is how one registry
//! observes every stage of a run (including rayon-parallel ones — the
//! sink is `Send + Sync`).
//!
//! ```
//! use irma_obs::Metrics;
//!
//! let metrics = Metrics::enabled();
//! {
//!     let mut span = metrics.span("mine.tree_build");
//!     span.field("transactions_in", 850_000);
//! } // drop records the wall time + one StageEvent
//! metrics.incr("prune.condition1", 3);
//! let snapshot = metrics.snapshot();
//! assert_eq!(snapshot.stages[0].stage, "mine.tree_build");
//! assert!(snapshot.to_json().contains("\"prune.condition1\": 3"));
//! ```

#![warn(missing_docs)]

mod json;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One structured event per pipeline stage: what ran, for how long, and
/// the cardinalities that flowed through it (transactions in, itemsets
/// out, rules pruned per condition, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageEvent {
    /// Stage name, dot-namespaced by crate (`prep.fit`, `mine.mine`, ...).
    pub stage: String,
    /// Wall-clock time spent inside the stage's span.
    pub wall: Duration,
    /// Named cardinalities, in the order the stage reported them.
    pub fields: Vec<(String, u64)>,
}

impl StageEvent {
    /// Looks up a cardinality by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Everything a recording sink accumulates.
#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, Vec<Duration>>,
    stages: Vec<StageEvent>,
}

/// A cloneable handle to a metrics sink; the pipeline's instrumentation
/// point.
///
/// The default handle is a **no-op**: nothing is allocated and every
/// method returns after one `Option` check, so library code can take
/// `&Metrics` unconditionally. [`Metrics::enabled`] creates a recording
/// sink shared by all clones of the handle.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<Mutex<Registry>>>,
}

impl Metrics {
    /// A recording sink.
    pub fn enabled() -> Metrics {
        Metrics {
            sink: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// The no-op sink (same as [`Metrics::default`]).
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Registry>> {
        // A poisoned registry still holds consistent counters; keep
        // recording rather than losing the whole run's metrics.
        self.sink
            .as_ref()
            .map(|sink| sink.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Adds `by` to a monotonic counter.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(mut reg) = self.lock() {
            *reg.counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Sets a last-write-wins gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut reg) = self.lock() {
            reg.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one duration sample into a histogram-style timer.
    pub fn record(&self, name: &str, sample: Duration) {
        if let Some(mut reg) = self.lock() {
            reg.timers.entry(name.to_string()).or_default().push(sample);
        }
    }

    /// Opens an RAII span for one pipeline stage. Dropping the span
    /// records its wall time under the timer `stage` and appends a
    /// [`StageEvent`] carrying every [`StageSpan::field`] set meanwhile.
    ///
    /// On a disabled handle the span is inert (no clock read).
    pub fn span(&self, stage: &str) -> StageSpan {
        StageSpan {
            state: self.sink.as_ref().map(|_| SpanState {
                metrics: self.clone(),
                stage: stage.to_string(),
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// A point-in-time copy of everything recorded so far. Empty (but
    /// valid) on a disabled handle.
    pub fn snapshot(&self) -> Snapshot {
        let Some(reg) = self.lock() else {
            return Snapshot::default();
        };
        Snapshot {
            counters: reg.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: reg.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            timers: reg
                .timers
                .iter()
                .map(|(name, samples)| TimerStats::from_samples(name.clone(), samples))
                .collect(),
            stages: reg.stages.clone(),
        }
    }
}

struct SpanState {
    metrics: Metrics,
    stage: String,
    start: Instant,
    fields: Vec<(String, u64)>,
}

impl std::fmt::Debug for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState")
            .field("stage", &self.stage)
            .field("fields", &self.fields)
            .finish_non_exhaustive()
    }
}

/// RAII timer for one pipeline stage; see [`Metrics::span`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct StageSpan {
    state: Option<SpanState>,
}

impl StageSpan {
    /// Attaches a named cardinality to the stage's [`StageEvent`]
    /// (no-op on a disabled handle).
    pub fn field(&mut self, name: &str, value: u64) {
        if let Some(state) = &mut self.state {
            state.fields.push((name.to_string(), value));
        }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(SpanState {
            metrics,
            stage,
            start,
            fields,
        }) = self.state.take()
        else {
            return;
        };
        let wall = start.elapsed();
        let Some(mut reg) = metrics.lock() else {
            return;
        };
        reg.timers.entry(stage.clone()).or_default().push(wall);
        reg.stages.push(StageEvent {
            stage,
            wall,
            fields,
        });
    }
}

/// Order statistics for one timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerStats {
    /// Timer name.
    pub name: String,
    /// Number of samples recorded.
    pub count: usize,
    /// Sum of all samples.
    pub total: Duration,
    /// Median sample (nearest-rank).
    pub p50: Duration,
    /// 95th-percentile sample (nearest-rank).
    pub p95: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl TimerStats {
    fn from_samples(name: String, samples: &[Duration]) -> TimerStats {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let nearest_rank = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        TimerStats {
            name,
            count: sorted.len(),
            total: sorted.iter().sum(),
            p50: nearest_rank(0.50),
            p95: nearest_rank(0.95),
            max: sorted.last().copied().unwrap_or(Duration::ZERO),
        }
    }
}

/// A point-in-time copy of a [`Metrics`] sink; see [`Metrics::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Timer statistics, sorted by name.
    pub timers: Vec<TimerStats>,
    /// Pipeline trace: one [`StageEvent`] per completed span, in
    /// completion order.
    pub stages: Vec<StageEvent>,
}

impl Snapshot {
    /// The first stage event with this name, if any stage recorded it.
    pub fn stage(&self, name: &str) -> Option<&StageEvent> {
        self.stages.iter().find(|e| e.stage == name)
    }

    /// Serializes the snapshot as a JSON object (see `json.rs` for the
    /// schema, mirrored in DESIGN.md).
    pub fn to_json(&self) -> String {
        json::snapshot_to_json(self)
    }

    /// Renders the pipeline trace plus counters as an aligned,
    /// human-readable table (the CLI's `--verbose-stages` output).
    pub fn render_table(&self) -> String {
        let mut out = String::from("stage                        wall          details\n");
        for event in &self.stages {
            let fields = event
                .fields
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<28} {:>10}    {}\n",
                event.stage,
                format_duration(event.wall),
                fields
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} = {value:.4}\n"));
            }
        }
        out
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let metrics = Metrics::default();
        assert!(!metrics.is_enabled());
        metrics.incr("c", 5);
        metrics.gauge("g", 1.5);
        metrics.record("t", Duration::from_millis(3));
        let mut span = metrics.span("stage");
        span.field("n", 7);
        drop(span);
        assert_eq!(metrics.snapshot(), Snapshot::default());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let metrics = Metrics::enabled();
        metrics.incr("b", 1);
        metrics.incr("a", 2);
        metrics.incr("b", 3);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 4)]
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let metrics = Metrics::enabled();
        metrics.gauge("drift", 0.2);
        metrics.gauge("drift", 0.9);
        assert_eq!(metrics.snapshot().gauges, vec![("drift".to_string(), 0.9)]);
    }

    #[test]
    fn timer_percentiles_nearest_rank() {
        let metrics = Metrics::enabled();
        for ms in 1..=100u64 {
            metrics.record("t", Duration::from_millis(ms));
        }
        let snap = metrics.snapshot();
        let t = &snap.timers[0];
        assert_eq!(t.count, 100);
        assert_eq!(t.p50, Duration::from_millis(50));
        assert_eq!(t.p95, Duration::from_millis(95));
        assert_eq!(t.max, Duration::from_millis(100));
        assert_eq!(t.total, Duration::from_millis(5050));
    }

    #[test]
    fn single_sample_percentiles() {
        let metrics = Metrics::enabled();
        metrics.record("t", Duration::from_millis(7));
        let snap = metrics.snapshot();
        assert_eq!(snap.timers[0].p50, Duration::from_millis(7));
        assert_eq!(snap.timers[0].p95, Duration::from_millis(7));
    }

    #[test]
    fn span_emits_event_and_timer() {
        let metrics = Metrics::enabled();
        {
            let mut span = metrics.span("mine.tree_build");
            span.field("transactions_in", 42);
            span.field("frequent_items", 9);
        }
        let snap = metrics.snapshot();
        let event = snap.stage("mine.tree_build").expect("event recorded");
        assert_eq!(event.field("transactions_in"), Some(42));
        assert_eq!(event.field("frequent_items"), Some(9));
        assert_eq!(event.field("nope"), None);
        assert!(snap.timers.iter().any(|t| t.name == "mine.tree_build"));
    }

    #[test]
    fn clones_share_one_sink() {
        let metrics = Metrics::enabled();
        let clone = metrics.clone();
        clone.incr("shared", 1);
        metrics.incr("shared", 1);
        assert_eq!(metrics.snapshot().counters[0].1, 2);
    }

    #[test]
    fn spans_record_in_completion_order() {
        let metrics = Metrics::enabled();
        let outer = metrics.span("outer");
        let inner = metrics.span("inner");
        drop(inner);
        drop(outer);
        let snapshot = metrics.snapshot();
        let names: Vec<&str> = snapshot.stages.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn sink_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
    }

    #[test]
    fn concurrent_increments_all_land() {
        let metrics = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = metrics.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        handle.incr("hits", 1);
                    }
                });
            }
        });
        assert_eq!(
            metrics.snapshot().counters,
            vec![("hits".to_string(), 4000)]
        );
    }
}
