//! Hand-rolled JSON serialization for [`Snapshot`] (the workspace builds
//! offline, so no serde).
//!
//! Schema (stable; documented in DESIGN.md):
//!
//! ```json
//! {
//!   "run_id":   "<hex id>",
//!   "degraded": <bool>,
//!   "counters": { "<name>": <u64>, ... },
//!   "gauges":   { "<name>": <f64|null>, ... },
//!   "sched":    null | { "injector_pushes": <u64>,
//!                        "workers": [ { "worker": <usize>,
//!                                       "jobs_executed": <u64>, ... } ] },
//!   "timers":   { "<name>": { "count": <usize>, "total_ms": <f64>,
//!                              "p50_ms": <f64>, "p95_ms": <f64>,
//!                              "max_ms": <f64> }, ... },
//!   "stages":   [ { "id": <u64>, "parent": <u64|null>,
//!                   "stage": "<name>", "wall_ms": <f64>,
//!                   "fields": { "<name>": <u64>, ... } }, ... ]
//! }
//! ```
//!
//! `timers.p50_ms` / `timers.p95_ms` are bucket-boundary estimates from
//! the bounded log2 histogram (count/total/max stay exact).
//!
//! Non-finite gauge values serialize as `null` (JSON has no NaN/inf).

use std::time::Duration;

use crate::Snapshot;

/// Escapes a string for use inside JSON quotes.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn f64_value(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints a shortest-roundtrip literal that always contains
        // a decimal point or exponent — a valid JSON number either way.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn millis(d: Duration) -> String {
    f64_value(d.as_secs_f64() * 1e3)
}

/// Writes `entries` as a JSON object with one line per key.
fn object<I: Iterator<Item = (String, String)>>(entries: I, indent: &str) -> String {
    let body: Vec<String> = entries
        .map(|(key, value)| format!("{indent}  \"{}\": {value}", escape(&key)))
        .collect();
    if body.is_empty() {
        "{}".to_string()
    } else {
        format!("{{\n{}\n{indent}}}", body.join(",\n"))
    }
}

pub(crate) fn snapshot_to_json(snapshot: &Snapshot) -> String {
    let counters = object(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.to_string())),
        "  ",
    );
    let gauges = object(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), f64_value(*value))),
        "  ",
    );
    let sched = match &snapshot.sched {
        None => "null".to_string(),
        Some(sched) => {
            let workers: Vec<String> = sched
                .workers
                .iter()
                .map(|w| {
                    format!(
                        "{{ \"worker\": {}, \"jobs_executed\": {}, \"local_pushes\": {}, \
                         \"steal_attempts\": {}, \"steal_successes\": {}, \"steal_empty\": {}, \
                         \"steal_retries\": {}, \"injector_pops\": {}, \"parks\": {}, \
                         \"wakes\": {}, \"deque_high_water\": {} }}",
                        w.worker,
                        w.jobs_executed,
                        w.local_pushes,
                        w.steal_attempts(),
                        w.steal_successes,
                        w.steal_empty,
                        w.steal_retries,
                        w.injector_pops,
                        w.parks,
                        w.wakes,
                        w.deque_high_water
                    )
                })
                .collect();
            format!(
                "{{ \"injector_pushes\": {}, \"workers\": [{}] }}",
                sched.injector_pushes,
                workers.join(", ")
            )
        }
    };
    let timers = object(
        snapshot.timers.iter().map(|t| {
            (
                t.name.clone(),
                format!(
                    "{{ \"count\": {}, \"total_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"max_ms\": {} }}",
                    t.count,
                    millis(t.total),
                    millis(t.p50),
                    millis(t.p95),
                    millis(t.max)
                ),
            )
        }),
        "  ",
    );
    let stages: Vec<String> = snapshot
        .stages
        .iter()
        .map(|event| {
            let fields = object(
                event
                    .fields
                    .iter()
                    .map(|(name, value)| (name.clone(), value.to_string())),
                "      ",
            );
            format!(
                "    {{\n      \"id\": {},\n      \"parent\": {},\n      \"stage\": \"{}\",\n      \"wall_ms\": {},\n      \"fields\": {fields}\n    }}",
                event.id,
                event.parent.map_or("null".to_string(), |p| p.to_string()),
                escape(&event.stage),
                millis(event.wall)
            )
        })
        .collect();
    let stages = if stages.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", stages.join(",\n"))
    };
    format!(
        "{{\n  \"run_id\": \"{}\",\n  \"degraded\": {},\n  \"counters\": {counters},\n  \"gauges\": {gauges},\n  \"sched\": {sched},\n  \"timers\": {timers},\n  \"stages\": {stages}\n}}\n",
        escape(&snapshot.run_id),
        snapshot.degraded
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metrics, StageEvent};

    #[test]
    fn empty_snapshot_is_valid_object() {
        let json = Snapshot::default().to_json();
        assert_eq!(
            json,
            "{\n  \"run_id\": \"\",\n  \"degraded\": false,\n  \"counters\": {},\n  \"gauges\": {},\n  \"sched\": null,\n  \"timers\": {},\n  \"stages\": []\n}\n"
        );
    }

    #[test]
    fn sched_snapshot_serializes_workers() {
        use crate::{Metrics, SchedStats, SchedWorker};
        let metrics = Metrics::enabled();
        metrics.set_sched(SchedStats {
            injector_pushes: 3,
            workers: vec![SchedWorker {
                worker: 1,
                jobs_executed: 8,
                steal_successes: 2,
                ..SchedWorker::default()
            }],
        });
        let json = metrics.snapshot().to_json();
        assert!(json.contains("\"injector_pushes\": 3"), "{json}");
        assert!(json.contains("\"worker\": 1"), "{json}");
        assert!(json.contains("\"jobs_executed\": 8"), "{json}");
        assert!(json.contains("\"steal_attempts\": 2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn degraded_snapshot_says_so() {
        let snapshot = Snapshot {
            degraded: true,
            ..Snapshot::default()
        };
        assert!(snapshot.to_json().contains("\"degraded\": true"));
    }

    #[test]
    fn full_snapshot_round_trips_key_facts() {
        let metrics = Metrics::enabled();
        metrics.incr("prune.condition1", 3);
        metrics.gauge("stream.drift", 0.25);
        metrics.record("mine.mine", Duration::from_millis(12));
        {
            let mut span = metrics.span("prep.fit");
            span.field("rows_in", 20);
        }
        let json = metrics.snapshot().to_json();
        assert!(json.contains("\"prune.condition1\": 3"), "{json}");
        assert!(json.contains("\"stream.drift\": 0.25"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"stage\": \"prep.fit\""), "{json}");
        assert!(json.contains("\"rows_in\": 20"), "{json}");
        // Balanced braces/brackets — a cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let snapshot = Snapshot {
            stages: vec![StageEvent {
                id: 1,
                parent: None,
                stage: "we\"ird".to_string(),
                wall: Duration::ZERO,
                fields: Vec::new(),
            }],
            ..Snapshot::default()
        };
        assert!(snapshot.to_json().contains("\"we\\\"ird\""));
    }

    #[test]
    fn non_finite_gauges_become_null() {
        assert_eq!(f64_value(f64::NAN), "null");
        assert_eq!(f64_value(f64::INFINITY), "null");
        assert_eq!(f64_value(1.5), "1.5");
        assert_eq!(f64_value(2.0), "2.0");
    }
}
