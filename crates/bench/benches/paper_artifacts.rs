//! One bench per paper artifact: the cost of regenerating each table and
//! figure end to end (trace preparation excluded — it is the shared
//! fixture; each measurement covers exactly the computation that artifact
//! adds on top of the prepared traces).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use irma_core::experiments::{
    ablation_binning, ablation_pruning, failure_tables, fig1, fig2, fig3, fig4, fig5, misc_tables,
    table1, underutilization_tables,
};
use irma_core::{prepare_all, AnalysisConfig, ExperimentScale, TraceAnalysis};

fn prepared() -> Vec<TraceAnalysis> {
    let scale = ExperimentScale {
        pai_jobs: 20_000,
        supercloud_jobs: 8_000,
        philly_jobs: 8_000,
        seed: 0xbe7c,
    };
    prepare_all(&scale, &AnalysisConfig::default()).into()
}

fn artifacts(c: &mut Criterion) {
    let traces = prepared();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("table1_overview", |b| {
        b.iter(|| black_box(table1(&traces)).rows.len())
    });
    group.bench_function("fig1_support_sweep", |b| {
        b.iter(|| {
            black_box(fig1(&traces, &[0.05, 0.1, 0.2, 0.5]))
                .series
                .len()
        })
    });
    group.bench_function("fig2_rule_boxplots", |b| {
        b.iter(|| black_box(fig2(&traces)).rows.len())
    });
    group.bench_function("fig3_pruning_scatter", |b| {
        b.iter(|| black_box(fig3(&traces)).after)
    });
    group.bench_function("fig4_sm_cdf", |b| {
        b.iter(|| black_box(fig4(&traces)).rows.len())
    });
    group.bench_function("fig5_exit_status", |b| {
        b.iter(|| black_box(fig5(&traces)).rows.len())
    });
    group.bench_function("tables2_3_4_underutilization", |b| {
        b.iter(|| black_box(underutilization_tables(&traces)).len())
    });
    group.bench_function("tables5_6_7_failures", |b| {
        b.iter(|| black_box(failure_tables(&traces)).len())
    });
    group.bench_function("table8_misc", |b| {
        b.iter(|| black_box(misc_tables(&traces)).len())
    });
    group.bench_function("ablation_binning", |b| {
        b.iter(|| black_box(ablation_binning(&traces)).rows.len())
    });
    group.bench_function("ablation_pruning", |b| {
        b.iter(|| black_box(ablation_pruning(&traces)).rows.len())
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    // The whole workflow including trace generation, at a smaller scale.
    let mut group = c.benchmark_group("paper/end_to_end");
    group.sample_size(10);
    group.bench_function("prepare_all_small", |b| {
        b.iter(|| {
            let scale = ExperimentScale {
                pai_jobs: 5_000,
                supercloud_jobs: 2_000,
                philly_jobs: 2_000,
                seed: 0xbe7c,
            };
            black_box(prepare_all(&scale, &AnalysisConfig::default())).len()
        })
    });
    group.finish();
}

criterion_group!(benches, artifacts, end_to_end);
criterion_main!(benches);
