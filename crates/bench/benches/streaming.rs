//! Streaming and condensation benches: sliding-window push throughput,
//! drift evaluation, on-demand window re-mining, top-k dynamic-support
//! mining, and closed/maximal condensation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irma_bench::bench_encoded;
use irma_mine::{
    closed_itemsets, fpgrowth, maximal_itemsets, mine_top_k, BudgetGuard, MinerConfig,
    SlidingWindowMiner,
};

fn window_ops(c: &mut Criterion) {
    let encoded = bench_encoded("supercloud", 20_000);
    let txns: Vec<Vec<u32>> = (0..encoded.db.len())
        .map(|i| encoded.db.transaction(i).to_vec())
        .collect();
    let mut group = c.benchmark_group("stream");
    group.sample_size(10);

    group.bench_function("push_20k_window_4k", |b| {
        b.iter(|| {
            let mut miner = SlidingWindowMiner::new(4_096, MinerConfig::with_min_support(0.05));
            for txn in &txns {
                miner.push(txn.iter().copied());
            }
            black_box(miner.len())
        })
    });

    let mut filled = SlidingWindowMiner::new(4_096, MinerConfig::with_min_support(0.05));
    for txn in &txns {
        filled.push(txn.iter().copied());
    }
    let mut baseline = filled.clone();
    baseline.mine();
    group.bench_function("drift_eval", |b| b.iter(|| black_box(baseline.drift())));
    group.bench_function("remine_window_4k", |b| {
        b.iter(|| black_box(filled.clone().mine()).len())
    });

    // The `irma watch` hot path at the daemon's default window: one
    // arrival, then a re-mine. The incremental side mines the maintained
    // prefix tree directly (weighted compressed paths); the rebuild side
    // materializes the window and runs batch FP-Growth from scratch —
    // what every emission used to cost before the tree went incremental.
    let fill = |n: usize| {
        let mut miner = SlidingWindowMiner::new(2_000, MinerConfig::with_min_support(0.05));
        for txn in txns.iter().take(n) {
            miner.push(txn.iter().copied());
        }
        miner
    };
    let mut incremental = fill(4_000);
    let mut next = 0usize;
    group.bench_function("arrival_mine_incremental_2k", |b| {
        b.iter(|| {
            incremental.push(txns[next % txns.len()].iter().copied());
            next += 1;
            black_box(
                incremental
                    .try_mine(&BudgetGuard::unlimited())
                    .expect("unlimited budget")
                    .len(),
            )
        })
    });
    let mut rebuilt = fill(4_000);
    let config = MinerConfig::with_min_support(0.05);
    group.bench_function("arrival_mine_rebuild_2k", |b| {
        b.iter(|| {
            rebuilt.push(txns[next % txns.len()].iter().copied());
            next += 1;
            let db = rebuilt.snapshot();
            black_box(fpgrowth(&db, &config).len())
        })
    });
    group.finish();
}

fn top_k_and_condense(c: &mut Criterion) {
    let db = irma_bench::bench_db(30_000);
    let mut group = c.benchmark_group("condense");
    group.sample_size(10);
    for &k in &[10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("mine_top_k", k), &k, |b, &k| {
            b.iter(|| black_box(mine_top_k(&db, k, 5, fpgrowth)).len())
        });
    }
    let frequent = fpgrowth(&db, &MinerConfig::with_min_support(0.05));
    group.bench_function("closed_itemsets", |b| {
        b.iter(|| black_box(closed_itemsets(&frequent)).len())
    });
    group.bench_function("maximal_itemsets", |b| {
        b.iter(|| black_box(maximal_itemsets(&frequent)).len())
    });
    group.finish();
}

criterion_group!(benches, window_ops, top_k_and_condense);
criterion_main!(benches);
