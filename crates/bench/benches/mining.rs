//! Tracked mining baseline: wall time, throughput, and thread scaling
//! per (scale × miner × pool width), emitted as machine-readable JSON.
//!
//! Unlike the criterion benches (relative, per-PR exploration), this one
//! produces the *committed* baseline `BENCH_6.json` that
//! `scripts/check_bench.py` gates CI against: itemset counts must match
//! exactly (machine-independent correctness), wall times within a
//! tolerance (machine-dependent, and only compared against a baseline
//! recorded on a host with the same core count).
//!
//! Schema v2: the document records `host_cores` (so the checker can
//! refuse cross-host wall comparisons and arm the speedup gate), the
//! `miners` list (so the checker can derive the full expected
//! scale × miner × threads grid), and every cell that was *not* measured
//! gets an explicit `skipped` record with a reason — a missing cell with
//! no skip record is a checker failure, not something to silently ignore.
//!
//! Knobs (all environment variables):
//!
//! * `IRMA_BENCH_SCALES`  — comma-separated job counts
//!   (default `10000,100000,850000`; 850k is the paper's PAI scale);
//! * `IRMA_BENCH_THREADS` — comma-separated pool widths (default `1,2,4`);
//! * `IRMA_BENCH_OUT`     — output path (default `BENCH_6.json`);
//! * `IRMA_BENCH_APRIORI_CAP` — largest scale Apriori runs at (default
//!   `100000`): the level-wise baseline is inherently slower than
//!   FP-Growth (that gap is the paper's point), so the largest scale's
//!   reps are declared-skipped by default rather than burned.
//!
//! Run with `cargo bench -p irma-bench --bench mining`.

use std::fmt::Write as _;
use std::time::Instant;

use irma_bench::{bench_db, BENCH_SEED};
use irma_mine::{Algorithm, MinerConfig, TransactionDb};

struct Measurement {
    scale: usize,
    miner: &'static str,
    threads: usize,
    reps: u32,
    best_wall_s: f64,
    itemsets: u64,
    /// `Some(reason)` marks a declared-skipped cell; the measurement
    /// fields are meaningless and the JSON row carries only the reason.
    skipped: Option<String>,
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}: bad entry `{tok}`"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|raw| raw.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

/// Reps scale inversely with run length so cheap configs get tight
/// minima and expensive ones stay tractable; the min discards warmup.
fn reps_for(first_run: f64) -> u32 {
    if first_run < 0.05 {
        15
    } else if first_run < 0.5 {
        7
    } else if first_run < 5.0 {
        3
    } else {
        2
    }
}

fn measure(db: &TransactionDb, algorithm: Algorithm, threads: usize) -> (f64, u64, u32) {
    let config = MinerConfig {
        min_support: 0.02,
        max_len: 5,
        parallel: true,
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool");
    let time_one = || {
        let t0 = Instant::now();
        let frequent = pool.install(|| algorithm.mine(db, &config));
        (t0.elapsed().as_secs_f64(), frequent.len() as u64)
    };
    let (first, itemsets) = time_one();
    let reps = reps_for(first);
    let mut best = first;
    for _ in 1..reps {
        let (wall, n) = time_one();
        assert_eq!(n, itemsets, "nondeterministic itemset count");
        best = best.min(wall);
    }
    (best, itemsets, reps)
}

fn render_json(
    scales: &[usize],
    threads: &[usize],
    host_cores: usize,
    rows: &[Measurement],
) -> String {
    let list = |xs: &[usize]| {
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let miners = Algorithm::all()
        .iter()
        .map(|a| format!("\"{}\"", a.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"irma-bench/mining/v2\",\n");
    let _ = writeln!(out, "  \"seed\": {BENCH_SEED},");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    out.push_str("  \"miner_config\": { \"min_support\": 0.02, \"max_len\": 5 },\n");
    let _ = writeln!(out, "  \"scales\": [{}],", list(scales));
    let _ = writeln!(out, "  \"miners\": [{miners}],");
    let _ = writeln!(out, "  \"threads\": [{}],", list(threads));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        if let Some(reason) = &row.skipped {
            let _ = write!(
                out,
                "    {{ \"scale\": {}, \"miner\": \"{}\", \"threads\": {}, \
                 \"skipped\": \"{}\" }}",
                row.scale, row.miner, row.threads, reason,
            );
        } else {
            let per_s = row.itemsets as f64 / row.best_wall_s;
            // Speedup vs this (scale, miner)'s own 1-thread best, when present.
            let speedup = rows
                .iter()
                .find(|r| {
                    r.scale == row.scale
                        && r.miner == row.miner
                        && r.threads == 1
                        && r.skipped.is_none()
                })
                .map(|base| base.best_wall_s / row.best_wall_s);
            let _ = write!(
                out,
                "    {{ \"scale\": {}, \"miner\": \"{}\", \"threads\": {}, \
                 \"reps\": {}, \"best_wall_s\": {:.6}, \"itemsets\": {}, \
                 \"itemsets_per_s\": {:.1}, \"speedup_vs_1t\": {} }}",
                row.scale,
                row.miner,
                row.threads,
                row.reps,
                row.best_wall_s,
                row.itemsets,
                per_s,
                speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
            );
        }
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let scales = env_list("IRMA_BENCH_SCALES", &[10_000, 100_000, 850_000]);
    let threads = env_list("IRMA_BENCH_THREADS", &[1, 2, 4]);
    let apriori_cap = env_usize("IRMA_BENCH_APRIORI_CAP", 100_000);
    let out_path = std::env::var("IRMA_BENCH_OUT").unwrap_or_else(|_| "BENCH_6.json".to_string());
    // Cargo runs bench binaries with CWD = the package dir; anchor
    // relative outputs at the workspace root where the committed
    // baseline (and CI's gate step) expect them.
    let out_path = if std::path::Path::new(&out_path).is_absolute() {
        std::path::PathBuf::from(out_path)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out_path)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows = Vec::new();
    for &scale in &scales {
        eprintln!("generating PAI trace at {scale} jobs...");
        let db = bench_db(scale);
        for algorithm in Algorithm::all() {
            if algorithm == Algorithm::Apriori && scale > apriori_cap {
                let reason = format!(
                    "scale {scale} exceeds IRMA_BENCH_APRIORI_CAP {apriori_cap} \
                     (level-wise baseline; gap vs FP-Growth is the paper's point)"
                );
                eprintln!("  skipping apriori at {scale} jobs: {reason}");
                for &width in &threads {
                    rows.push(Measurement {
                        scale,
                        miner: algorithm.name(),
                        threads: width,
                        reps: 0,
                        best_wall_s: 0.0,
                        itemsets: 0,
                        skipped: Some(reason.clone()),
                    });
                }
                continue;
            }
            for &width in &threads {
                let (best, itemsets, reps) = measure(&db, algorithm, width);
                eprintln!(
                    "  {:>8} jobs | {:<8} | {} thread(s): {:>10.4}s  \
                     ({} itemsets, best of {})",
                    scale,
                    algorithm.name(),
                    width,
                    best,
                    itemsets,
                    reps
                );
                rows.push(Measurement {
                    scale,
                    miner: algorithm.name(),
                    threads: width,
                    reps,
                    best_wall_s: best,
                    itemsets,
                    skipped: None,
                });
            }
        }
    }

    let json = render_json(&scales, &threads, host_cores, &rows);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    eprintln!("wrote {}", out_path.display());
}
